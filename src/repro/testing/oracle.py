"""Differential correctness oracle for the profiling stack.

One generated trace (:mod:`~repro.testing.traces`) is pushed through
three independent implementations of "analyze this event stream":

1. **Batch** — per-instance :class:`~repro.events.profile.RuntimeProfile`
   objects through the paper's :class:`~repro.usecases.UseCaseEngine`.
   This is the reference semantics.
2. **Streaming** — the same events window-fed straight into a
   :class:`~repro.service.streaming.StreamingUseCaseEngine`, no network.
3. **Daemon round trip** — a protocol client ships the events through
   a :class:`~repro.testing.faults.FaultProxy` into a live
   :class:`~repro.service.ProfilingDaemon`, surviving whatever faults
   the seeded plan injects, and the daemon's FIN report is taken.

All three must produce the identical flagged use-case set — same
``(instance, kind)`` pairs — *and* identical evidence dicts.  Any
divergence is a real bug in exactly the machinery PR 2's convergence
claim rests on: the fold, the wire protocol, resume/dedup, or the
ingest pipeline.

The daemon driver here is deliberately synchronous (no background
drainer or heartbeat threads): it speaks the same reconnect-and-
retransmit protocol as :class:`~repro.service.client.RemoteChannel`
but with every step on the test thread, so a failing seed replays
identically.  The full threaded ``RemoteChannel`` is covered by its
own integration tests.
"""

from __future__ import annotations

import shutil
import tempfile
import time
from dataclasses import dataclass, field
from typing import Any

from ..events.event import RawEvent, materialize
from ..events.profile import RuntimeProfile
from ..service.client import ServiceClient
from ..service.daemon import ProfilingDaemon
from ..service.protocol import ProtocolError
from ..service.streaming import StreamingUseCaseEngine
from ..usecases.engine import UseCaseEngine
from ..usecases.json_export import report_to_dict
from .faults import FAULT_KINDS, FaultPlan, FaultProxy
from .shrink import shrink_trace
from .traces import Trace, generate_trace

#: Mixed into the trace seed to derive the fault-plan seed, so trace
#: content and fault schedule vary independently but reproducibly.
FAULT_SEED_SALT = 0x5EED_FA17


# -- the three paths ---------------------------------------------------------


def run_batch_path(trace: Trace) -> dict[str, Any]:
    """Reference semantics: per-instance profiles, batch engine."""
    streams: dict[int, list] = {inst.instance_id: [] for inst in trace.instances}
    for seq, raw in enumerate(trace.events):
        streams[raw[0]].append(materialize(seq, raw))
    profiles = []
    for inst in trace.instances:
        profile = RuntimeProfile(inst.instance_id, kind=inst.kind, label=inst.label)
        profile.extend(streams[inst.instance_id])
        profiles.append(profile)
    return report_to_dict(UseCaseEngine().analyze(profiles))


def run_streaming_path(trace: Trace, window: int = 64) -> dict[str, Any]:
    """Direct feed into the streaming engine, windowed like the wire."""
    engine = StreamingUseCaseEngine()
    for inst in trace.instances:
        engine.register_instance(inst.instance_id, inst.kind, label=inst.label)
    for offset in range(0, len(trace.events), window):
        engine.feed_window(trace.events[offset : offset + window])
    return report_to_dict(engine.report())


def run_daemon_path(
    trace: Trace,
    address: str,
    *,
    window: int = 64,
    max_attempts: int = 200,
    retry_delay: float = 0.0,
    session_id: str | None = None,
) -> dict[str, Any]:
    """Full client→daemon round trip with reconnect-and-retransmit.

    ``address`` may point at the daemon directly or at a
    :class:`~repro.testing.faults.FaultProxy` in front of it.  The
    driver mirrors :class:`~repro.service.client.RemoteChannel`'s
    recovery protocol synchronously: on any socket or protocol error
    it reconnects with the same session id, rewinds its cursor to the
    server's ``received`` count, and resends the tail, until the FIN
    ACK confirms every event arrived.  ``retry_delay`` spaces the
    reconnect attempts out — needed when the daemon is a subprocess
    being killed and restarted, which takes real time; the in-process
    oracle restarts synchronously and keeps the default of zero.
    ``session_id`` adopts an existing session (e.g. one begun before a
    daemon crash) instead of opening a fresh one; the cursor rewind
    makes the retransmitted prefix a duplicate the daemon skips.
    """
    total = len(trace.events)
    registrations = [inst.registration() for inst in trace.instances]
    events = trace.events
    client: ServiceClient | None = None
    sent = 0
    for _attempt in range(max_attempts):
        try:
            if client is None:
                client = ServiceClient(address, session_id=session_id)
                session_id = client.session_id
                # The server cursor is authoritative (same rule as
                # RemoteChannel._connect): a resumed session rewinds,
                # a fresh one restarts from zero.
                sent = min(sent, client.server_received) if client.resumed else 0
                client.register_instances(registrations)
            while sent < total:
                n = min(window, total - sent)
                client.send_events(sent, events[sent : sent + n])
                sent += n
            ack = client.fin()
            client.close()
            if ack.get("received") != total:
                raise AssertionError(
                    f"daemon acknowledged {ack.get('received')} of {total} events"
                )
            return ack["report"]
        except (OSError, ProtocolError):
            if client is not None:
                client.close()
            client = None
            if retry_delay:
                time.sleep(retry_delay)
    raise RuntimeError(
        f"daemon path did not converge after {max_attempts} attempts "
        f"(session {session_id}, {sent}/{total} shipped)"
    )


# -- comparison --------------------------------------------------------------


def summarize_report(report: dict[str, Any]) -> dict[str, Any]:
    """Canonical comparable form: flagged set + evidence, order-free."""
    return {
        "instances_analyzed": report["instances_analyzed"],
        "flagged": {
            (uc["instance_id"], uc["abbreviation"]): dict(uc["evidence"])
            for uc in report["use_cases"]
        },
    }


def diff_summaries(name_a: str, a: dict, name_b: str, b: dict) -> list[str]:
    """Human-readable mismatch lines; empty when identical."""
    out: list[str] = []
    if a["instances_analyzed"] != b["instances_analyzed"]:
        out.append(
            f"instances_analyzed: {name_a}={a['instances_analyzed']} "
            f"{name_b}={b['instances_analyzed']}"
        )
    fa, fb = a["flagged"], b["flagged"]
    for key in sorted(fa.keys() - fb.keys()):
        out.append(f"{key}: flagged by {name_a} only (evidence {fa[key]})")
    for key in sorted(fb.keys() - fa.keys()):
        out.append(f"{key}: flagged by {name_b} only (evidence {fb[key]})")
    for key in sorted(fa.keys() & fb.keys()):
        if fa[key] != fb[key]:
            out.append(
                f"{key}: evidence differs — {name_a}={fa[key]} {name_b}={fb[key]}"
            )
    return out


# -- trial orchestration -----------------------------------------------------


@dataclass
class TrialResult:
    """Outcome of one seeded differential trial."""

    seed: int
    ok: bool
    trace: Trace
    plan: FaultPlan
    mismatches: list[str] = field(default_factory=list)
    events: int = 0
    faults_injected: int = 0

    def describe(self) -> str:
        status = "ok" if self.ok else "MISMATCH"
        lines = [
            f"trial seed={self.seed}: {status} "
            f"({self.events} events, {self.faults_injected} faults: "
            f"{self.plan.describe()})"
        ]
        lines.extend(f"  {m}" for m in self.mismatches)
        return "\n".join(lines)


class DifferentialOracle:
    """Runs seeded batch/streaming/daemon differential trials.

    One daemon is shared across trials (sessions are independent); a
    fresh :class:`FaultProxy` with a seed-derived plan fronts it per
    trial.  Timeouts are set far beyond any trial's runtime so the
    reaper never interferes — reaper behavior has its own SimClock
    tests and is not what this oracle measures.

    The daemon always runs with a (temporary) ``state_dir`` and a
    small checkpoint interval: a ``kill`` fault crashes it in-process
    (SIGKILL semantics — no flush, no report, in-memory state gone)
    and starts a replacement on the same state directory, so every
    kill trial asserts that the *recovered* report still equals the
    batch engine's.

    Use as a context manager, or call :meth:`close` explicitly.
    """

    def __init__(
        self,
        *,
        window: int = 64,
        fault_intensity: float = 0.15,
        fault_kinds: tuple[str, ...] = FAULT_KINDS,
        max_faults: int = 8,
        checkpoint_every: int = 512,
        trace_kwargs: dict[str, Any] | None = None,
    ) -> None:
        self.window = window
        self.fault_intensity = fault_intensity
        self.fault_kinds = fault_kinds
        self.max_faults = max_faults
        self.checkpoint_every = checkpoint_every
        self.trace_kwargs = dict(trace_kwargs or {})
        self._state_dir = tempfile.mkdtemp(prefix="dsspy-oracle-state-")
        self.daemon_kills = 0
        self._daemon = self._make_daemon()

    def _make_daemon(self) -> ProfilingDaemon:
        return ProfilingDaemon(
            port=0,
            heartbeat_timeout=3600.0,
            session_linger=3600.0,
            state_dir=self._state_dir,
            checkpoint_every=self.checkpoint_every,
        )

    def _kill_daemon(self) -> str:
        """The proxy's ``on_kill`` hook: crash the daemon, recover a
        replacement from the shared state directory, return its (new)
        address."""
        self._daemon.crash()
        self._daemon = self._make_daemon()
        self.daemon_kills += 1
        return self._daemon.address

    @property
    def daemon_address(self) -> str:
        return self._daemon.address

    def build_plan(self, seed: int) -> FaultPlan:
        if self.fault_intensity <= 0:
            return FaultPlan.transparent()
        return FaultPlan.from_seed(
            seed ^ FAULT_SEED_SALT,
            intensity=self.fault_intensity,
            max_faults=self.max_faults,
            kinds=self.fault_kinds,
        )

    def run_trial(self, seed: int, trace: Trace | None = None) -> TrialResult:
        """One trial: generate (or reuse) a trace, run all three paths,
        compare.  Deterministic given (seed, trace, oracle config)."""
        if trace is None:
            trace = generate_trace(seed, **self.trace_kwargs)
        plan = self.build_plan(seed)
        batch = summarize_report(run_batch_path(trace))
        streaming = summarize_report(run_streaming_path(trace, window=self.window))
        with FaultProxy(
            self._daemon.address, plan, on_kill=self._kill_daemon
        ) as proxy:
            daemon_report = run_daemon_path(trace, proxy.address, window=self.window)
        daemon = summarize_report(daemon_report)
        self._evict_finished_sessions()
        mismatches = diff_summaries("batch", batch, "streaming", streaming)
        mismatches += diff_summaries("batch", batch, "daemon", daemon)
        return TrialResult(
            seed=seed,
            ok=not mismatches,
            trace=trace,
            plan=plan,
            mismatches=mismatches,
            events=len(trace.events),
            faults_injected=len(plan.injected),
        )

    def run_trials(
        self,
        trials: int,
        base_seed: int = 0,
        *,
        stop_on_failure: bool = True,
        progress=None,
    ) -> list[TrialResult]:
        """Seeds ``base_seed .. base_seed+trials-1``; optionally stops
        at the first failure.  ``progress`` (if given) is called with
        each finished :class:`TrialResult`."""
        results: list[TrialResult] = []
        for i in range(trials):
            result = self.run_trial(base_seed + i)
            results.append(result)
            if progress is not None:
                progress(result)
            if not result.ok and stop_on_failure:
                break
        return results

    def shrink_failure(self, result: TrialResult, *, max_rounds: int = 200) -> Trace:
        """Minimize a failing trial's trace, replaying with the same
        seed (and therefore the same fault plan) each time."""
        if result.ok:
            raise ValueError("cannot shrink a passing trial")
        return shrink_trace(
            result.trace,
            lambda candidate: not self.run_trial(result.seed, trace=candidate).ok,
            max_rounds=max_rounds,
        )

    def _evict_finished_sessions(self) -> None:
        """Drop every session the trial left behind.

        Besides the trial's finished session, a ``reset`` that lands
        while HELLO is still in flight strands a brand-new session the
        driver never resumes (its id never reached the client).  Each
        stranded session owns a live pipeline thread and a journal
        directory, so across hundreds of trials — shrinking replays
        especially — they would exhaust threads and disk.  Trials are
        serialized, so after a trial *everything* in the table is
        garbage."""
        self._daemon.purge_sessions()

    def close(self) -> None:
        self._daemon.close()
        shutil.rmtree(self._state_dir, ignore_errors=True)

    def __enter__(self) -> "DifferentialOracle":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


__all__ = [
    "DifferentialOracle",
    "TrialResult",
    "diff_summaries",
    "run_batch_path",
    "run_daemon_path",
    "run_streaming_path",
    "summarize_report",
]
