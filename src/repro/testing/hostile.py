"""Client-side injected faults: a hostile profiler for fail-open tests.

The PR 3 fault vocabulary (:mod:`~repro.testing.faults`) attacks the
*wire* between client and daemon; these faults attack the profiler
itself, inside the host process — the failure modes the
:mod:`repro.runtime` firewall exists to contain:

``raising-record``
    :class:`HostileCollector` raises :class:`ProfilerBug` from
    ``record`` (every call, or every *n*-th).

``raising-register``
    The collector raises from ``register_instance``, so construction of
    a tracked structure fails inside the profiler.

``raising-channel``
    :class:`RaisingChannel` raises from ``post`` after an initial grace
    period — a transport that works, then breaks mid-capture.

``hanging-channel``
    :class:`HangingChannel` blocks in ``drain`` (or ``post``) until
    released — the silent-stall mode only a watchdog or bounded drain
    can catch; no exception is ever raised.

``fork-under-load``
    Not a class: ``os.fork()`` while recording threads are live,
    exercised by the subprocess tests in ``tests/test_fork_exit.py``.

Every injected fault class carries :class:`ProfilerBug` (or a timed
hold) so tests can assert that what the host program observed was
*contained* profiler behaviour, never coincidental success.
"""

from __future__ import annotations

import threading

from ..events.collector import EventCollector
from ..events.event import RawEvent

#: Client-side fault kinds (the firewall's threat model), extending the
#: wire-level ``FAULT_KINDS`` of :mod:`~repro.testing.faults`.
CLIENT_FAULT_KINDS = (
    "raising-record",
    "raising-register",
    "raising-channel",
    "hanging-channel",
    "fork-under-load",
)


class ProfilerBug(RuntimeError):
    """The injected profiler-internal defect.

    A distinct type so containment tests can assert that *this* —
    not some unrelated error — is what the firewall swallowed."""


class HostileCollector(EventCollector):
    """An :class:`~repro.events.collector.EventCollector` that raises.

    Parameters
    ----------
    fail_record / fail_register:
        Which entry points raise :class:`ProfilerBug`.
    every:
        Raise on every *n*-th call to the failing entry point (1 =
        every call), so tests can interleave contained faults with
        successful recording.
    """

    def __init__(
        self,
        *,
        fail_record: bool = True,
        fail_register: bool = False,
        every: int = 1,
        **kwargs,
    ) -> None:
        if every < 1:
            raise ValueError(f"every must be >= 1, got {every}")
        super().__init__(**kwargs)
        self.fail_record = fail_record
        self.fail_register = fail_register
        self.every = every
        self.record_calls = 0
        self.register_calls = 0

    def register_instance(self, kind, site=None, label=""):
        self.register_calls += 1
        if self.fail_register and self.register_calls % self.every == 0:
            raise ProfilerBug(
                f"injected register_instance fault (call {self.register_calls})"
            )
        return super().register_instance(kind, site=site, label=label)

    def record(self, instance_id, op, kind, position, size):
        self.record_calls += 1
        if self.fail_record and self.record_calls % self.every == 0:
            raise ProfilerBug(f"injected record fault (call {self.record_calls})")
        super().record(instance_id, op, kind, position, size)


class RaisingChannel:
    """A channel whose ``post`` raises after ``after`` successful posts.

    Models a transport that works and then breaks mid-capture (a
    full disk behind a spill file, a socket torn down under the
    drainer).  ``drain``/``snapshot`` keep working so a healthy guard
    can still salvage what was recorded before the break.
    """

    def __init__(self, after: int = 0) -> None:
        self.after = after
        self.posts = 0
        self._buffer: list[RawEvent] = []
        self._closed = False

    def post(self, raw: RawEvent) -> None:
        if self._closed:
            raise RuntimeError("channel already drained")
        if self.posts >= self.after:
            self.posts += 1
            raise ProfilerBug(f"injected channel post fault (post {self.posts})")
        self.posts += 1
        self._buffer.append(raw)

    def drain(self) -> list[RawEvent]:
        self._closed = True
        return self._buffer

    def snapshot(self) -> list[RawEvent]:
        return self._buffer

    @property
    def pending(self) -> int:
        return len(self._buffer)


class HangingChannel:
    """A channel that blocks instead of raising — the silent stall.

    ``drain`` (and optionally ``post``) wait on an internal event that
    only :meth:`release` sets; ``max_hold`` bounds the wait so a test
    whose containment *failed* still terminates with a diagnosable
    assertion instead of deadlocking the suite.
    """

    def __init__(
        self,
        hang_post: bool = False,
        hang_drain: bool = True,
        max_hold: float = 30.0,
    ) -> None:
        self.hang_post = hang_post
        self.hang_drain = hang_drain
        self.max_hold = max_hold
        self.held = 0
        self._release = threading.Event()
        self._buffer: list[RawEvent] = []
        self._closed = False

    def release(self) -> None:
        """Unblock every current and future hold."""
        self._release.set()

    def _hold(self) -> None:
        self.held += 1
        self._release.wait(self.max_hold)

    def post(self, raw: RawEvent) -> None:
        if self._closed:
            raise RuntimeError("channel already drained")
        if self.hang_post:
            self._hold()
        self._buffer.append(raw)

    def drain(self) -> list[RawEvent]:
        if not self._closed:
            if self.hang_drain:
                self._hold()
            self._closed = True
        return self._buffer

    def snapshot(self) -> list[RawEvent]:
        return list(self._buffer)

    @property
    def pending(self) -> int:
        return len(self._buffer)


def make_hostile_collector(kind: str, every: int = 1) -> EventCollector:
    """Build the collector for one :data:`CLIENT_FAULT_KINDS` entry
    (the fork-under-load kind has no collector — it is a process-level
    scenario driven by the subprocess tests)."""
    if kind == "raising-record":
        return HostileCollector(fail_record=True, every=every)
    if kind == "raising-register":
        return HostileCollector(fail_record=False, fail_register=True, every=every)
    if kind == "raising-channel":
        return EventCollector(channel=RaisingChannel())
    if kind == "hanging-channel":
        return EventCollector(channel=HangingChannel(max_hold=2.0))
    raise ValueError(
        f"no collector for client fault kind {kind!r}; "
        f"expected one of {CLIENT_FAULT_KINDS[:-1]}"
    )
