"""Virtualizable time for the profiling service.

Every *policy* timer in the service — the daemon reaper's heartbeat
and linger deadlines, a session's ``last_seen`` bookkeeping, the
client's heartbeat cadence — reads time through a :class:`Clock`
object instead of calling :mod:`time` directly.  In production the
clock is :data:`SYSTEM_CLOCK` and nothing changes; in tests it is a
:class:`SimClock`, and a "30 seconds of client silence" scenario is
one ``clock.advance(31)`` call instead of a wall-clock sleep.

The split is deliberate about what it does *not* virtualize: I/O
waits.  Blocking socket reads, ``IngestPipeline`` backpressure, and
the daemon's close-time connection drain are genuine waits on another
thread's progress and stay on real time — virtualizing them would
deadlock a single-threaded test that has no one to advance the clock.
Only the deadline *arithmetic* (is this session stale? has the linger
window passed?) goes through the clock.

:meth:`Clock.wait` exists because the reaper and the client heartbeat
both sleep on a ``threading.Event`` with a timeout.  Under the system
clock it is exactly ``event.wait(timeout)``; under a :class:`SimClock`
the virtual deadline only passes when some thread calls
:meth:`~SimClock.advance`, while the event itself is still honored
promptly (the wait polls on a short real-time tick), so shutdown never
hangs on virtual time.
"""

from __future__ import annotations

import threading
import time


class Clock:
    """Time source protocol (the system implementation doubles as the
    base class so user clocks only override what they need)."""

    def monotonic(self) -> float:
        """Monotonic seconds; the basis of every deadline comparison."""
        return time.monotonic()

    def wall(self) -> float:
        """Wall-clock seconds since the epoch (for display only)."""
        return time.time()

    def sleep(self, seconds: float) -> None:
        """Block until ``seconds`` of *this clock's* time have passed."""
        time.sleep(seconds)

    def wait(self, event: threading.Event, timeout: float) -> bool:
        """Wait for ``event`` up to ``timeout`` clock-seconds; returns
        the event's state, like :meth:`threading.Event.wait`."""
        return event.wait(timeout)


class SystemClock(Clock):
    """Real time (the default everywhere)."""


#: Shared default instance; services treat it like ``None``.
SYSTEM_CLOCK = SystemClock()

#: Real-time granularity at which SimClock waits re-check events set by
#: other threads.  Purely a shutdown-latency bound, not a timing knob.
_POLL_TICK = 0.02


class SimClock(Clock):
    """Manually advanced virtual time.

    ``monotonic()`` returns a counter that only moves when a test calls
    :meth:`advance`.  Threads blocked in :meth:`sleep` or :meth:`wait`
    are woken by ``advance`` the moment their virtual deadline passes;
    :meth:`wait` additionally notices an externally set event within
    :data:`_POLL_TICK` real seconds, so lifecycle events (shutdown,
    stop flags) work unchanged.

    The wall clock is derived from the same counter against a fixed
    epoch, keeping ``uptime_sec``-style arithmetic deterministic.
    """

    def __init__(self, start: float = 0.0, epoch: float = 1_700_000_000.0) -> None:
        self._now = float(start)
        self._start = float(start)
        self._epoch = float(epoch)
        self.skewed = 0.0  # cumulative wall-clock skew injected via skew()
        self._cond = threading.Condition()

    def monotonic(self) -> float:
        with self._cond:
            return self._now

    def wall(self) -> float:
        with self._cond:
            return self._epoch + (self._now - self._start)

    def advance(self, seconds: float) -> float:
        """Move virtual time forward; wakes sleepers.  Returns now."""
        if seconds < 0:
            raise ValueError(f"cannot advance time backwards ({seconds})")
        with self._cond:
            self._now += seconds
            self._cond.notify_all()
            return self._now

    def skew(self, seconds: float) -> float:
        """Shift the *wall* clock by ``seconds`` (either direction)
        without moving monotonic time — an NTP step or a VM migration.

        Every policy deadline in the service compares ``monotonic()``
        readings, so a skewed wall clock must change nothing but
        display output (``uptime_sec``, report timestamps).  The chaos
        harness injects skew mid-soak to keep that property honest.
        Returns the new wall time.
        """
        with self._cond:
            self._epoch += seconds
            self.skewed += seconds
            self._cond.notify_all()
            return self._epoch + (self._now - self._start)

    def sleep(self, seconds: float) -> None:
        """Block until virtual time reaches ``now + seconds``.

        Only returns once some other thread advances the clock far
        enough — a test that sleeps on its own SimClock with no driver
        thread would wait forever, which is the point: virtual sleeps
        make hidden time dependencies loud instead of slow.
        """
        with self._cond:
            deadline = self._now + seconds
            while self._now < deadline:
                self._cond.wait()

    def wait(self, event: threading.Event, timeout: float) -> bool:
        with self._cond:
            deadline = self._now + timeout
            while True:
                if event.is_set():
                    return True
                if self._now >= deadline:
                    return event.is_set()
                # Woken early by advance(); the poll tick bounds how
                # long an externally set event can go unnoticed.
                self._cond.wait(_POLL_TICK)


__all__ = ["Clock", "SimClock", "SystemClock", "SYSTEM_CLOCK"]
