"""Correctness tooling for the profiling service.

``repro.testing`` makes every failure mode of the recording → wire →
ingest → analysis path reproducible on demand:

- :mod:`~repro.testing.clock` — a :class:`~repro.testing.clock.Clock`
  protocol the service's policy timers run on; tests swap in a
  :class:`~repro.testing.clock.SimClock` and advance virtual time
  instead of sleeping.
- :mod:`~repro.testing.traces` — seed-reproducible synthetic event
  streams mixing all primitive patterns and compound access types.
- :mod:`~repro.testing.faults` — a scripted man-in-the-middle
  :class:`~repro.testing.faults.FaultProxy` injecting resets,
  duplicates, reorders, corrupt records, stalls, and partial frames.
- :mod:`~repro.testing.oracle` — the differential oracle asserting
  batch, streaming, and full daemon-round-trip analysis agree exactly.
- :mod:`~repro.testing.chaos` — the time-boxed chaos soak: randomized
  kill/disk/storm schedules against the no-silent-loss ledger
  (``dsspy chaos``).
- :mod:`~repro.testing.shrink` — delta-debugging minimization of
  failing traces.
- :mod:`~repro.testing.hostile` — client-side injected faults (raising
  collector, raising/hanging channel) for the fail-open firewall of
  :mod:`repro.runtime`.

Despite the name this package is shipped, not test-only: the ``dsspy
selftest`` command runs the oracle against the installed code, and the
clock module is imported by the service itself.

Only :mod:`~repro.testing.clock` is imported eagerly — it is what the
service layer needs and it has no dependencies back into ``repro``.
Everything else resolves lazily (PEP 562) because :mod:`faults` and
:mod:`oracle` import the service package, which itself imports this
package for the clock; eager imports here would make that a cycle.
"""

from .clock import SYSTEM_CLOCK, Clock, SimClock, SystemClock

_LAZY = {
    "ChaosSoak": "chaos",
    "ChaosTrialResult": "chaos",
    "InvariantMonitor": "chaos",
    "FAULT_KINDS": "faults",
    "Fault": "faults",
    "FaultFS": "faults",
    "FaultPlan": "faults",
    "FaultProxy": "faults",
    "CLIENT_FAULT_KINDS": "hostile",
    "HangingChannel": "hostile",
    "HostileCollector": "hostile",
    "ProfilerBug": "hostile",
    "RaisingChannel": "hostile",
    "make_hostile_collector": "hostile",
    "DifferentialOracle": "oracle",
    "TrialResult": "oracle",
    "diff_summaries": "oracle",
    "run_batch_path": "oracle",
    "run_daemon_path": "oracle",
    "run_streaming_path": "oracle",
    "summarize_report": "oracle",
    "shrink_trace": "shrink",
    "Trace": "traces",
    "TraceInstance": "traces",
    "generate_trace": "traces",
}

__all__ = [
    "Clock",
    "SYSTEM_CLOCK",
    "SimClock",
    "SystemClock",
    *sorted(_LAZY),
]


def __getattr__(name: str):
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    module = importlib.import_module(f".{module_name}", __name__)
    value = getattr(module, name)
    globals()[name] = value
    return value
