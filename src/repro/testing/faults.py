"""Scripted fault injection between a service client and the daemon.

:class:`FaultProxy` is a TCP man-in-the-middle: clients dial the proxy,
the proxy dials the real daemon, and bytes flow through a pump that
reassembles the client→daemon stream into protocol frames and applies
a seeded :class:`FaultPlan` to the EVENTS frames passing by.  The
daemon→client direction is forwarded untouched — the guarantees under
test (exact resume, overlap dedup, corrupt-frame rejection) all
concern what the *daemon* receives.

Faults are drawn from the failure modes a real deployment meets:

``reset``
    Both sides of the proxied connection are torn down mid-stream.
    The client sees a broken socket and must reconnect + retransmit.
``duplicate``
    An EVENTS frame is forwarded twice.  The daemon's stream-index
    dedup must fold it exactly once.
``reorder``
    An EVENTS frame is held back and sent *after* its successor.  The
    daemon sees a stream-index gap — a hard protocol error — and must
    recover through the reconnect path.
``corrupt``
    One record inside an EVENTS frame gets its op byte blown to 0xFF
    (guaranteed implausible).  The daemon must reject the frame rather
    than fold garbage.
``chunk``
    The frame is dribbled out in single-digit-byte pieces, exercising
    partial-read reassembly.
``stall``
    Forwarding pauses briefly (bounded real time), exercising timeout
    tolerance without slowing the suite meaningfully.
``kill``
    The *daemon itself* dies mid-ingest.  The proxy invokes its
    ``on_kill`` callback — the oracle crashes the daemon (SIGKILL
    semantics: no flush, no reports) and starts a replacement on the
    same state directory, returning the new address — then tears the
    connection down like a reset.  Without a callback the fault
    degrades to a plain reset, so the proxy still works against a
    daemon that cannot be restarted.

Every decision comes from ``random.Random(seed)`` at plan-build time,
so a failing trial is replayed exactly by its seed.  Plans are finite:
after ``max_faults`` injections the proxy turns transparent, which
guarantees every trial eventually completes.
"""

from __future__ import annotations

import errno
import os
import random
import socket
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import IO

from ..events.spill import RECORD_SIZE
from ..service.protocol import (
    _EVENTS_HEADER,
    FrameDecoder,
    MessageType,
    ProtocolError,
    encode_frame,
)

FAULT_KINDS = ("reset", "duplicate", "reorder", "corrupt", "chunk", "stall", "kill")

#: Byte offset of the op field inside a packed record ("<qqqiBBBd").
_OP_BYTE_OFFSET = 28
_STALL_SECONDS = 0.02


@dataclass(frozen=True)
class Fault:
    """One scripted injection: apply ``kind`` to EVENTS frame number
    ``frame_index`` (counted across all proxied connections)."""

    frame_index: int
    kind: str


@dataclass
class FaultPlan:
    """Seed-deterministic schedule of faults over the EVENTS stream."""

    faults: dict[int, str] = field(default_factory=dict)
    injected: list[Fault] = field(default_factory=list)

    @classmethod
    def from_seed(
        cls,
        seed: int,
        *,
        intensity: float = 0.15,
        horizon: int = 64,
        max_faults: int = 8,
        kinds: tuple[str, ...] = FAULT_KINDS,
    ) -> "FaultPlan":
        """Roll a fault for each of the first ``horizon`` EVENTS frames
        with probability ``intensity``, capped at ``max_faults``."""
        for kind in kinds:
            if kind not in FAULT_KINDS:
                raise ValueError(f"unknown fault kind {kind!r}; choose from {FAULT_KINDS}")
        rng = random.Random(seed)
        faults: dict[int, str] = {}
        for index in range(horizon):
            if len(faults) >= max_faults:
                break
            if rng.random() < intensity:
                faults[index] = rng.choice(kinds)
        return cls(faults=faults)

    @classmethod
    def transparent(cls) -> "FaultPlan":
        return cls()

    def action_for(self, frame_index: int) -> str | None:
        return self.faults.get(frame_index)

    def record(self, frame_index: int, kind: str) -> None:
        self.injected.append(Fault(frame_index, kind))

    def describe(self) -> str:
        if not self.faults:
            return "transparent"
        return ", ".join(f"#{i}:{k}" for i, k in sorted(self.faults.items()))


def _corrupt_events_payload(payload: bytes) -> bytes:
    """Blow the op byte of the middle record to 0xFF (implausible by
    construction, so the corruption is always *detectable* — a silent
    bit flip that stays plausible is outside this harness's contract)."""
    body_len = len(payload) - _EVENTS_HEADER.size
    if body_len < RECORD_SIZE:
        return payload  # empty window: nothing to corrupt
    count = body_len // RECORD_SIZE
    offset = _EVENTS_HEADER.size + (count // 2) * RECORD_SIZE + _OP_BYTE_OFFSET
    blob = bytearray(payload)
    blob[offset] = 0xFF
    return bytes(blob)


class _ConnectionReset(Exception):
    """Internal signal: the plan asked for a mid-stream reset."""


class FaultProxy:
    """Man-in-the-middle proxy applying a :class:`FaultPlan`.

    Counts EVENTS frames across *all* connections it ever carries, so
    a plan keeps progressing through client reconnects.  Thread-safe
    for one logical client (the oracle's usage); multiple concurrent
    clients would share one fault schedule.
    """

    def __init__(
        self,
        upstream_address: str,
        plan: FaultPlan | None = None,
        on_kill=None,
    ) -> None:
        self.upstream_address = upstream_address
        self.on_kill = on_kill
        self.plan = plan if plan is not None else FaultPlan.transparent()
        self.events_seen = 0
        self.bytes_forwarded = 0
        self._lock = threading.Lock()
        self._closed = False
        self._pairs: list[tuple[socket.socket, socket.socket]] = []
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind(("127.0.0.1", 0))
        self._listener.listen(16)
        self.host, self.port = self._listener.getsockname()[:2]
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="dsspy-faultproxy-accept", daemon=True
        )
        self._accept_thread.start()

    @property
    def address(self) -> str:
        return f"{self.host}:{self.port}"

    @property
    def injected(self) -> list[Fault]:
        return list(self.plan.injected)

    # -- plumbing --------------------------------------------------------

    def _accept_loop(self) -> None:
        from ..service.client import parse_address

        while True:
            try:
                client_sock, _ = self._listener.accept()
            except OSError:
                return
            # Re-resolve per connection: a kill fault replaces the
            # upstream daemon, and its restart rarely lands on the
            # same port.
            family, connect_arg = parse_address(self.upstream_address)
            try:
                upstream = socket.socket(family, socket.SOCK_STREAM)
                upstream.connect(connect_arg)
            except OSError:
                client_sock.close()
                continue
            with self._lock:
                if self._closed:
                    client_sock.close()
                    upstream.close()
                    return
                self._pairs.append((client_sock, upstream))
            threading.Thread(
                target=self._pump_c2s,
                args=(client_sock, upstream),
                name="dsspy-faultproxy-c2s",
                daemon=True,
            ).start()
            threading.Thread(
                target=self._pump_transparent,
                args=(upstream, client_sock),
                name="dsspy-faultproxy-s2c",
                daemon=True,
            ).start()

    def _pump_transparent(self, src: socket.socket, dst: socket.socket) -> None:
        try:
            while True:
                data = src.recv(65536)
                if not data:
                    break
                dst.sendall(data)
        except OSError:
            pass
        finally:
            self._drop(src, dst)

    def _pump_c2s(self, client_sock: socket.socket, upstream: socket.socket) -> None:
        decoder = FrameDecoder()
        try:
            while True:
                data = client_sock.recv(65536)
                if not data:
                    break
                for mtype, payload in decoder.feed(data):
                    self._forward(upstream, mtype, payload)
        except (OSError, ProtocolError, _ConnectionReset):
            pass
        finally:
            self._drop(client_sock, upstream)

    def _forward(self, upstream: socket.socket, mtype: int, payload: bytes) -> None:
        if mtype != MessageType.EVENTS:
            upstream.sendall(encode_frame(mtype, payload))
            return
        with self._lock:
            index = self.events_seen
            self.events_seen += 1
            action = self.plan.action_for(index)
            if action is not None:
                self.plan.record(index, action)
        frame = encode_frame(mtype, payload)
        if action is None:
            upstream.sendall(frame)
        elif action == "duplicate":
            upstream.sendall(frame)
            upstream.sendall(frame)
        elif action == "corrupt":
            upstream.sendall(encode_frame(mtype, _corrupt_events_payload(payload)))
        elif action == "chunk":
            for offset in range(0, len(frame), 7):
                upstream.sendall(frame[offset : offset + 7])
        elif action == "stall":
            time.sleep(_STALL_SECONDS)
            upstream.sendall(frame)
        elif action == "reorder":
            # Ship the *next* complete EVENTS window first by sending
            # this frame after a duplicate of itself shifted: simplest
            # faithful reordering is to swap payload halves when the
            # window has 2+ records — the daemon sees the later half's
            # stream indices first, i.e. a gap.
            upstream.sendall(_swap_halves(payload))
        elif action == "reset":
            raise _ConnectionReset
        elif action == "kill":
            # Crash-and-restart the upstream daemon, then sever the
            # connection like a reset: the client reconnects (through
            # us) to the *recovered* daemon and resumes.  The window
            # that triggered the kill was never forwarded — the
            # retransmit covers it.
            on_kill = self.on_kill
            if on_kill is not None:
                new_address = on_kill()
                if new_address:
                    self.upstream_address = new_address
            raise _ConnectionReset
        self.bytes_forwarded += len(frame)

    def _drop(self, *socks: socket.socket) -> None:
        for sock in socks:
            try:
                sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                sock.close()
            except OSError:
                pass

    def close(self) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
            pairs = list(self._pairs)
        try:
            self._listener.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        self._listener.close()
        for client_sock, upstream in pairs:
            self._drop(client_sock, upstream)
        self._accept_thread.join(timeout=5.0)

    def __enter__(self) -> "FaultProxy":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class FaultFS:
    """A filesystem that runs out of things, on schedule.

    Duck-types :class:`repro.service.governor.RealFS` so it can be
    injected anywhere the durability layer takes an ``fs`` — journal
    appends, checkpoint renames, state-budget measurement — and makes
    the resource-exhaustion branches deterministically reachable:

    ``enospc_after_bytes``
        A write budget.  Once cumulative written bytes reach it, every
        mutating operation (write, write_text, replace) raises
        ``ENOSPC`` until :meth:`relieve` frees space.  With
        ``partial_writes`` the failing write first lands as many bytes
        as still fit — the torn-record case the journal's self-healing
        truncate exists for.
    ``eio_every_reads``
        Every k-th read (``read_bytes``/``read_text``) raises ``EIO``
        — a disk developing bad sectors under a recovery scan.
    ``fsync_stall_seconds``
        Every fsync sleeps this long (real time) before completing — a
        saturated device making the durability barrier *slow* rather
        than broken.

    Failure decisions are counter-based, not sampled per call, so a
    single-threaded test replays exactly; :meth:`from_seed` rolls a
    randomized-but-reproducible configuration for the chaos harness,
    and :meth:`from_spec` parses the ``--fault-fs`` CLI string a fleet
    worker subprocess uses to build the same thing.

    Deliberately unmodeled: per-path accounting (``unlink`` does not
    refund budget — freed segments and a full disk racing each other is
    exactly the pressure the governor must survive anyway).
    """

    def __init__(
        self,
        *,
        enospc_after_bytes: int | None = None,
        partial_writes: bool = False,
        eio_every_reads: int | None = None,
        fsync_stall_seconds: float = 0.0,
    ) -> None:
        if enospc_after_bytes is not None and enospc_after_bytes < 0:
            raise ValueError(f"enospc_after_bytes must be >= 0, got {enospc_after_bytes}")
        if eio_every_reads is not None and eio_every_reads <= 0:
            raise ValueError(f"eio_every_reads must be positive, got {eio_every_reads}")
        self.enospc_after_bytes = enospc_after_bytes
        self.partial_writes = partial_writes
        self.eio_every_reads = eio_every_reads
        self.fsync_stall_seconds = fsync_stall_seconds
        self._lock = threading.Lock()
        self.bytes_written = 0
        self.reads = 0
        self.writes_failed = 0
        self.reads_failed = 0
        self.fsync_stalls = 0

    # -- construction -----------------------------------------------------

    @classmethod
    def from_seed(cls, seed: int, *, intensity: float = 0.6) -> "FaultFS":
        """Roll a reproducible disk-fault profile for one chaos trial."""
        rng = random.Random(seed)
        kwargs: dict = {}
        if rng.random() < intensity:
            kwargs["enospc_after_bytes"] = rng.randrange(512, 1 << 20)
            kwargs["partial_writes"] = rng.random() < 0.5
        if rng.random() < intensity * 0.5:
            kwargs["eio_every_reads"] = rng.randrange(5, 50)
        if rng.random() < intensity * 0.3:
            kwargs["fsync_stall_seconds"] = rng.uniform(0.001, 0.01)
        return cls(**kwargs)

    @classmethod
    def from_spec(cls, spec: str) -> "FaultFS":
        """Parse a ``--fault-fs`` string: comma-separated
        ``enospc-after=N``, ``partial``, ``eio-every=K``,
        ``fsync-stall=SECS``, or ``seed=N`` (which rolls everything
        else via :meth:`from_seed` and ignores other keys)."""
        kwargs: dict = {}
        for part in spec.split(","):
            part = part.strip()
            if not part:
                continue
            key, _, value = part.partition("=")
            if key == "seed":
                return cls.from_seed(int(value))
            if key == "enospc-after":
                kwargs["enospc_after_bytes"] = int(value)
            elif key == "partial":
                kwargs["partial_writes"] = value in ("", "1", "true")
            elif key == "eio-every":
                kwargs["eio_every_reads"] = int(value)
            elif key == "fsync-stall":
                kwargs["fsync_stall_seconds"] = float(value)
            else:
                raise ValueError(
                    f"unknown --fault-fs key {key!r} in {spec!r}; expected "
                    "enospc-after/partial/eio-every/fsync-stall/seed"
                )
        return cls(**kwargs)

    # -- fault controls ---------------------------------------------------

    def relieve(self, extra_bytes: int | None = None) -> None:
        """The operator freed disk space: lift the ENOSPC budget
        entirely, or extend it by ``extra_bytes``."""
        with self._lock:
            if extra_bytes is None:
                self.enospc_after_bytes = None
            elif self.enospc_after_bytes is not None:
                self.enospc_after_bytes += extra_bytes

    def _charge_write(self, size: int) -> int:
        """Budget one write of ``size`` bytes; returns how many bytes
        may land (< size means a partial write precedes the failure).
        Raises ENOSPC when nothing fits."""
        with self._lock:
            if self.enospc_after_bytes is None:
                self.bytes_written += size
                return size
            room = self.enospc_after_bytes - self.bytes_written
            if room >= size:
                self.bytes_written += size
                return size
            self.writes_failed += 1
            landed = max(0, room) if self.partial_writes else 0
            self.bytes_written += landed
        if landed:
            return landed
        raise OSError(errno.ENOSPC, "FaultFS: write budget exhausted")

    def _charge_read(self, path) -> None:
        with self._lock:
            self.reads += 1
            if (
                self.eio_every_reads is not None
                and self.reads % self.eio_every_reads == 0
            ):
                self.reads_failed += 1
                raise OSError(errno.EIO, f"FaultFS: scripted read error on {path}")

    # -- the RealFS surface -----------------------------------------------

    def open(self, path: str | Path, mode: str = "wb") -> IO[bytes]:
        return Path(path).open(mode)

    def write(self, fh: IO[bytes], data: bytes) -> None:
        landed = self._charge_write(len(data))
        if landed < len(data):
            # Partial write, then the failure the caller must heal from.
            fh.write(data[:landed])
            fh.flush()
            raise OSError(errno.ENOSPC, "FaultFS: disk filled mid-write")
        fh.write(data)
        fh.flush()

    def fsync(self, fh: IO[bytes]) -> None:
        if self.fsync_stall_seconds:
            with self._lock:
                self.fsync_stalls += 1
            time.sleep(self.fsync_stall_seconds)
        os.fsync(fh.fileno())

    def read_bytes(self, path: str | Path) -> bytes:
        self._charge_read(path)
        return Path(path).read_bytes()

    def read_text(self, path: str | Path) -> str:
        self._charge_read(path)
        return Path(path).read_text()

    def write_text(self, path: str | Path, text: str) -> None:
        data = text.encode()
        landed = self._charge_write(len(data))
        if landed < len(data):
            Path(path).write_bytes(data[:landed])
            raise OSError(errno.ENOSPC, "FaultFS: disk filled mid-write")
        Path(path).write_text(text)

    def replace(self, src: str | Path, dst: str | Path) -> None:
        # A rename allocates directory blocks; once the budget is gone
        # it fails too (the checkpoint-rename failure branch).
        self._charge_write(0 if self.enospc_after_bytes is None else 1)
        os.replace(src, dst)

    def unlink(self, path: str | Path) -> None:
        Path(path).unlink(missing_ok=True)

    def size(self, path: str | Path) -> int:
        try:
            return Path(path).stat().st_size
        except OSError:
            return 0

    def tree_bytes(self, root: str | Path) -> int:
        total = 0
        for dirpath, _dirnames, filenames in os.walk(root):
            for name in filenames:
                total += self.size(Path(dirpath) / name)
        return total

    # -- observability ----------------------------------------------------

    def stats(self) -> dict:
        with self._lock:
            return {
                "bytes_written": self.bytes_written,
                "writes_failed": self.writes_failed,
                "reads": self.reads,
                "reads_failed": self.reads_failed,
                "fsync_stalls": self.fsync_stalls,
                "enospc_after_bytes": self.enospc_after_bytes,
            }


def _swap_halves(payload: bytes) -> bytes:
    """Split one EVENTS window into two frames and emit them in the
    wrong order (later stream indices first)."""
    start, count = _EVENTS_HEADER.unpack_from(payload)
    body = payload[_EVENTS_HEADER.size :]
    if count < 2:
        return encode_frame(MessageType.EVENTS, payload)
    half = count // 2
    first = body[: half * RECORD_SIZE]
    second = body[half * RECORD_SIZE :]
    late = _EVENTS_HEADER.pack(start + half, count - half) + second
    early = _EVENTS_HEADER.pack(start, half) + first
    return encode_frame(MessageType.EVENTS, late) + encode_frame(MessageType.EVENTS, early)


__all__ = ["FAULT_KINDS", "Fault", "FaultFS", "FaultPlan", "FaultProxy"]
