"""Scripted fault injection between a service client and the daemon.

:class:`FaultProxy` is a TCP man-in-the-middle: clients dial the proxy,
the proxy dials the real daemon, and bytes flow through a pump that
reassembles the client→daemon stream into protocol frames and applies
a seeded :class:`FaultPlan` to the EVENTS frames passing by.  The
daemon→client direction is forwarded untouched — the guarantees under
test (exact resume, overlap dedup, corrupt-frame rejection) all
concern what the *daemon* receives.

Faults are drawn from the failure modes a real deployment meets:

``reset``
    Both sides of the proxied connection are torn down mid-stream.
    The client sees a broken socket and must reconnect + retransmit.
``duplicate``
    An EVENTS frame is forwarded twice.  The daemon's stream-index
    dedup must fold it exactly once.
``reorder``
    An EVENTS frame is held back and sent *after* its successor.  The
    daemon sees a stream-index gap — a hard protocol error — and must
    recover through the reconnect path.
``corrupt``
    One record inside an EVENTS frame gets its op byte blown to 0xFF
    (guaranteed implausible).  The daemon must reject the frame rather
    than fold garbage.
``chunk``
    The frame is dribbled out in single-digit-byte pieces, exercising
    partial-read reassembly.
``stall``
    Forwarding pauses briefly (bounded real time), exercising timeout
    tolerance without slowing the suite meaningfully.
``kill``
    The *daemon itself* dies mid-ingest.  The proxy invokes its
    ``on_kill`` callback — the oracle crashes the daemon (SIGKILL
    semantics: no flush, no reports) and starts a replacement on the
    same state directory, returning the new address — then tears the
    connection down like a reset.  Without a callback the fault
    degrades to a plain reset, so the proxy still works against a
    daemon that cannot be restarted.

Every decision comes from ``random.Random(seed)`` at plan-build time,
so a failing trial is replayed exactly by its seed.  Plans are finite:
after ``max_faults`` injections the proxy turns transparent, which
guarantees every trial eventually completes.
"""

from __future__ import annotations

import random
import socket
import threading
import time
from dataclasses import dataclass, field

from ..events.spill import RECORD_SIZE
from ..service.protocol import (
    _EVENTS_HEADER,
    FrameDecoder,
    MessageType,
    ProtocolError,
    encode_frame,
)

FAULT_KINDS = ("reset", "duplicate", "reorder", "corrupt", "chunk", "stall", "kill")

#: Byte offset of the op field inside a packed record ("<qqqiBBBd").
_OP_BYTE_OFFSET = 28
_STALL_SECONDS = 0.02


@dataclass(frozen=True)
class Fault:
    """One scripted injection: apply ``kind`` to EVENTS frame number
    ``frame_index`` (counted across all proxied connections)."""

    frame_index: int
    kind: str


@dataclass
class FaultPlan:
    """Seed-deterministic schedule of faults over the EVENTS stream."""

    faults: dict[int, str] = field(default_factory=dict)
    injected: list[Fault] = field(default_factory=list)

    @classmethod
    def from_seed(
        cls,
        seed: int,
        *,
        intensity: float = 0.15,
        horizon: int = 64,
        max_faults: int = 8,
        kinds: tuple[str, ...] = FAULT_KINDS,
    ) -> "FaultPlan":
        """Roll a fault for each of the first ``horizon`` EVENTS frames
        with probability ``intensity``, capped at ``max_faults``."""
        for kind in kinds:
            if kind not in FAULT_KINDS:
                raise ValueError(f"unknown fault kind {kind!r}; choose from {FAULT_KINDS}")
        rng = random.Random(seed)
        faults: dict[int, str] = {}
        for index in range(horizon):
            if len(faults) >= max_faults:
                break
            if rng.random() < intensity:
                faults[index] = rng.choice(kinds)
        return cls(faults=faults)

    @classmethod
    def transparent(cls) -> "FaultPlan":
        return cls()

    def action_for(self, frame_index: int) -> str | None:
        return self.faults.get(frame_index)

    def record(self, frame_index: int, kind: str) -> None:
        self.injected.append(Fault(frame_index, kind))

    def describe(self) -> str:
        if not self.faults:
            return "transparent"
        return ", ".join(f"#{i}:{k}" for i, k in sorted(self.faults.items()))


def _corrupt_events_payload(payload: bytes) -> bytes:
    """Blow the op byte of the middle record to 0xFF (implausible by
    construction, so the corruption is always *detectable* — a silent
    bit flip that stays plausible is outside this harness's contract)."""
    body_len = len(payload) - _EVENTS_HEADER.size
    if body_len < RECORD_SIZE:
        return payload  # empty window: nothing to corrupt
    count = body_len // RECORD_SIZE
    offset = _EVENTS_HEADER.size + (count // 2) * RECORD_SIZE + _OP_BYTE_OFFSET
    blob = bytearray(payload)
    blob[offset] = 0xFF
    return bytes(blob)


class _ConnectionReset(Exception):
    """Internal signal: the plan asked for a mid-stream reset."""


class FaultProxy:
    """Man-in-the-middle proxy applying a :class:`FaultPlan`.

    Counts EVENTS frames across *all* connections it ever carries, so
    a plan keeps progressing through client reconnects.  Thread-safe
    for one logical client (the oracle's usage); multiple concurrent
    clients would share one fault schedule.
    """

    def __init__(
        self,
        upstream_address: str,
        plan: FaultPlan | None = None,
        on_kill=None,
    ) -> None:
        self.upstream_address = upstream_address
        self.on_kill = on_kill
        self.plan = plan if plan is not None else FaultPlan.transparent()
        self.events_seen = 0
        self.bytes_forwarded = 0
        self._lock = threading.Lock()
        self._closed = False
        self._pairs: list[tuple[socket.socket, socket.socket]] = []
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind(("127.0.0.1", 0))
        self._listener.listen(16)
        self.host, self.port = self._listener.getsockname()[:2]
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="dsspy-faultproxy-accept", daemon=True
        )
        self._accept_thread.start()

    @property
    def address(self) -> str:
        return f"{self.host}:{self.port}"

    @property
    def injected(self) -> list[Fault]:
        return list(self.plan.injected)

    # -- plumbing --------------------------------------------------------

    def _accept_loop(self) -> None:
        from ..service.client import parse_address

        while True:
            try:
                client_sock, _ = self._listener.accept()
            except OSError:
                return
            # Re-resolve per connection: a kill fault replaces the
            # upstream daemon, and its restart rarely lands on the
            # same port.
            family, connect_arg = parse_address(self.upstream_address)
            try:
                upstream = socket.socket(family, socket.SOCK_STREAM)
                upstream.connect(connect_arg)
            except OSError:
                client_sock.close()
                continue
            with self._lock:
                if self._closed:
                    client_sock.close()
                    upstream.close()
                    return
                self._pairs.append((client_sock, upstream))
            threading.Thread(
                target=self._pump_c2s,
                args=(client_sock, upstream),
                name="dsspy-faultproxy-c2s",
                daemon=True,
            ).start()
            threading.Thread(
                target=self._pump_transparent,
                args=(upstream, client_sock),
                name="dsspy-faultproxy-s2c",
                daemon=True,
            ).start()

    def _pump_transparent(self, src: socket.socket, dst: socket.socket) -> None:
        try:
            while True:
                data = src.recv(65536)
                if not data:
                    break
                dst.sendall(data)
        except OSError:
            pass
        finally:
            self._drop(src, dst)

    def _pump_c2s(self, client_sock: socket.socket, upstream: socket.socket) -> None:
        decoder = FrameDecoder()
        try:
            while True:
                data = client_sock.recv(65536)
                if not data:
                    break
                for mtype, payload in decoder.feed(data):
                    self._forward(upstream, mtype, payload)
        except (OSError, ProtocolError, _ConnectionReset):
            pass
        finally:
            self._drop(client_sock, upstream)

    def _forward(self, upstream: socket.socket, mtype: int, payload: bytes) -> None:
        if mtype != MessageType.EVENTS:
            upstream.sendall(encode_frame(mtype, payload))
            return
        with self._lock:
            index = self.events_seen
            self.events_seen += 1
            action = self.plan.action_for(index)
            if action is not None:
                self.plan.record(index, action)
        frame = encode_frame(mtype, payload)
        if action is None:
            upstream.sendall(frame)
        elif action == "duplicate":
            upstream.sendall(frame)
            upstream.sendall(frame)
        elif action == "corrupt":
            upstream.sendall(encode_frame(mtype, _corrupt_events_payload(payload)))
        elif action == "chunk":
            for offset in range(0, len(frame), 7):
                upstream.sendall(frame[offset : offset + 7])
        elif action == "stall":
            time.sleep(_STALL_SECONDS)
            upstream.sendall(frame)
        elif action == "reorder":
            # Ship the *next* complete EVENTS window first by sending
            # this frame after a duplicate of itself shifted: simplest
            # faithful reordering is to swap payload halves when the
            # window has 2+ records — the daemon sees the later half's
            # stream indices first, i.e. a gap.
            upstream.sendall(_swap_halves(payload))
        elif action == "reset":
            raise _ConnectionReset
        elif action == "kill":
            # Crash-and-restart the upstream daemon, then sever the
            # connection like a reset: the client reconnects (through
            # us) to the *recovered* daemon and resumes.  The window
            # that triggered the kill was never forwarded — the
            # retransmit covers it.
            on_kill = self.on_kill
            if on_kill is not None:
                new_address = on_kill()
                if new_address:
                    self.upstream_address = new_address
            raise _ConnectionReset
        self.bytes_forwarded += len(frame)

    def _drop(self, *socks: socket.socket) -> None:
        for sock in socks:
            try:
                sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                sock.close()
            except OSError:
                pass

    def close(self) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
            pairs = list(self._pairs)
        try:
            self._listener.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        self._listener.close()
        for client_sock, upstream in pairs:
            self._drop(client_sock, upstream)
        self._accept_thread.join(timeout=5.0)

    def __enter__(self) -> "FaultProxy":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def _swap_halves(payload: bytes) -> bytes:
    """Split one EVENTS window into two frames and emit them in the
    wrong order (later stream indices first)."""
    start, count = _EVENTS_HEADER.unpack_from(payload)
    body = payload[_EVENTS_HEADER.size :]
    if count < 2:
        return encode_frame(MessageType.EVENTS, payload)
    half = count // 2
    first = body[: half * RECORD_SIZE]
    second = body[half * RECORD_SIZE :]
    late = _EVENTS_HEADER.pack(start + half, count - half) + second
    early = _EVENTS_HEADER.pack(start, half) + first
    return encode_frame(MessageType.EVENTS, late) + encode_frame(MessageType.EVENTS, early)


__all__ = ["FAULT_KINDS", "Fault", "FaultPlan", "FaultProxy"]
