"""Minimization of failing differential traces.

When a seeded trial fails, the raw trace behind it can be thousands of
events across several instances — far more than the actual bug needs.
:func:`shrink_trace` reduces it with delta debugging: because every
analysis path consumes the *same* event stream, any subsequence of a
trace is itself a valid trace, so shrinking is free to drop arbitrary
events as long as the failure predicate keeps failing.

The strategy is the classic two-phase ddmin-lite:

1. **Instance elimination** — try dropping each instance's entire
   stream (most differential bugs involve one instance).
2. **Chunk elimination** — repeatedly try removing contiguous chunks
   of the remaining stream, halving the chunk size whenever a full
   pass removes nothing, down to single events.

The predicate receives a candidate :class:`~repro.testing.traces.Trace`
and returns ``True`` while the failure still reproduces.  Predicates
are typically a re-run of the differential trial with the same fault
seed — deterministic by construction, so shrinking is sound.
"""

from __future__ import annotations

from typing import Callable

from .traces import Trace, TraceInstance

Predicate = Callable[[Trace], bool]


def _candidate(base: Trace, instances: list[TraceInstance], events: list) -> Trace:
    return Trace(seed=base.seed, instances=instances, events=list(events))


def _drop_instances(trace: Trace, still_fails: Predicate) -> Trace:
    changed = True
    while changed and len(trace.instances) > 1:
        changed = False
        for inst in list(trace.instances):
            instances = [i for i in trace.instances if i is not inst]
            events = [raw for raw in trace.events if raw[0] != inst.instance_id]
            candidate = _candidate(trace, instances, events)
            if still_fails(candidate):
                trace = candidate
                changed = True
                break
    return trace


def _drop_chunks(trace: Trace, still_fails: Predicate, max_rounds: int) -> Trace:
    chunk = max(len(trace.events) // 2, 1)
    rounds = 0
    while chunk >= 1 and rounds < max_rounds:
        removed_any = False
        start = 0
        while start < len(trace.events):
            rounds += 1
            if rounds >= max_rounds:
                break
            events = trace.events[:start] + trace.events[start + chunk :]
            candidate = _candidate(trace, trace.instances, events)
            if events and still_fails(candidate):
                trace = candidate
                removed_any = True
                # Same start now addresses the next chunk.
            else:
                start += chunk
        if not removed_any:
            if chunk == 1:
                break
            chunk = max(chunk // 2, 1)
    return trace


def shrink_trace(
    trace: Trace,
    still_fails: Predicate,
    *,
    max_rounds: int = 400,
) -> Trace:
    """Minimize ``trace`` while ``still_fails(candidate)`` holds.

    ``max_rounds`` bounds the number of predicate evaluations in the
    chunk phase — each evaluation replays a full differential trial,
    so the bound keeps worst-case shrink time predictable.  The result
    is 1-minimal only if the budget allowed it; it is always a valid
    failing trace no larger than the input.
    """
    if not still_fails(trace):
        raise ValueError("shrink_trace needs a failing trace to start from")
    trace = _drop_instances(trace, still_fails)
    trace = _drop_chunks(trace, still_fails, max_rounds)
    # Instances may have become silent during chunking; one more pass.
    trace = _drop_instances(trace, still_fails)
    return trace


__all__ = ["shrink_trace"]
