"""Seed-reproducible synthetic event traces.

The differential oracle needs inputs that exercise the whole analysis
vocabulary — all eight primitive access patterns, the compound access
types, multiple instances, multiple threads, interleaving — while
staying perfectly reproducible from a single integer seed.  Recording
real workloads gives realism but couples the test to instrumentation
details; :func:`generate_trace` instead emits the raw event tuples
directly, the same ``(instance_id, op, kind, position, size,
thread_id, wall_time)`` shape the channels transport, so every layer
from the wire protocol down to the rules sees production-shaped data.

A trace is built from *segments*: one instance running one pattern for
a stretch of events (a forward read scan, an append run, a burst of
compound ops ...).  Per-instance segments are generated with a
consistent size evolution (reads stay in bounds, deletes shrink,
inserts grow), then the per-instance streams are interleaved into one
global stream with seeded round-robin bursts — per-instance order is
preserved (the convergence contract requires nothing more) while the
global stream exhibits the cross-instance mixing a real multi-client
capture has.

Determinism contract: ``generate_trace(seed)`` is a pure function of
its arguments.  Two calls with the same seed produce identical traces
on any platform (only ``random.Random``, no global RNG, no time).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from ..events.event import RawEvent
from ..events.types import AccessKind, OperationKind, StructureKind

_READ = int(AccessKind.READ)
_WRITE = int(AccessKind.WRITE)


@dataclass(frozen=True)
class TraceInstance:
    """Identity of one synthetic data-structure instance."""

    instance_id: int
    kind: StructureKind
    label: str

    def registration(self) -> dict:
        """REGISTER-payload entry for the wire protocol."""
        return {
            "id": self.instance_id,
            "kind": self.kind.value,
            "site": None,
            "label": self.label,
        }


@dataclass
class Trace:
    """One generated event stream plus the identities behind it."""

    seed: int
    instances: list[TraceInstance]
    events: list[RawEvent] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.events)

    def events_of(self, instance_id: int) -> list[RawEvent]:
        return [raw for raw in self.events if raw[0] == instance_id]

    def describe(self) -> str:
        per_instance = ", ".join(
            f"#{inst.instance_id}:{len(self.events_of(inst.instance_id))}"
            for inst in self.instances
        )
        return (
            f"trace(seed={self.seed}, {len(self.instances)} instances, "
            f"{len(self.events)} events; {per_instance})"
        )


# -- segment emitters --------------------------------------------------------
#
# Each emitter appends events of one pattern to `out`, reading and
# updating the instance's current size.  They return the new size.


def _scan(out, iid, op, kind, size, length, thread_id, forward):
    if size == 0:
        return size
    positions = range(size) if forward else range(size - 1, -1, -1)
    emitted = 0
    while emitted < length:
        for pos in positions:
            if emitted >= length:
                break
            out.append((iid, op, kind, pos, size, thread_id, None))
            emitted += 1
    return size


def _insert_back(out, iid, size, length, thread_id):
    for _ in range(length):
        out.append((iid, int(OperationKind.INSERT), _WRITE, size, size + 1, thread_id, None))
        size += 1
    return size


def _insert_front(out, iid, size, length, thread_id):
    for _ in range(length):
        size += 1
        out.append((iid, int(OperationKind.INSERT), _WRITE, 0, size, thread_id, None))
    return size


def _delete_back(out, iid, size, length, thread_id):
    for _ in range(min(length, max(size - 1, 0))):
        out.append((iid, int(OperationKind.DELETE), _WRITE, size - 1, size, thread_id, None))
        size -= 1
    return size


def _delete_front(out, iid, size, length, thread_id):
    for _ in range(min(length, max(size - 1, 0))):
        out.append((iid, int(OperationKind.DELETE), _WRITE, 0, size, thread_id, None))
        size -= 1
    return size


def _compound_burst(out, rng, iid, size, length, thread_id):
    """Whole-structure compound ops plus scattered point accesses."""
    whole = (
        OperationKind.SEARCH,
        OperationKind.COPY,
        OperationKind.FORALL,
        OperationKind.REVERSE,
        OperationKind.SORT,
    )
    for _ in range(length):
        roll = rng.random()
        if roll < 0.5:
            op = rng.choice(whole)
            kind = _READ if op.is_read_like else _WRITE
            out.append((iid, int(op), kind, None, size, thread_id, None))
        elif roll < 0.75 and size:
            out.append(
                (iid, int(OperationKind.READ), _READ, rng.randrange(size), size, thread_id, None)
            )
        elif size:
            out.append(
                (iid, int(OperationKind.WRITE), _WRITE, rng.randrange(size), size, thread_id, None)
            )
    return size


def _random_noise(out, rng, iid, size, length, thread_id):
    """Unstructured point accesses — the anti-pattern filler."""
    for _ in range(length):
        if size == 0:
            size = _insert_back(out, iid, size, 1, thread_id)
            continue
        if rng.random() < 0.6:
            out.append(
                (iid, int(OperationKind.READ), _READ, rng.randrange(size), size, thread_id, None)
            )
        else:
            out.append(
                (iid, int(OperationKind.WRITE), _WRITE, rng.randrange(size), size, thread_id, None)
            )
    return size


_SEGMENT_KINDS = (
    "read_forward",
    "write_forward",
    "read_backward",
    "write_backward",
    "insert_back",
    "insert_front",
    "delete_back",
    "delete_front",
    "sort_after_insert",
    "compound",
    "noise",
)

_LINEAR_KINDS = (
    StructureKind.LIST,
    StructureKind.ARRAY_LIST,
    StructureKind.STACK,
    StructureKind.QUEUE,
    StructureKind.LINKED_LIST,
)


def _emit_segment(out, rng, iid, segment, size, length, thread_id):
    read, write = int(OperationKind.READ), int(OperationKind.WRITE)
    if segment == "read_forward":
        return _scan(out, iid, read, _READ, size, length, thread_id, True)
    if segment == "write_forward":
        return _scan(out, iid, write, _WRITE, size, length, thread_id, True)
    if segment == "read_backward":
        return _scan(out, iid, read, _READ, size, length, thread_id, False)
    if segment == "write_backward":
        return _scan(out, iid, write, _WRITE, size, length, thread_id, False)
    if segment == "insert_back":
        return _insert_back(out, iid, size, length, thread_id)
    if segment == "insert_front":
        return _insert_front(out, iid, size, length, thread_id)
    if segment == "delete_back":
        return _delete_back(out, iid, size, length, thread_id)
    if segment == "delete_front":
        return _delete_front(out, iid, size, length, thread_id)
    if segment == "sort_after_insert":
        size = _insert_back(out, iid, size, length, thread_id)
        out.append((iid, int(OperationKind.SORT), _WRITE, None, size, thread_id, None))
        return size
    if segment == "compound":
        return _compound_burst(out, rng, iid, size, length, thread_id)
    return _random_noise(out, rng, iid, size, length, thread_id)


def generate_trace(
    seed: int,
    *,
    max_instances: int = 5,
    max_segments: int = 6,
    max_segment_events: int = 120,
    max_threads: int = 3,
) -> Trace:
    """Build one randomized, seed-reproducible trace.

    The mix is biased toward rule-triggering shapes (long inserts,
    long scans, sort-after-insert) so most traces flag at least one
    use case — a differential test on permanently empty reports would
    be vacuous.  Roughly one instance in eight is registered but never
    touched, checking that all three analysis paths count silent
    instances identically.
    """
    rng = random.Random(seed)
    n_instances = rng.randint(1, max_instances)
    instances: list[TraceInstance] = []
    streams: list[list[RawEvent]] = []
    for i in range(n_instances):
        iid = 100 + i
        instances.append(
            TraceInstance(iid, rng.choice(_LINEAR_KINDS), f"gen-{seed}-{i}")
        )
        stream: list[RawEvent] = []
        if rng.random() < 0.125:
            streams.append(stream)  # registered, never touched
            continue
        size = 0
        # Opening fill so scans have something to walk.
        size = _insert_back(stream, iid, size, rng.randint(8, 40), rng.randrange(max_threads))
        for _ in range(rng.randint(1, max_segments)):
            segment = rng.choice(_SEGMENT_KINDS)
            length = rng.randint(4, max_segment_events)
            thread_id = rng.randrange(max_threads)
            size = _emit_segment(stream, rng, iid, segment, size, length, thread_id)
        streams.append(stream)

    # Interleave per-instance streams into one global stream with
    # seeded bursts; per-instance order is preserved.
    cursors = [0] * len(streams)
    merged: list[RawEvent] = []
    live = [i for i, s in enumerate(streams) if s]
    while live:
        idx = rng.choice(live)
        take = rng.randint(1, 16)
        start = cursors[idx]
        merged.extend(streams[idx][start : start + take])
        cursors[idx] = start + take
        if cursors[idx] >= len(streams[idx]):
            live.remove(idx)
    return Trace(seed=seed, instances=instances, events=merged)


__all__ = ["Trace", "TraceInstance", "generate_trace"]
