"""Function-level instrumentation decorator.

Ergonomic sugar over the rewriting pipeline: decorate a function and
every container *it* creates becomes tracked, without touching the rest
of the program — the per-function flavour of the paper's selective
profiler mode.

::

    @instrumented
    def build_index(lines):
        index = []                  # becomes a TrackedList
        for line in lines:
            index.append(line.lower())
        return index

    build_index(data)
    report = analyze_function(build_index)

Implementation: grab the function's source, re-parse, apply the same
AST rewriter used for whole modules, recompile in the function's own
globals.  Closures over nonlocal variables cannot be recompiled this
way and are rejected with a clear error.
"""

from __future__ import annotations

import ast
import functools
import inspect
import textwrap
from typing import Any, Callable, TypeVar

from ..events.collector import EventCollector, get_collector
from ..usecases.engine import UseCaseEngine, UseCaseReport
from .rewriter import RewriteConfig, _Rewriter, _import_header

F = TypeVar("F", bound=Callable)


def _recompiled(fn: Callable, config: RewriteConfig) -> Callable:
    if fn.__closure__:
        raise ValueError(
            f"@instrumented cannot rewrite {fn.__name__!r}: it closes over "
            "nonlocal variables; instrument the enclosing scope instead"
        )
    try:
        source = textwrap.dedent(inspect.getsource(fn))
    except (OSError, TypeError) as exc:
        raise ValueError(
            f"@instrumented needs source access for {fn.__name__!r}"
        ) from exc

    tree = ast.parse(source)
    fn_def = tree.body[0]
    if not isinstance(fn_def, (ast.FunctionDef, ast.AsyncFunctionDef)):
        raise ValueError("@instrumented expects a plain function")
    # Drop our own decorator (and leave others; they re-apply on exec).
    fn_def.decorator_list = [
        d
        for d in fn_def.decorator_list
        if not (isinstance(d, ast.Name) and d.id in ("instrumented",))
        and not (
            isinstance(d, ast.Call)
            and isinstance(d.func, ast.Name)
            and d.func.id == "instrumented"
        )
    ]

    rewriter = _Rewriter(config)
    tree = rewriter.visit(tree)
    tree.body = _import_header() + tree.body
    ast.fix_missing_locations(tree)

    namespace: dict[str, Any] = dict(fn.__globals__)
    code = compile(tree, f"<instrumented {fn.__name__}>", "exec")
    exec(code, namespace)
    rebuilt = namespace[fn.__name__]
    rebuilt.__dsspy_rewrites__ = rewriter.rewrites
    return rebuilt


def instrumented(
    fn: F | None = None, *, dicts: bool = False
) -> F | Callable[[F], F]:
    """Decorator: containers created inside the function are tracked.

    Each call records into the *active* collector (ambient or the
    enclosing :func:`~repro.events.collecting` block).  The wrapper
    keeps a reference to the collectors it recorded into, so
    :func:`analyze_function` works without plumbing.
    """

    def wrap(inner: F) -> F:
        config = RewriteConfig(dicts=dicts)
        rebuilt = _recompiled(inner, config)

        @functools.wraps(inner)
        def wrapper(*args, **kwargs):
            collector = get_collector()
            wrapper.__dsspy_collectors__.append(collector)
            return rebuilt(*args, **kwargs)

        wrapper.__dsspy_collectors__ = []  # type: ignore[attr-defined]
        wrapper.__dsspy_rewrites__ = rebuilt.__dsspy_rewrites__  # type: ignore[attr-defined]
        wrapper.__wrapped_instrumented__ = rebuilt  # type: ignore[attr-defined]
        return wrapper  # type: ignore[return-value]

    if fn is not None:
        return wrap(fn)
    return wrap


def analyze_function(
    fn: Callable, engine: UseCaseEngine | None = None
) -> UseCaseReport:
    """Use-case report over every capture an ``@instrumented`` function
    recorded (most recent collector wins for duplicates)."""
    collectors: list[EventCollector] = list(
        dict.fromkeys(getattr(fn, "__dsspy_collectors__", []))
    )
    if not collectors:
        raise ValueError(
            f"{getattr(fn, '__name__', fn)!r} has not recorded anything; "
            "is it decorated with @instrumented and has it been called?"
        )
    engine = engine if engine is not None else UseCaseEngine()
    profiles = []
    for collector in collectors:
        profiles.extend(collector.profiles())
    return engine.analyze(profiles)
