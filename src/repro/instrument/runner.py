"""Compile and execute instrumented program copies.

The second DSspy step: "DSspy compiles the instrumented program,
executes it, and starts the dynamic analysis module" (§IV).  The paper
instruments a *full source code copy* that is cleaned up after data
collection, so the slowdown occurs only once during analysis; here the
copy is an in-memory module namespace.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Any, Callable, Mapping

from ..events.channel import Channel
from ..events.collector import EventCollector, collecting
from ..events.profile import RuntimeProfile
from ..events.sampling import SamplingPolicy
from .rewriter import RewriteConfig, RewriteResult, rewrite_source

if TYPE_CHECKING:
    from ..runtime.guard import RuntimeGuard


@dataclass(frozen=True)
class InstrumentedRun:
    """Outcome of executing an instrumented program copy."""

    collector: EventCollector
    result: Any
    duration: float
    rewrite: RewriteResult

    @property
    def profiles(self) -> list[RuntimeProfile]:
        return self.collector.profiles()

    @property
    def event_count(self) -> int:
        return self.collector.event_count


def _execute(
    source: str,
    entry: str | None,
    args: tuple,
    extra_globals: Mapping[str, Any] | None,
) -> tuple[Any, float]:
    namespace: dict[str, Any] = {"__name__": "__dsspy_instrumented__"}
    if extra_globals:
        namespace.update(extra_globals)
    code = compile(source, "<dsspy-instrumented>", "exec")
    start = time.perf_counter()
    exec(code, namespace)
    result = None
    if entry is not None:
        fn: Callable = namespace[entry]
        result = fn(*args)
    duration = time.perf_counter() - start
    return result, duration


def run_instrumented(
    source: str,
    entry: str | None = None,
    args: tuple = (),
    config: RewriteConfig | None = None,
    channel: Channel | None = None,
    sampling: SamplingPolicy | None = None,
    extra_globals: Mapping[str, Any] | None = None,
    guard: "RuntimeGuard | None" = None,
) -> InstrumentedRun:
    """Instrument ``source``, execute it, and collect all profiles.

    Parameters
    ----------
    source:
        Program text to instrument (a module).
    entry:
        Optional function name called (with ``args``) after module
        execution; its return value lands in ``InstrumentedRun.result``.
    config:
        Rewrite configuration (lists+arrays by default).
    channel:
        Event transport for the capture (synchronous by default; pass a
        :class:`~repro.events.batching.BatchingChannel` for the batched
        low-overhead pipeline).
    sampling:
        Optional sampling policy applied before each channel post.
    guard:
        Optional :class:`~repro.runtime.guard.RuntimeGuard` armed for
        the duration of the run: profiler faults are contained instead
        of propagating into the instrumented program, and the terminal
        drain is bounded by the guard's exit deadline.  ``None`` keeps
        the fail-loud default.
    """
    rewrite = rewrite_source(source, config=config)
    if guard is not None:
        with guard, collecting(channel=channel, sampling=sampling) as collector:
            result, duration = _execute(rewrite.source, entry, args, extra_globals)
    else:
        with collecting(channel=channel, sampling=sampling) as collector:
            result, duration = _execute(rewrite.source, entry, args, extra_globals)
    return InstrumentedRun(
        collector=collector, result=result, duration=duration, rewrite=rewrite
    )


def run_instrumented_file(
    path: str | Path,
    entry: str | None = None,
    args: tuple = (),
    config: RewriteConfig | None = None,
    channel: Channel | None = None,
    sampling: SamplingPolicy | None = None,
    guard: "RuntimeGuard | None" = None,
) -> InstrumentedRun:
    """Instrument and execute a program from disk."""
    return run_instrumented(
        Path(path).read_text(encoding="utf-8"),
        entry=entry,
        args=args,
        config=config,
        channel=channel,
        sampling=sampling,
        guard=guard,
    )


@dataclass(frozen=True, slots=True)
class SlowdownResult:
    """Instrumentation overhead measurement (Table IV's middle columns)."""

    plain_seconds: float
    instrumented_seconds: float

    @property
    def factor(self) -> float:
        if self.plain_seconds <= 0:
            return float("inf")
        return self.instrumented_seconds / self.plain_seconds


def measure_slowdown(
    source: str,
    entry: str | None = None,
    args: tuple = (),
    repeats: int = 3,
    config: RewriteConfig | None = None,
) -> SlowdownResult:
    """Average wall-clock of the original vs the instrumented copy.

    Mirrors the paper's methodology ("a tool that runs all instrumented
    versions ten times and computes their average execution times"),
    with a configurable repeat count.
    """
    plain_total = 0.0
    for _ in range(repeats):
        _, duration = _execute(source, entry, args, None)
        plain_total += duration

    instrumented_total = 0.0
    rewrite = rewrite_source(source, config=config)
    for _ in range(repeats):
        with collecting():
            _, duration = _execute(rewrite.source, entry, args, None)
        instrumented_total += duration

    return SlowdownResult(
        plain_seconds=plain_total / repeats,
        instrumented_seconds=instrumented_total / repeats,
    )
