"""Static analysis, AST instrumentation and instrumented execution.

The Python analog of DSspy's Roslyn pipeline: find container
instantiation sites, rewrite them to tracked proxies, compile and run
the instrumented copy, and scan whole corpora for the empirical study.
"""

from .autotransform import (
    TransformReport,
    suggest_transforms,
    transform_source,
)
from .corpus import (
    DYNAMIC_KINDS,
    CorpusStats,
    ProgramStats,
    count_loc,
    scan_corpus,
    scan_program,
)
from .decorators import analyze_function, instrumented
from .import_hook import (
    InstrumentingFinder,
    instrument_imports,
    reimport_instrumented,
)
from .rewriter import RewriteConfig, RewriteResult, rewrite_source
from .runner import (
    InstrumentedRun,
    SlowdownResult,
    measure_slowdown,
    run_instrumented,
    run_instrumented_file,
)
from .static_analysis import (
    InstantiationSite,
    count_by_kind,
    find_sites,
    find_sites_in_file,
)

__all__ = [
    "CorpusStats",
    "DYNAMIC_KINDS",
    "InstantiationSite",
    "InstrumentedRun",
    "ProgramStats",
    "RewriteConfig",
    "RewriteResult",
    "SlowdownResult",
    "TransformReport",
    "InstrumentingFinder",
    "analyze_function",
    "instrument_imports",
    "reimport_instrumented",
    "instrumented",
    "count_by_kind",
    "count_loc",
    "find_sites",
    "find_sites_in_file",
    "measure_slowdown",
    "rewrite_source",
    "run_instrumented",
    "run_instrumented_file",
    "scan_corpus",
    "scan_program",
    "suggest_transforms",
    "transform_source",
]
