"""AST rewriting: plain containers → tracked proxies.

DSspy "directly manipulate[s] the source code and add[s] instrumentation
statements" to a full copy of the project (§IV).  The Python analog is
an ``ast.NodeTransformer`` that replaces container construction in
assignment position with the equivalent ``Tracked*`` constructor,
carrying the assigned variable name as the profile label.

Rewritten forms (assignment values only, so call arguments and interim
expressions keep native semantics):

====================  ==========================================
``xs = [...]``        ``xs = TrackedList([...], label="xs")``
``xs = [c] * n``      ``xs = TrackedArray(n, fill=c, label="xs")``
``xs = list(e)``      ``xs = TrackedList(list(e), label="xs")``
``d = {...}``         ``d = TrackedDict({...}, label="d")``
``d = dict(...)``     ``d = TrackedDict(dict(...), label="d")``
``xs = [f(i) for i]`` ``xs = TrackedList([...], label="xs")``
====================  ==========================================

The tracked constructors are imported under collision-proof aliases at
the top of the instrumented module.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass

_ALIASES = {
    "TrackedList": "_dsspy_TrackedList",
    "TrackedArray": "_dsspy_TrackedArray",
    "TrackedDict": "_dsspy_TrackedDict",
}


@dataclass(frozen=True, slots=True)
class RewriteConfig:
    """Which container species to instrument.

    DSspy's automatic mode covers lists and arrays; dictionaries are the
    opt-in extension the proxy design makes cheap.
    """

    lists: bool = True
    arrays: bool = True
    dicts: bool = False


class _Rewriter(ast.NodeTransformer):
    def __init__(self, config: RewriteConfig) -> None:
        self.config = config
        self.rewrites = 0

    # -- assignment interception -------------------------------------------

    def visit_Assign(self, node: ast.Assign) -> ast.Assign:
        self.generic_visit(node)
        label = ""
        if len(node.targets) == 1:
            target = node.targets[0]
            if isinstance(target, ast.Name):
                label = target.id
            elif isinstance(target, ast.Attribute):
                label = target.attr
        node.value = self._maybe_wrap(node.value, label)
        return node

    def visit_AnnAssign(self, node: ast.AnnAssign) -> ast.AnnAssign:
        self.generic_visit(node)
        if node.value is not None:
            label = node.target.id if isinstance(node.target, ast.Name) else ""
            node.value = self._maybe_wrap(node.value, label)
        return node

    # -- wrapping --------------------------------------------------------------

    def _tracked_call(self, alias: str, args: list[ast.expr], label: str) -> ast.Call:
        self.rewrites += 1
        keywords = []
        if label:
            keywords.append(ast.keyword(arg="label", value=ast.Constant(label)))
        return ast.Call(func=ast.Name(id=alias, ctx=ast.Load()), args=args, keywords=keywords)

    def _maybe_wrap(self, value: ast.expr, label: str) -> ast.expr:
        cfg = self.config
        # Fixed-size allocation [c] * n or n * [c]  →  TrackedArray.
        if cfg.arrays and isinstance(value, ast.BinOp) and isinstance(value.op, ast.Mult):
            lst, length = None, None
            if isinstance(value.left, ast.List):
                lst, length = value.left, value.right
            elif isinstance(value.right, ast.List):
                lst, length = value.right, value.left
            if lst is not None and len(lst.elts) == 1:
                self.rewrites += 1
                keywords = [ast.keyword(arg="fill", value=lst.elts[0])]
                if label:
                    keywords.append(
                        ast.keyword(arg="label", value=ast.Constant(label))
                    )
                return ast.Call(
                    func=ast.Name(id=_ALIASES["TrackedArray"], ctx=ast.Load()),
                    args=[length],
                    keywords=keywords,
                )
        if cfg.lists:
            if isinstance(value, (ast.List, ast.ListComp)):
                return self._tracked_call(_ALIASES["TrackedList"], [value], label)
            if (
                isinstance(value, ast.Call)
                and isinstance(value.func, ast.Name)
                and value.func.id == "list"
            ):
                return self._tracked_call(_ALIASES["TrackedList"], [value], label)
        if cfg.dicts:
            if isinstance(value, (ast.Dict, ast.DictComp)):
                return self._tracked_call(_ALIASES["TrackedDict"], [value], label)
            if (
                isinstance(value, ast.Call)
                and isinstance(value.func, ast.Name)
                and value.func.id == "dict"
            ):
                return self._tracked_call(_ALIASES["TrackedDict"], [value], label)
        return value


def _import_header() -> list[ast.stmt]:
    return [
        ast.ImportFrom(
            module="repro.structures",
            names=[
                ast.alias(name=original, asname=alias)
                for original, alias in _ALIASES.items()
            ],
            level=0,
        )
    ]


@dataclass(frozen=True, slots=True)
class RewriteResult:
    """Instrumented source plus bookkeeping."""

    source: str
    rewrites: int
    original: str


def rewrite_source(
    source: str,
    config: RewriteConfig | None = None,
    filename: str = "<instrumented>",
) -> RewriteResult:
    """Instrument ``source``; returns the new source and rewrite count.

    The instrumented module is behaviourally equivalent (tracked proxies
    implement the native interfaces) but reports every container
    interaction to the active collector.
    """
    cfg = config if config is not None else RewriteConfig()
    tree = ast.parse(source, filename=filename)
    rewriter = _Rewriter(cfg)
    tree = rewriter.visit(tree)

    # Insert imports after a module docstring, if any.
    body = tree.body
    insert_at = 0
    if body and isinstance(body[0], ast.Expr) and isinstance(
        body[0].value, ast.Constant
    ) and isinstance(body[0].value.value, str):
        insert_at = 1
    tree.body = body[:insert_at] + _import_header() + body[insert_at:]
    ast.fix_missing_locations(tree)
    return RewriteResult(
        source=ast.unparse(tree), rewrites=rewriter.rewrites, original=source
    )
