"""Import-time instrumentation of whole packages.

DSspy instruments "a full source code copy" of the analyzed project
(§IV).  For Python programs the natural equivalent is a meta-path
import hook: while installed, every module whose name matches the
configured prefixes is rewritten (containers → tracked proxies) as it
is imported — no copies on disk, the original files untouched.

::

    with instrument_imports("myapp"):
        import myapp.engine          # imported instrumented
        myapp.engine.run()
    report = UseCaseEngine().analyze_collector(collector)

Already-imported modules are not re-instrumented (Python caches them);
use :func:`reimport_instrumented` for those.
"""

from __future__ import annotations

import importlib
import importlib.abc
import importlib.machinery
import importlib.util
import sys
from contextlib import contextmanager
from pathlib import Path
from typing import Iterator, Sequence

from .rewriter import RewriteConfig, rewrite_source


class _InstrumentingLoader(importlib.abc.SourceLoader):
    """Source loader that rewrites module code before compilation."""

    def __init__(self, fullname: str, path: str, config: RewriteConfig) -> None:
        self._fullname = fullname
        self._path = path
        self._config = config
        self.rewrites = 0

    def get_filename(self, fullname: str) -> str:
        return self._path

    def get_data(self, path: str) -> bytes:
        source = Path(path).read_text(encoding="utf-8")
        result = rewrite_source(source, config=self._config, filename=path)
        self.rewrites = result.rewrites
        return result.source.encode("utf-8")

    # Rewritten source must never be satisfied from stale bytecode.
    def path_stats(self, path: str):  # pragma: no cover - importlib detail
        raise OSError("no bytecode caching for instrumented modules")


class InstrumentingFinder(importlib.abc.MetaPathFinder):
    """Meta-path finder dispatching matching modules to the rewriter."""

    def __init__(
        self, prefixes: Sequence[str], config: RewriteConfig | None = None
    ) -> None:
        self.prefixes = tuple(prefixes)
        self.config = config if config is not None else RewriteConfig()
        self.instrumented_modules: dict[str, int] = {}

    def _matches(self, fullname: str) -> bool:
        return any(
            fullname == p or fullname.startswith(p + ".") for p in self.prefixes
        )

    def find_spec(self, fullname, path, target=None):
        if not self._matches(fullname):
            return None
        # Locate the plain source spec with this finder masked out, to
        # avoid infinite recursion.
        finders = [f for f in sys.meta_path if f is not self]
        spec = None
        for finder in finders:
            try:
                spec = finder.find_spec(fullname, path, target)
            except (AttributeError, ImportError):
                continue
            if spec is not None:
                break
        if spec is None or not spec.origin or not spec.origin.endswith(".py"):
            return spec
        loader = _InstrumentingLoader(fullname, spec.origin, self.config)
        new_spec = importlib.util.spec_from_file_location(
            fullname,
            spec.origin,
            loader=loader,
            submodule_search_locations=spec.submodule_search_locations,
        )
        self.instrumented_modules[fullname] = -1  # filled after exec
        return new_spec


@contextmanager
def instrument_imports(
    *prefixes: str, config: RewriteConfig | None = None
) -> Iterator[InstrumentingFinder]:
    """Install the instrumenting finder for the duration of the block.

    Modules imported inside whose dotted names match a prefix are
    rewritten.  On exit the finder is removed and any instrumented
    modules are evicted from ``sys.modules`` so later imports get the
    original code.
    """
    if not prefixes:
        raise ValueError("at least one package prefix is required")
    finder = InstrumentingFinder(prefixes, config)
    sys.meta_path.insert(0, finder)
    try:
        yield finder
    finally:
        sys.meta_path.remove(finder)
        for name in list(sys.modules):
            if finder._matches(name):
                del sys.modules[name]


def reimport_instrumented(
    module_name: str, config: RewriteConfig | None = None
):
    """Import (or re-import) one module instrumented, returning it."""
    sys.modules.pop(module_name, None)
    with instrument_imports(module_name.split(".")[0], config=config):
        module = importlib.import_module(module_name)
    # The context evicted it from sys.modules; the object stays usable.
    return module
