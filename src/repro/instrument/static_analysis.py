"""Static discovery of data structure instantiation sites.

The paper's first pipeline step uses Roslyn to "identify all list
instances and arrays" before adding instrumentation (§IV); its empirical
study used regular expressions over the corpus to count instances per
structure kind (§II-A).  This module is the Python analog: an ``ast``
walk that finds every container instantiation in a source file and
classifies it by :class:`~repro.events.types.StructureKind`.

Recognized instantiation forms
------------------------------
- list literals ``[...]`` and comprehensions, ``list(...)``
- "array" forms: ``[x] * n`` (fixed-size allocation), ``array.array``,
  ``numpy.zeros/ones/empty/full``, ``bytearray(n)``
- dict literals/comprehensions and ``dict(...)``
- ``set``/``frozenset`` (counted as hashset), ``collections.deque``
  (queue), ``queue.Queue``, explicit ``Stack``/``Queue`` classes
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from pathlib import Path

from ..events.types import StructureKind


@dataclass(frozen=True, slots=True)
class InstantiationSite:
    """One statically discovered container construction."""

    filename: str
    lineno: int
    col: int
    kind: StructureKind
    function: str
    variable: str = ""

    def describe(self) -> str:
        var = f" {self.variable} =" if self.variable else ""
        return f"{self.filename}:{self.lineno}{var} {self.kind.value} in {self.function}()"


_CALL_KINDS: dict[str, StructureKind] = {
    "list": StructureKind.LIST,
    "dict": StructureKind.DICTIONARY,
    "set": StructureKind.HASH_SET,
    "frozenset": StructureKind.HASH_SET,
    "deque": StructureKind.QUEUE,
    "Queue": StructureKind.QUEUE,
    "LifoQueue": StructureKind.STACK,
    "Stack": StructureKind.STACK,
    "bytearray": StructureKind.ARRAY,
    "array": StructureKind.ARRAY,
    "zeros": StructureKind.ARRAY,
    "ones": StructureKind.ARRAY,
    "empty": StructureKind.ARRAY,
    "full": StructureKind.ARRAY,
    "OrderedDict": StructureKind.SORTED_DICTIONARY,
    "defaultdict": StructureKind.DICTIONARY,
    "Counter": StructureKind.DICTIONARY,
    # .NET CTS class names, so C#-style corpora (and our synthetic
    # corpus, which mirrors the paper's species mix) classify correctly.
    "ArrayList": StructureKind.ARRAY_LIST,
    "SortedList": StructureKind.SORTED_LIST,
    "SortedSet": StructureKind.SORTED_SET,
    "SortedDictionary": StructureKind.SORTED_DICTIONARY,
    "LinkedList": StructureKind.LINKED_LIST,
    "Hashtable": StructureKind.HASHTABLE,
    "HashSet": StructureKind.HASH_SET,
    "Dictionary": StructureKind.DICTIONARY,
    # Tracked proxies count as their species, so instrumented code scans
    # identically to its plain original.
    "TrackedList": StructureKind.LIST,
    "TrackedArray": StructureKind.ARRAY,
    "TrackedDict": StructureKind.DICTIONARY,
    "TrackedStack": StructureKind.STACK,
    "TrackedQueue": StructureKind.QUEUE,
}


def _call_name(node: ast.Call) -> str | None:
    func = node.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def _is_fixed_size_alloc(node: ast.BinOp) -> bool:
    """``[x] * n`` / ``n * [x]`` -- the Python idiom for a fixed-size array."""
    if not isinstance(node.op, ast.Mult):
        return False
    return isinstance(node.left, ast.List) or isinstance(node.right, ast.List)


class _SiteVisitor(ast.NodeVisitor):
    def __init__(self, filename: str) -> None:
        self.filename = filename
        self.sites: list[InstantiationSite] = []
        self._function_stack: list[str] = []
        self._assign_target: list[str] = []

    # -- scope tracking ---------------------------------------------------

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._function_stack.append(node.name)
        self.generic_visit(node)
        self._function_stack.pop()

    visit_AsyncFunctionDef = visit_FunctionDef  # type: ignore[assignment]

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self._function_stack.append(node.name)
        self.generic_visit(node)
        self._function_stack.pop()

    def _current_function(self) -> str:
        return ".".join(self._function_stack) if self._function_stack else "<module>"

    def visit_Assign(self, node: ast.Assign) -> None:
        name = ""
        if len(node.targets) == 1:
            target = node.targets[0]
            if isinstance(target, ast.Name):
                name = target.id
            elif isinstance(target, ast.Attribute):
                name = target.attr
        self._assign_target.append(name)
        self.generic_visit(node)
        self._assign_target.pop()

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        name = node.target.id if isinstance(node.target, ast.Name) else ""
        self._assign_target.append(name)
        self.generic_visit(node)
        self._assign_target.pop()

    def _variable(self) -> str:
        return self._assign_target[-1] if self._assign_target else ""

    # -- site emission -------------------------------------------------------

    def _emit(self, node: ast.AST, kind: StructureKind) -> None:
        self.sites.append(
            InstantiationSite(
                filename=self.filename,
                lineno=getattr(node, "lineno", 0),
                col=getattr(node, "col_offset", 0),
                kind=kind,
                function=self._current_function(),
                variable=self._variable(),
            )
        )

    def visit_List(self, node: ast.List) -> None:
        self._emit(node, StructureKind.LIST)
        self.generic_visit(node)

    def visit_ListComp(self, node: ast.ListComp) -> None:
        self._emit(node, StructureKind.LIST)
        self.generic_visit(node)

    def visit_Dict(self, node: ast.Dict) -> None:
        self._emit(node, StructureKind.DICTIONARY)
        self.generic_visit(node)

    def visit_DictComp(self, node: ast.DictComp) -> None:
        self._emit(node, StructureKind.DICTIONARY)
        self.generic_visit(node)

    def visit_Set(self, node: ast.Set) -> None:
        self._emit(node, StructureKind.HASH_SET)
        self.generic_visit(node)

    def visit_SetComp(self, node: ast.SetComp) -> None:
        self._emit(node, StructureKind.HASH_SET)
        self.generic_visit(node)

    def visit_BinOp(self, node: ast.BinOp) -> None:
        if _is_fixed_size_alloc(node):
            self._emit(node, StructureKind.ARRAY)
            # Don't also count the inner [x] literal as a list.
            for child in (node.left, node.right):
                if not isinstance(child, ast.List):
                    self.visit(child)
            return
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        name = _call_name(node)
        if name is not None:
            kind = _CALL_KINDS.get(name)
            if kind is not None:
                self._emit(node, kind)
        self.generic_visit(node)


def find_sites(source: str, filename: str = "<string>") -> list[InstantiationSite]:
    """All instantiation sites in ``source``, in line order."""
    tree = ast.parse(source, filename=filename)
    visitor = _SiteVisitor(filename)
    visitor.visit(tree)
    visitor.sites.sort(key=lambda s: (s.lineno, s.col))
    return visitor.sites


def find_sites_in_file(path: str | Path) -> list[InstantiationSite]:
    path = Path(path)
    return find_sites(path.read_text(encoding="utf-8"), filename=str(path))


def count_by_kind(sites: list[InstantiationSite]) -> dict[StructureKind, int]:
    """Occurrence counts per structure kind (the Figure 1 measurement)."""
    out: dict[StructureKind, int] = {}
    for site in sites:
        out[site.kind] = out.get(site.kind, 0) + 1
    return out
