"""Automatic source transformation of detected use cases.

The paper closes with: "For now, each recommendation needs to be
implemented manually; however automated transformation is possible if
the recommended action is clearly specified [21]."  This module is that
extension: AST rewrites for the two recommendation shapes that are
mechanically safe —

``Long-Insert``  (parallelize the insert operation)
    A fill loop whose body only appends a pure expression of the loop
    index::

        for i in range(n):          xs.extend(
            xs.append(f(i))    →        ParallelExecutor().parallel_fill(
                                            lambda i: f(i), n))

``Frequent-Long-Read``  (transform into a parallel search)
    A linear max/min scan over the structure::

        best = None
        for i in range(len(xs)):    best = ParallelList(xs).parallel_max()
            v = xs[i]
            if best is None or v > best:
                best = v

Only the fill-loop transform is applied automatically
(:func:`transform_source`); the scan transform is emitted as a
suggestion because recognizing every scan idiom is out of scope.  Both
preserve semantics for *pure* loop bodies — the transformer refuses
bodies with other side effects (conservative whitelist).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field


@dataclass
class TransformReport:
    """What the transformer did (and declined) on one module."""

    applied: list[str] = field(default_factory=list)
    skipped: list[str] = field(default_factory=list)

    @property
    def count(self) -> int:
        return len(self.applied)


def _is_range_call(node: ast.expr) -> bool:
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id == "range"
        and len(node.args) == 1
        and not node.keywords
    )


def _names_in(node: ast.AST) -> set[str]:
    return {n.id for n in ast.walk(node) if isinstance(n, ast.Name)}


class _FillLoopTransformer(ast.NodeTransformer):
    """Rewrites ``for i in range(n): xs.append(expr(i))`` loops."""

    def __init__(self) -> None:
        self.report = TransformReport()

    def visit_For(self, node: ast.For) -> ast.stmt:
        self.generic_visit(node)
        match = self._match_fill_loop(node)
        if match is None:
            return node
        target_name, list_name, length, expr, reason = match
        if reason is not None:
            self.report.skipped.append(reason)
            return node

        # xs.extend(_dsspy_parallel_fill(lambda i: expr, n))
        call = ast.Expr(
            value=ast.Call(
                func=ast.Attribute(
                    value=ast.Name(id=list_name, ctx=ast.Load()),
                    attr="extend",
                    ctx=ast.Load(),
                ),
                args=[
                    ast.Call(
                        func=ast.Name(id="_dsspy_parallel_fill", ctx=ast.Load()),
                        args=[
                            ast.Lambda(
                                args=ast.arguments(
                                    posonlyargs=[],
                                    args=[ast.arg(arg=target_name)],
                                    kwonlyargs=[],
                                    kw_defaults=[],
                                    defaults=[],
                                ),
                                body=expr,
                            ),
                            length,
                        ],
                        keywords=[],
                    )
                ],
                keywords=[],
            )
        )
        self.report.applied.append(
            f"line {node.lineno}: parallelized fill loop into {list_name!r}"
        )
        return ast.copy_location(call, node)

    def _match_fill_loop(self, node: ast.For):
        """Returns (index, list, length, expr, refusal_reason) or None."""
        if node.orelse or not isinstance(node.target, ast.Name):
            return None
        if not _is_range_call(node.iter):
            return None
        if len(node.body) != 1:
            return None
        stmt = node.body[0]
        if not (
            isinstance(stmt, ast.Expr)
            and isinstance(stmt.value, ast.Call)
            and isinstance(stmt.value.func, ast.Attribute)
            and stmt.value.func.attr in ("append", "add")
            and isinstance(stmt.value.func.value, ast.Name)
            and len(stmt.value.args) == 1
            and not stmt.value.keywords
        ):
            return None
        index = node.target.id
        list_name = stmt.value.func.value.id
        length = node.iter.args[0]
        expr = stmt.value.args[0]
        reason = None
        # Conservative purity check: the appended expression must not
        # reference the list itself or call attribute methods (likely
        # stateful); plain-name calls (math, rng-free helpers) pass.
        if list_name in _names_in(expr):
            reason = (
                f"line {node.lineno}: append expression reads {list_name!r} "
                "(order-dependent; not parallelizable)"
            )
        for sub in ast.walk(expr):
            if isinstance(sub, ast.Call) and isinstance(sub.func, ast.Attribute):
                reason = (
                    f"line {node.lineno}: method call in append expression "
                    "(possibly stateful; refused)"
                )
        return index, list_name, length, expr, reason


_RUNTIME_HEADER = """\
from repro.parallel import ParallelExecutor as _DsspyExecutor

def _dsspy_parallel_fill(fn, n):
    return _DsspyExecutor().parallel_fill(fn, n)
"""


def transform_source(source: str) -> tuple[str, TransformReport]:
    """Apply the Long-Insert transform to every safe fill loop.

    Returns the transformed source (with a small runtime header
    injected when anything was rewritten) and the report.  The result
    is behaviourally equivalent for pure loop bodies: element order and
    values are preserved (``parallel_fill`` is order-preserving).
    """
    tree = ast.parse(source)
    transformer = _FillLoopTransformer()
    tree = transformer.visit(tree)
    ast.fix_missing_locations(tree)
    out = ast.unparse(tree)
    if transformer.report.applied:
        out = _RUNTIME_HEADER + "\n" + out
    return out, transformer.report


def suggest_transforms(source: str) -> list[str]:
    """Dry run: describe what :func:`transform_source` would do."""
    _, report = transform_source(source)
    return report.applied + [f"SKIPPED: {s}" for s in report.skipped]
