"""Corpus scanning for the empirical study (§II).

The paper composed a 37-program benchmark and used regular expressions
to gather "the number of data structure instances, their locations, and
their types".  :func:`scan_program` / :func:`scan_corpus` perform the
same measurement over Python program trees using the AST-based site
finder, yielding the per-program and per-domain statistics behind
Table I and Figure 1.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from ..events.types import StructureKind
from .static_analysis import InstantiationSite, find_sites

#: Structure kinds the paper classifies as *dynamic* (Table I counts
#: dynamic instances; arrays are reported separately).
DYNAMIC_KINDS = frozenset(
    {
        StructureKind.LIST,
        StructureKind.DICTIONARY,
        StructureKind.ARRAY_LIST,
        StructureKind.STACK,
        StructureKind.QUEUE,
        StructureKind.HASH_SET,
        StructureKind.SORTED_LIST,
        StructureKind.SORTED_SET,
        StructureKind.SORTED_DICTIONARY,
        StructureKind.LINKED_LIST,
        StructureKind.HASHTABLE,
    }
)


def count_loc(source: str) -> int:
    """Non-blank, non-comment-only lines (the usual LOC measure)."""
    count = 0
    for line in source.splitlines():
        stripped = line.strip()
        if stripped and not stripped.startswith("#"):
            count += 1
    return count


@dataclass
class ProgramStats:
    """Scan result for one program (possibly many files).

    Files that fail to parse are counted for LOC but contribute no
    sites; their paths are recorded in ``unparsable`` — real corpora
    (the paper scanned 900k LOC of third-party code) always contain a
    few broken files, and a survey scanner must not die on them.
    """

    name: str
    domain: str = ""
    loc: int = 0
    sites: list[InstantiationSite] = field(default_factory=list)
    unparsable: list[str] = field(default_factory=list)

    @property
    def counts(self) -> dict[StructureKind, int]:
        out: dict[StructureKind, int] = {}
        for site in self.sites:
            out[site.kind] = out.get(site.kind, 0) + 1
        return out

    @property
    def dynamic_instances(self) -> int:
        """Instances of dynamic structure kinds (Table I's metric)."""
        return sum(1 for s in self.sites if s.kind in DYNAMIC_KINDS)

    @property
    def array_instances(self) -> int:
        return sum(1 for s in self.sites if s.kind is StructureKind.ARRAY)

    def count(self, kind: StructureKind) -> int:
        return self.counts.get(kind, 0)

    def add_source(self, source: str, filename: str) -> None:
        self.loc += count_loc(source)
        try:
            self.sites.extend(find_sites(source, filename=filename))
        except SyntaxError:
            self.unparsable.append(filename)


@dataclass
class CorpusStats:
    """Aggregate over a whole corpus of programs."""

    programs: list[ProgramStats] = field(default_factory=list)

    @property
    def total_loc(self) -> int:
        return sum(p.loc for p in self.programs)

    @property
    def total_dynamic_instances(self) -> int:
        return sum(p.dynamic_instances for p in self.programs)

    @property
    def total_array_instances(self) -> int:
        return sum(p.array_instances for p in self.programs)

    def counts_by_kind(self) -> dict[StructureKind, int]:
        out: dict[StructureKind, int] = {}
        for program in self.programs:
            for kind, n in program.counts.items():
                out[kind] = out.get(kind, 0) + n
        return out

    def by_domain(self) -> dict[str, list[ProgramStats]]:
        out: dict[str, list[ProgramStats]] = {}
        for program in self.programs:
            out.setdefault(program.domain, []).append(program)
        return out

    def domain_totals(self) -> dict[str, tuple[int, int]]:
        """Domain → (dynamic instance count, LOC) — Table I's rows."""
        out: dict[str, tuple[int, int]] = {}
        for domain, programs in self.by_domain().items():
            out[domain] = (
                sum(p.dynamic_instances for p in programs),
                sum(p.loc for p in programs),
            )
        return out

    def kind_share(self, kind: StructureKind) -> float:
        """Share of dynamic instances of ``kind`` (e.g. list = 65.05%)."""
        total = self.total_dynamic_instances
        if total == 0:
            return 0.0
        dynamic = self.counts_by_kind().get(kind, 0)
        return dynamic / total


def scan_program(
    root: str | Path, name: str | None = None, domain: str = ""
) -> ProgramStats:
    """Scan one program directory (or single ``.py`` file)."""
    root = Path(root)
    default_name = root.stem if root.is_file() else root.name
    stats = ProgramStats(name=name or default_name, domain=domain)
    files = [root] if root.is_file() else sorted(root.rglob("*.py"))
    for path in files:
        stats.add_source(path.read_text(encoding="utf-8"), filename=str(path))
    return stats


def scan_corpus(
    root: str | Path, domains: dict[str, str] | None = None
) -> CorpusStats:
    """Scan a corpus root whose immediate subdirectories are programs.

    ``domains`` optionally maps program name → application domain.
    """
    root = Path(root)
    corpus = CorpusStats()
    for program_dir in sorted(p for p in root.iterdir() if p.is_dir()):
        domain = (domains or {}).get(program_dir.name, "")
        corpus.programs.append(scan_program(program_dir, domain=domain))
    return corpus
