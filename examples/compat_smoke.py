"""Version-skew compatibility smoke: mixed-build client/daemon pairs.

A rolling fleet upgrade means old clients talk to new daemons and new
clients talk to old daemons, sometimes for hours.  This script proves
one direction of that skew end to end:

- the daemon runs from ``--server-src`` (a checkout's ``src`` dir),
- the client runs from ``--client-src`` (another checkout's ``src``),
- a seeded trace is streamed, FIN'd, and the acknowledged count must
  equal the trace length — version skew may degrade features, never
  lose events.

With ``--check-frame-skip`` (only valid when the *server* is a build
that counts unknown frames) it additionally speaks a deliberately
version-bumped frame type at the daemon and asserts the daemon skips
and *counts* it in STATS instead of treating it as corruption.

CI runs the matrix: old-client -> new-daemon and new-client ->
old-daemon, with the previous main commit checked out in a worktree.
Run it against one tree (defaults) as a self-compatibility smoke:

    PYTHONPATH=src python examples/compat_smoke.py --check-frame-skip
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import socket
import struct
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

# The client leg runs as a subprocess under the *client* tree's
# PYTHONPATH, so this script never imports two repro versions at once.
CLIENT_CODE = r"""
import json, sys
from repro.service.client import ServiceClient
from repro.testing.traces import generate_trace

address, seed = sys.argv[1], int(sys.argv[2])
trace = generate_trace(seed)
client = ServiceClient(address, session_id=f"compat-{seed}")
client.register_instances([inst.registration() for inst in trace.instances])
window = 64
events = trace.events
for offset in range(0, len(events), window):
    client.send_events(offset, events[offset : offset + window])
ack = client.fin()
client.close()
proto = getattr(client, "proto_version", None)  # old builds: absent
print(json.dumps({
    "sent": len(events),
    "received": ack.get("received"),
    "has_report": ack.get("report") is not None,
    "proto": proto,
}))
"""


def start_daemon(server_src: Path, state_dir: Path) -> tuple[subprocess.Popen, str]:
    port_file = state_dir / "port"
    env = dict(os.environ, PYTHONPATH=str(server_src))
    proc = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.cli",
            "serve",
            "--port",
            "0",
            "--port-file",
            str(port_file),
            "--state-dir",
            str(state_dir / "state"),
        ],
        env=env,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.STDOUT,
    )
    deadline = time.monotonic() + 30.0
    while time.monotonic() < deadline:
        if proc.poll() is not None:
            raise SystemExit(f"daemon from {server_src} exited early")
        if port_file.exists():
            text = port_file.read_text().strip()
            if text:
                return proc, f"127.0.0.1:{text}"
        time.sleep(0.05)
    proc.kill()
    raise SystemExit(f"daemon from {server_src} never published its port")


def run_client(client_src: Path, address: str, seed: int) -> dict:
    env = dict(os.environ, PYTHONPATH=str(client_src))
    result = subprocess.run(
        [sys.executable, "-c", CLIENT_CODE, address, str(seed)],
        env=env,
        capture_output=True,
        text=True,
        timeout=120,
    )
    if result.returncode != 0:
        raise SystemExit(
            f"client from {client_src} failed:\n{result.stderr[-2000:]}"
        )
    return json.loads(result.stdout.strip().splitlines()[-1])


def send_unknown_frame(address: str) -> None:
    """Speak a frame type from the future at the daemon mid-session:
    HELLO, the bumped frame, then a HEARTBEAT that must still be ACKed."""
    host, port = address.rsplit(":", 1)
    with socket.create_connection((host, int(port)), timeout=10) as sock:

        def send(mtype: int, payload: bytes) -> None:
            sock.sendall(struct.pack("!I", 1 + len(payload)) + bytes([mtype]) + payload)

        def recv() -> tuple[int, bytes]:
            header = b""
            while len(header) < 4:
                header += sock.recv(4 - len(header))
            (length,) = struct.unpack("!I", header)
            body = b""
            while len(body) < length:
                body += sock.recv(length - len(body))
            return body[0], body[1:]

        send(1, json.dumps({"session": "compat-future-frame"}).encode())
        mtype, _ = recv()
        assert mtype == 2, f"expected ACK to HELLO, got frame type {mtype}"
        send(99, b"a-frame-type-from-the-future")
        send(5, b"{}")  # HEARTBEAT
        mtype, _ = recv()
        assert mtype == 2, f"unknown frame broke the session: got type {mtype}"


def fetch_stats(address: str) -> dict:
    from repro.service import fetch_stats as _fetch

    return _fetch(address)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--server-src", default=str(REPO / "src"))
    parser.add_argument("--client-src", default=str(REPO / "src"))
    parser.add_argument("--seed", type=int, default=20260807)
    parser.add_argument(
        "--check-frame-skip",
        action="store_true",
        help="also send a version-bumped frame type and assert the daemon "
        "skips-and-counts it (server must be a counting build)",
    )
    args = parser.parse_args()
    server_src = Path(args.server_src).resolve()
    client_src = Path(args.client_src).resolve()
    print(f"compat smoke: daemon from {server_src}")
    print(f"              client from {client_src}")

    with tempfile.TemporaryDirectory(prefix="dsspy-compat-") as tmp:
        proc, address = start_daemon(server_src, Path(tmp))
        try:
            outcome = run_client(client_src, address, args.seed)
            print(f"client outcome: {outcome}")
            if outcome["received"] != outcome["sent"]:
                raise SystemExit(
                    f"SKEW LOST EVENTS: acknowledged {outcome['received']} "
                    f"of {outcome['sent']}"
                )
            if not outcome["has_report"]:
                raise SystemExit("FIN ack carried no report")
            if args.check_frame_skip:
                send_unknown_frame(address)
                stats = fetch_stats(address)
                skipped = stats.get("frames_skipped", 0)
                build = stats.get("build")
                print(f"daemon build: {build}")
                print(f"frames_skipped: {skipped}")
                if skipped < 1:
                    raise SystemExit(
                        "daemon did not count the version-bumped frame "
                        f"(frames_skipped={skipped})"
                    )
        finally:
            proc.send_signal(signal.SIGTERM)
            try:
                proc.wait(timeout=15)
            except subprocess.TimeoutExpired:
                proc.kill()
    print("compat smoke OK: no events lost across the version skew")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
