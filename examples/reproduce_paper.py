"""Scenario: regenerate every table of the paper in one run.

Run:  python examples/reproduce_paper.py [scale]

Drives the full reproduction: the empirical study (Tables I–III,
Figure 1), the seven-program evaluation (Table IV), the GPdotNET report
(Table V), the sequential-fraction analysis (Table VI) and the
related-work matrix (Table VII).  ``scale`` (default 0.3) shrinks the
workloads; detection results are scale-stable.
"""

from __future__ import annotations

import sys

from repro.eval import (
    evaluate_all,
    render_figure1,
    render_table1,
    render_table2,
    render_table3,
    render_table4,
    render_table6,
    render_table7,
    run_fraction_analysis,
)
from repro.events import collecting
from repro.study import run_occurrence_study, run_regularity_study, run_usecase_survey
from repro.usecases import UseCaseEngine, format_table_v
from repro.usecases.rules import PARALLEL_RULES
from repro.workloads import GPdotNET


def main(scale: float = 0.3) -> None:
    print(render_table1(run_occurrence_study(loc_scale=0.05)))
    print()
    print(render_figure1(run_occurrence_study(loc_scale=0.05)))
    print()
    print(render_table2(run_regularity_study()))
    print()
    print(render_table3(run_usecase_survey()))
    print()
    print(render_table4(evaluate_all(scale=scale)))
    print()

    with collecting() as session:
        GPdotNET().run_tracked(scale=scale)
    report = UseCaseEngine(rules=PARALLEL_RULES).analyze_collector(session)
    print(format_table_v(report, title="Table V — DSspy output for GPdotNET"))
    print()
    print(render_table6(run_fraction_analysis()))
    print()
    print(render_table7())


if __name__ == "__main__":
    main(float(sys.argv[1]) if len(sys.argv) > 1 else 0.3)
