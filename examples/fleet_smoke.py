"""Scenario: a 4-worker fleet survives losing a worker mid-stream.

The CI integration smoke for the fleet subsystem.  A
:class:`~repro.service.FleetSupervisor` spawns four ``dsspy serve``
workers behind a session-affine router.  Several synthetic sessions
stream through the router; one of them is interrupted halfway by
SIGKILLing the worker that owns its shard — no flush, no goodbye.  The
supervisor must respawn the worker on its old port and shard directory
(journal recovery rebuilds the half-streamed session), the client must
resume and finish against the restarted worker, and the
:class:`~repro.service.FleetCoordinator`'s merged fleet report must be
*complete* and identical — session by session, instance by instance —
to batch analysis of the same traces, i.e. both the sharding and the
crash must be invisible in the analysis.

Run directly::

    PYTHONPATH=src python examples/fleet_smoke.py
"""

from __future__ import annotations

import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

N_WORKERS = 4
N_SESSIONS = 6


def _batch_use_cases(session_id, trace):
    from repro.testing import run_batch_path

    report = run_batch_path(trace)
    return {
        (session_id, uc["instance_id"], uc["abbreviation"])
        for uc in report["use_cases"]
    }


def main() -> int:
    from repro.service import FleetSupervisor, fetch_stats, shard_for
    from repro.service.client import ServiceClient
    from repro.testing import generate_trace
    from repro.testing.oracle import run_daemon_path

    traces = {f"fleet-smoke-s{i}": generate_trace(20 + i) for i in range(N_SESSIONS)}
    expected = set()
    for session_id, trace in traces.items():
        expected |= _batch_use_cases(session_id, trace)
    shards_hit = {shard_for(s, N_WORKERS) for s in traces}
    print(f"{N_SESSIONS} sessions over shards {sorted(shards_hit)}")

    # The victim: whichever worker owns the last session's shard gets
    # SIGKILLed while that session is half streamed.
    victim_session = f"fleet-smoke-s{N_SESSIONS - 1}"
    victim_worker = shard_for(victim_session, N_WORKERS)

    with tempfile.TemporaryDirectory(prefix="dsspy-fleet-smoke-") as state_dir:
        with FleetSupervisor(
            N_WORKERS,
            state_dir,
            heartbeat_timeout=60.0,
            linger=300.0,
            checkpoint_every=200,
            startup_timeout=60.0,
        ) as fleet:
            print(f"fleet of {N_WORKERS} workers behind {fleet.address}")

            # Phase 1: every session except the victim streams to
            # completion through the router.
            for session_id, trace in traces.items():
                if session_id == victim_session:
                    continue
                run_daemon_path(
                    trace, fleet.address, window=64,
                    retry_delay=0.1, session_id=session_id,
                )

            # Phase 2: half-stream the victim session, then SIGKILL the
            # worker that holds it.
            trace = traces[victim_session]
            half = len(trace.events) // 2
            client = ServiceClient(fleet.address, session_id=victim_session)
            client.register_instances([i.registration() for i in trace.instances])
            client.send_events(0, trace.events[:half])
            ack = client.heartbeat()  # sync: the half is journaled
            client.close()
            if ack["received"] != half:
                print(f"SMOKE: FAILED — acked {ack['received']}, sent {half}")
                return 1
            print(
                f"session {victim_session}: {half}/{len(trace.events)} events "
                f"streamed; killing worker {victim_worker}"
            )
            fleet.kill_worker(victim_worker)

            # The supervisor must bring the worker back on its old port.
            worker = fleet.workers[victim_worker]
            deadline = time.monotonic() + 60.0
            while time.monotonic() < deadline:
                if worker.restarts >= 1 and worker.proc.poll() is None:
                    try:
                        stats = fetch_stats(worker.address, timeout=2.0)
                        break
                    except OSError:
                        pass
                time.sleep(0.1)
            else:
                print("SMOKE: FAILED — killed worker never came back")
                return 1
            recovered = stats.get("recovered_sessions", [])
            if victim_session not in recovered:
                print(
                    f"SMOKE: FAILED — restarted worker did not recover "
                    f"{victim_session}: {recovered}"
                )
                return 1
            print(
                f"worker {victim_worker} respawned on port {worker.port}, "
                f"recovered {recovered}"
            )

            # Phase 3: resume the interrupted session through the router
            # (the stable hash lands it back on the restarted worker)
            # and finish it.
            run_daemon_path(
                trace, fleet.address, window=64,
                retry_delay=0.1, session_id=victim_session,
            )

            # The converged fleet report.
            merged = fleet.coordinator().collect()
            if not merged["complete"]:
                print(f"SMOKE: FAILED — partial merge: {merged['errors']}")
                return 1
            received = {s["session"]: s["received"] for s in merged["sessions"]}
            for session_id, tr in traces.items():
                if received.get(session_id) != len(tr.events):
                    print(
                        f"SMOKE: FAILED — {session_id} received "
                        f"{received.get(session_id)} of {len(tr.events)} events"
                    )
                    return 1
            got = {
                (u["origin"]["session"], u["origin"]["instance_id"],
                 u["abbreviation"])
                for u in merged["report"]["use_cases"]
            }
            if got != expected:
                print("SMOKE: FAILED — merged report diverges from batch:")
                for entry in sorted(expected - got):
                    print(f"  missing: {entry}")
                for entry in sorted(got - expected):
                    print(f"  extra:   {entry}")
                return 1
            restarts = fleet.stats()["restarts"]
            if restarts != {str(victim_worker): 1}:
                print(f"SMOKE: FAILED — unexpected restart history {restarts}")
                return 1
    print(
        f"SMOKE: passed — {N_SESSIONS} sessions over {N_WORKERS} workers, "
        f"worker {victim_worker} SIGKILLed at {half}/{len(trace.events)} "
        "events; merged fleet report equals batch analysis"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
