"""Scenario: follow every recommendation on the real workloads.

Run:  python examples/parallel_rescue.py

For each evaluation workload with a true-positive use case, apply the
recommended transform with real threads, verify the result is identical
to the sequential program, and show the simulated 8-core speedup (plain
and bandwidth-contended machine models).
"""

from __future__ import annotations

from repro.parallel import (
    PAPER_CONTENDED_MACHINE,
    MachineConfig,
    SimulatedMachine,
)
from repro.workloads import EVALUATION_WORKLOADS, verify_all


def main() -> None:
    print("Applying recommended transforms with real threads:")
    for outcome in verify_all(scale=0.1):
        status = "OK" if outcome.matches_sequential else "MISMATCH"
        print(f"  [{status}] {outcome.name} ({outcome.detail})")
    print()

    plain = SimulatedMachine(MachineConfig(cores=8))
    print(f"{'workload':<18}{'ideal 8-core':>13}{'contended':>11}{'paper':>7}")
    for workload in EVALUATION_WORKLOADS:
        decomposition = workload.decomposition(scale=0.3)
        print(
            f"{workload.name:<18}"
            f"{decomposition.speedup(plain):>13.2f}"
            f"{decomposition.speedup(PAPER_CONTENDED_MACHINE):>11.2f}"
            f"{workload.paper.speedup:>7.2f}"
        )
    print()
    print(
        "The contended model (shared memory interface, AMD-FX-like) is "
        "what lands the simulated numbers in the paper's band."
    )


if __name__ == "__main__":
    main()
