"""Scenario: a priority queue implemented as a list (paper §V, Algorithmia).

Run:  python examples/priority_queue_rescue.py

The paper's most instructive true positive: a priority queue backed by
a plain list, where every "find the highest priority element" is a full
linear scan.  DSspy flags it as Frequent-Long-Read and recommends a
parallel search; here we (1) detect it, (2) apply the recommendation
with the real thread-based parallel container and verify identical
results, and (3) estimate the speedup on the simulated 8-core machine
(the paper measured 2.30 at 100k elements on real hardware).
"""

from __future__ import annotations

import random

from repro import TrackedList, UseCaseEngine, UseCaseKind, collecting
from repro.parallel import (
    MachineConfig,
    ParallelList,
    SimulatedMachine,
    apply_recommendation,
)


def sequential_find_max(pq: TrackedList) -> float:
    best = None
    for i in range(len(pq)):
        value = pq[i]
        if best is None or value > best:
            best = value
    return best


def main() -> None:
    rng = random.Random(42)
    priorities = [rng.random() for _ in range(30_000)]

    # -- 1. Profile the misuse --------------------------------------------
    with collecting() as session:
        pq = TrackedList(label="priority_queue")
        pq.extend(priorities)
        for _ in range(15):
            top = sequential_find_max(pq)
            pq.index(top)  # consumer locates the element

    report = UseCaseEngine().analyze_collector(session)
    flr = next(
        u for u in report.use_cases if u.kind is UseCaseKind.FREQUENT_LONG_READ
    )
    print("DSspy found:", flr.describe())
    print("evidence:   ", flr.evidence)
    print("advice:     ", flr.recommendation.describe())
    print()

    # -- 2. Follow the recommendation (real threads) -----------------------
    parallel_pq = ParallelList(priorities)
    assert parallel_pq.parallel_max() == max(priorities)
    print("parallel_max() agrees with max() on", len(priorities), "elements")

    # -- 3. Estimated speedup on the paper's 8-core machine ----------------
    machine = SimulatedMachine(MachineConfig(cores=8))
    outcome = apply_recommendation(flr, machine)
    print(
        f"simulated transform: {outcome.describe()} "
        f"(paper measured 2.30 at 100k elements)"
    )


if __name__ == "__main__":
    main()
