"""Scenario: one profiling daemon, several instrumented programs.

The CI integration smoke for the service layer: the parent process
starts a :class:`~repro.service.ProfilingDaemon` on a free port, then
launches two *separate* instrumented Python processes (re-invoking this
script with ``--worker``), each recording a different Table-V-style
workload through a :class:`~repro.service.RemoteChannel`.  When both
finish, the parent queries the daemon's STATS endpoint — the same data
``dsspy sessions`` renders — and asserts the merged view: two finished
sessions, one flagging Long Insert and one flagging Frequent Long
Read.

``--crash`` runs the crash-recovery smoke instead: the daemon is a
*subprocess* (``python -m repro.cli serve --state-dir ...``), a client
streams half a synthetic trace and syncs, the daemon is SIGKILLed —
no flush, no goodbye — and restarted on the same port and state
directory.  The client resumes its session against the recovered
daemon and the final report must equal the batch report of the same
trace, i.e. the crash must be invisible in the analysis.

Run directly::

    PYTHONPATH=src python examples/remote_smoke.py
    PYTHONPATH=src python examples/remote_smoke.py --crash
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import socket
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

WORKLOADS = ("long_insert", "frequent_long_read")

#: Use-case abbreviation each worker's workload must trigger.
EXPECTED = {"long_insert": "LI", "frequent_long_read": "FLR"}


def run_worker(name: str, address: str) -> int:
    """Child process: record one workload through a RemoteChannel."""
    from repro.events import EventCollector, pop_collector, push_collector
    from repro.service import RemoteChannel
    from repro.workloads import gen_frequent_long_read, gen_long_insert

    generators = {
        "long_insert": gen_long_insert,
        "frequent_long_read": gen_frequent_long_read,
    }
    channel = RemoteChannel(address)
    collector = EventCollector(channel=channel)
    push_collector(collector)
    try:
        generators[name](label=name)
    finally:
        pop_collector()
    profiles = collector.finish()
    ack = channel.final_ack
    if ack is None:
        print(f"worker {name}: FIN handshake failed", file=sys.stderr)
        return 1
    events = sum(len(p) for p in profiles.values())
    print(
        f"worker {name}: session {ack['session']} shipped {ack['received']} "
        f"events ({events} recorded locally)"
    )
    return 0 if ack["received"] == events else 1


def run_orchestrator() -> int:
    from repro.service import ProfilingDaemon, fetch_stats

    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (src, env.get("PYTHONPATH")) if p
    )

    with ProfilingDaemon(port=0) as daemon:
        print(f"daemon listening on {daemon.address}")
        procs = [
            subprocess.Popen(
                [sys.executable, __file__, "--worker", name, daemon.address],
                env=env,
            )
            for name in WORKLOADS
        ]
        failures = sum(proc.wait(timeout=120) != 0 for proc in procs)
        if failures:
            print(f"SMOKE: FAILED — {failures} worker(s) exited non-zero")
            return 1

        stats = fetch_stats(daemon.address)
        print(json.dumps(stats, indent=2))
        sessions = stats["sessions"]
        if len(sessions) != len(WORKLOADS):
            print(f"SMOKE: FAILED — expected {len(WORKLOADS)} sessions")
            return 1
        if any(s["state"] != "finished" for s in sessions):
            print("SMOKE: FAILED — not every session finished")
            return 1
        flagged = {
            abbrev for s in sessions for kinds in s["flagged"].values()
            for abbrev in kinds
        }
        missing = set(EXPECTED.values()) - flagged
        if missing:
            print(f"SMOKE: FAILED — merged report is missing {sorted(missing)}")
            return 1
    print(f"SMOKE: passed — merged report flags {sorted(flagged)}")
    return 0


def _child_env() -> dict[str, str]:
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (src, env.get("PYTHONPATH")) if p
    )
    return env


def _free_port() -> int:
    with socket.socket(socket.AF_INET, socket.SOCK_STREAM) as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def _start_serve(port: int, state_dir: str) -> subprocess.Popen:
    """Launch ``dsspy serve`` as a subprocess and wait until it answers
    STATS (so a SIGKILL later hits a fully started daemon)."""
    from repro.service import fetch_stats

    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro.cli", "serve",
            "--host", "127.0.0.1", "--port", str(port),
            "--state-dir", state_dir,
            "--checkpoint-every", "200",
            "--heartbeat-timeout", "60", "--linger", "300",
        ],
        env=_child_env(),
        stdout=subprocess.DEVNULL,
    )
    deadline = time.monotonic() + 30.0
    while True:
        try:
            fetch_stats(f"127.0.0.1:{port}", timeout=2.0)
            return proc
        except OSError:
            if proc.poll() is not None:
                raise RuntimeError(
                    f"serve subprocess exited early (rc={proc.returncode})"
                )
            if time.monotonic() > deadline:
                proc.kill()
                raise RuntimeError("serve subprocess never became reachable")
            time.sleep(0.05)


def run_crash_recovery(seed: int = 11) -> int:
    """SIGKILL the daemon mid-ingest; the recovered daemon's report
    must equal the no-crash batch report of the same trace."""
    from repro.service import fetch_stats
    from repro.service.client import ServiceClient
    from repro.testing import generate_trace, run_batch_path, summarize_report
    from repro.testing.oracle import diff_summaries, run_daemon_path

    trace = generate_trace(seed)
    expected = summarize_report(run_batch_path(trace))
    total = len(trace.events)
    half = total // 2
    port = _free_port()
    address = f"127.0.0.1:{port}"

    with tempfile.TemporaryDirectory(prefix="dsspy-crash-smoke-") as state_dir:
        daemon = _start_serve(port, state_dir)
        print(f"daemon (pid {daemon.pid}) listening on {address}")

        client = ServiceClient(address)
        session_id = client.session_id
        client.register_instances([i.registration() for i in trace.instances])
        client.send_events(0, trace.events[:half])
        ack = client.heartbeat()  # sync: the half is processed + journaled
        client.close()
        print(f"streamed {ack['received']}/{total} events, now killing the daemon")
        if ack["received"] != half:
            print(f"SMOKE: FAILED — daemon acked {ack['received']}, sent {half}")
            daemon.kill()
            return 1

        daemon.send_signal(signal.SIGKILL)
        daemon.wait(timeout=30)

        daemon = _start_serve(port, state_dir)
        stats = fetch_stats(address)
        sessions = {s["session"]: s for s in stats["sessions"]}
        recovered = sessions.get(session_id)
        if recovered is None or not recovered.get("recovered"):
            print(f"SMOKE: FAILED — session {session_id} not recovered: {stats}")
            daemon.kill()
            return 1
        print(
            f"restarted daemon recovered session {session_id} at "
            f"{recovered['received']}/{total} events"
        )

        try:
            report = run_daemon_path(
                trace, address, window=64, retry_delay=0.1, session_id=session_id
            )
        finally:
            daemon.terminate()
            daemon.wait(timeout=30)
        mismatches = diff_summaries(
            "batch", expected, "post-crash daemon", summarize_report(report)
        )
        if mismatches:
            print("SMOKE: FAILED — recovered report diverges from batch:")
            for line in mismatches:
                print(f"  {line}")
            return 1
    print(
        f"SMOKE: passed — daemon SIGKILLed at {half}/{total} events, "
        "recovered report equals the no-crash batch report"
    )
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--worker",
        nargs=2,
        metavar=("NAME", "ADDRESS"),
        default=None,
        help="internal: run one instrumented workload against ADDRESS",
    )
    parser.add_argument(
        "--crash",
        action="store_true",
        help="run the crash-recovery smoke (daemon subprocess, SIGKILL, "
        "restart, report equality)",
    )
    args = parser.parse_args(argv)
    if args.worker:
        return run_worker(*args.worker)
    if args.crash:
        return run_crash_recovery()
    return run_orchestrator()


if __name__ == "__main__":
    raise SystemExit(main())
