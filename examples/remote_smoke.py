"""Scenario: one profiling daemon, several instrumented programs.

The CI integration smoke for the service layer: the parent process
starts a :class:`~repro.service.ProfilingDaemon` on a free port, then
launches two *separate* instrumented Python processes (re-invoking this
script with ``--worker``), each recording a different Table-V-style
workload through a :class:`~repro.service.RemoteChannel`.  When both
finish, the parent queries the daemon's STATS endpoint — the same data
``dsspy sessions`` renders — and asserts the merged view: two finished
sessions, one flagging Long Insert and one flagging Frequent Long
Read.

Run directly::

    PYTHONPATH=src python examples/remote_smoke.py
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

WORKLOADS = ("long_insert", "frequent_long_read")

#: Use-case abbreviation each worker's workload must trigger.
EXPECTED = {"long_insert": "LI", "frequent_long_read": "FLR"}


def run_worker(name: str, address: str) -> int:
    """Child process: record one workload through a RemoteChannel."""
    from repro.events import EventCollector, pop_collector, push_collector
    from repro.service import RemoteChannel
    from repro.workloads import gen_frequent_long_read, gen_long_insert

    generators = {
        "long_insert": gen_long_insert,
        "frequent_long_read": gen_frequent_long_read,
    }
    channel = RemoteChannel(address)
    collector = EventCollector(channel=channel)
    push_collector(collector)
    try:
        generators[name](label=name)
    finally:
        pop_collector()
    profiles = collector.finish()
    ack = channel.final_ack
    if ack is None:
        print(f"worker {name}: FIN handshake failed", file=sys.stderr)
        return 1
    events = sum(len(p) for p in profiles.values())
    print(
        f"worker {name}: session {ack['session']} shipped {ack['received']} "
        f"events ({events} recorded locally)"
    )
    return 0 if ack["received"] == events else 1


def run_orchestrator() -> int:
    from repro.service import ProfilingDaemon, fetch_stats

    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (src, env.get("PYTHONPATH")) if p
    )

    with ProfilingDaemon(port=0) as daemon:
        print(f"daemon listening on {daemon.address}")
        procs = [
            subprocess.Popen(
                [sys.executable, __file__, "--worker", name, daemon.address],
                env=env,
            )
            for name in WORKLOADS
        ]
        failures = sum(proc.wait(timeout=120) != 0 for proc in procs)
        if failures:
            print(f"SMOKE: FAILED — {failures} worker(s) exited non-zero")
            return 1

        stats = fetch_stats(daemon.address)
        print(json.dumps(stats, indent=2))
        sessions = stats["sessions"]
        if len(sessions) != len(WORKLOADS):
            print(f"SMOKE: FAILED — expected {len(WORKLOADS)} sessions")
            return 1
        if any(s["state"] != "finished" for s in sessions):
            print("SMOKE: FAILED — not every session finished")
            return 1
        flagged = {
            abbrev for s in sessions for kinds in s["flagged"].values()
            for abbrev in kinds
        }
        missing = set(EXPECTED.values()) - flagged
        if missing:
            print(f"SMOKE: FAILED — merged report is missing {sorted(missing)}")
            return 1
    print(f"SMOKE: passed — merged report flags {sorted(flagged)}")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--worker",
        nargs=2,
        metavar=("NAME", "ADDRESS"),
        default=None,
        help="internal: run one instrumented workload against ADDRESS",
    )
    args = parser.parse_args(argv)
    if args.worker:
        return run_worker(*args.worker)
    return run_orchestrator()


if __name__ == "__main__":
    raise SystemExit(main())
