"""Scenario: the profiler breaks; the profiled program must not.

Two hostile captures, each checked differentially against the identical
uninstrumented run:

1. **Raising collector** — every recording call raises inside the
   profiler.  Under an armed firewall the program's results must be
   byte-identical to the plain run, and the circuit breaker must trip
   to pass-through once the error budget is spent.

2. **Daemon killed mid-run** — a ``RemoteChannel`` is streaming to a
   live daemon that is crash-killed halfway through the capture.  The
   program keeps running, the terminal drain is bounded by the guard's
   exit deadline, and the results again equal the plain run.

Exit code 0 means the fail-open contract held end to end; used as a CI
smoke job.  Run directly::

    PYTHONPATH=src python examples/fail_open_smoke.py
"""

from __future__ import annotations

import time

from repro.events import EventCollector
from repro.runtime import RuntimeGuard, finish_with_deadline, firewall
from repro.service import ProfilingDaemon, RemoteChannel
from repro.structures import TrackedList
from repro.testing import HostileCollector


def workload(make_list, midpoint=None):
    """Deterministic mixed read/write/sort workload returning a
    result tuple that any profiler interference would perturb."""
    xs = make_list()
    for i in range(5000):
        xs.append(i * 7 % 101)
        if i == 2500 and midpoint is not None:
            midpoint()
    total = 0
    for i in range(len(xs)):
        total += xs[i]
    xs.sort()
    return (len(xs), total, xs[0], xs[-1])


def phase_raising_collector() -> None:
    plain = workload(list)

    with firewall(budget=10) as guard:
        hostile = HostileCollector(every=1)
        guarded = workload(lambda: TrackedList(collector=hostile, label="hostile"))

    report = guard.report()
    assert guarded == plain, (guarded, plain)
    assert hostile.record_calls > 0, "hostile collector was never exercised"
    assert report.tripped, report.describe()
    assert report.faults == 10, report.describe()
    print("phase 1: raising collector contained —", end=" ")
    print(f"results identical, breaker open after {report.faults} faults")
    print("  " + report.describe().replace("\n", "\n  "))


def phase_daemon_killed_mid_run() -> None:
    plain = workload(list)

    daemon = ProfilingDaemon(port=0)
    guard = RuntimeGuard(budget=25, exit_deadline=3.0)
    channel = RemoteChannel(
        daemon.address, heartbeat_interval=0.2, give_up_after=1.0
    )
    guard.watch_channel(channel)
    collector = EventCollector(channel=channel)

    with guard:
        result = workload(
            lambda: TrackedList(collector=collector, label="survivor"),
            midpoint=daemon.crash,  # SIGKILL-equivalent, no flush, no goodbye
        )
        start = time.monotonic()
        finish_with_deadline(collector, guard)
        drain_s = time.monotonic() - start

    assert result == plain, (result, plain)
    assert drain_s < guard.exit_deadline + 2.0, f"drain took {drain_s:.1f}s"
    print("phase 2: daemon crash-killed mid-run —", end=" ")
    print(f"results identical, drain bounded at {drain_s:.2f}s")
    report = guard.report()
    if report.faults or report.tripped:
        print("  " + report.describe().replace("\n", "\n  "))


def main() -> int:
    phase_raising_collector()
    phase_daemon_killed_mid_run()
    print("fail-open smoke: OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
