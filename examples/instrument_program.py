"""Scenario: fully automatic instrumentation of unmodified source code.

Run:  python examples/instrument_program.py

DSspy's headline mode (paper §IV): take a program that knows nothing
about profiling, statically find its list/array instantiations, rewrite
them to tracked proxies, execute the instrumented copy, and report the
use cases — all without touching the original file.  Also measures the
instrumentation slowdown, the Table IV metric.
"""

from __future__ import annotations

import textwrap

from repro.instrument import find_sites, measure_slowdown, run_instrumented
from repro.usecases import UseCaseEngine, format_table_v

#: An unmodified "legacy" program: an event log that is filled and then
#: repeatedly searched the slow way.
LEGACY_PROGRAM = textwrap.dedent(
    '''
    def load_events(n):
        events = []
        for i in range(n):
            events.append((i * 37) % n)
        return events

    def count_matches(events, needle):
        hits = 0
        for i in range(len(events)):
            if events[i] == needle:
                hits += 1
        return hits

    def main():
        events = load_events(3000)
        total = 0
        for needle in range(12):
            total += count_matches(events, needle)
        return total
    '''
)


def main() -> None:
    # -- 1. Static analysis: where are the containers? ---------------------
    print("instantiation sites found statically:")
    for site in find_sites(LEGACY_PROGRAM, filename="legacy.py"):
        print("  ", site.describe())
    print()

    # -- 2. Instrument, execute, analyze -----------------------------------
    run = run_instrumented(LEGACY_PROGRAM, entry="main")
    print(
        f"instrumented run: result={run.result}, "
        f"{run.collector.instance_count} instances, "
        f"{run.event_count} access events, {run.rewrite.rewrites} rewrites"
    )
    report = UseCaseEngine().analyze(run.profiles)
    print()
    print(format_table_v(report, title="Use cases in the legacy program"))
    print()

    # -- 3. Slowdown (the cost of profiling, paid once) ---------------------
    slowdown = measure_slowdown(LEGACY_PROGRAM, entry="main", repeats=3)
    print(
        f"instrumentation slowdown: {slowdown.factor:.1f}x "
        f"({slowdown.plain_seconds * 1e3:.1f} ms -> "
        f"{slowdown.instrumented_seconds * 1e3:.1f} ms; "
        "paper average: 47.13x)"
    )


if __name__ == "__main__":
    main()
