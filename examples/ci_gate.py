"""Scenario: DSspy as a CI gate for parallelization smells.

Run:  python examples/ci_gate.py

The continuous-integration workflow built from the JSON export and the
report-diff API: profile the current build, archive the capture, diff
against the previous build's archive, and fail the gate when new
parallelization smells were introduced.
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro.events import collecting, read_profiles, save_collector
from repro.patterns import compare_reports
from repro.structures import TrackedList
from repro.usecases import UseCaseEngine, report_to_json, summarize_json


def build_v1() -> None:
    """Version 1: a tidy event pipeline."""
    log = TrackedList(label="event_log")
    for i in range(80):
        log.append(i)


def build_v2() -> None:
    """Version 2: someone added a linear rescan over the whole log —
    a Frequent-Long-Read in the making."""
    log = TrackedList(label="event_log")
    for i in range(400):
        log.append(i)
    for _ in range(15):
        seen = 0
        for i in range(len(log)):
            if log[i] % 3 == 0:
                seen += 1


def capture(build, path: Path) -> None:
    with collecting() as session:
        build()
    save_collector(session, path)


def main() -> int:
    engine = UseCaseEngine()
    with tempfile.TemporaryDirectory() as tmp:
        v1_archive = Path(tmp) / "v1.jsonl"
        v2_archive = Path(tmp) / "v2.jsonl"
        capture(build_v1, v1_archive)
        capture(build_v2, v2_archive)

        before = engine.analyze(read_profiles(v1_archive))
        after = engine.analyze(read_profiles(v2_archive))

        print("v1:", summarize_json(report_to_json(before)))
        print("v2:", summarize_json(report_to_json(after)))
        print()

        diff = compare_reports(before, after)
        print(diff.describe())
        if diff.introduced:
            print()
            print("CI GATE: FAILED — new parallelization smells introduced:")
            for label, kind in diff.introduced:
                print(f"  {kind} on {label}")
            return 1
        print("CI GATE: passed")
        return 0


if __name__ == "__main__":
    raise SystemExit(main())
