"""Scenario: DSspy as a CI gate.

Two gates share this entry point:

``python examples/ci_gate.py``
    The use-case gate: profile the current build, archive the capture,
    diff against the previous build's archive, and fail when new
    parallelization smells were introduced.

``python examples/ci_gate.py --overhead CUR.json --baseline BASE.json``
    The recording-overhead gate: compare a fresh
    ``benchmarks/overhead.py`` JSON against the checked-in baseline and
    fail when a gated transport's per-event cost regressed by more
    than ``--max-regression`` (default 25%).  The compared metrics are
    ``derived.batching_vs_plain``, ``derived.remote_vs_plain``,
    ``derived.journal_vs_plain`` (the remote transport against a daemon
    with write-ahead journaling enabled), and ``derived.guard_vs_plain``
    (the tracked-append hot path under an armed fail-open firewall) —
    recording cost as a multiple of a plain ``list.append`` measured on
    the same machine — so the gate is portable across CI runners with
    different absolute clock speeds.
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
from pathlib import Path

#: The machine-normalized metrics the overhead gate enforces: the
#: in-process batched pipeline, the networked RemoteChannel, the
#: RemoteChannel against a journaling (crash-safe) daemon, and the
#: guarded (fail-open firewall) tracked-append path, each as a cost
#: multiple of a plain ``list.append`` on the same machine.
GATED_METRICS = (
    "batching_vs_plain",
    "remote_vs_plain",
    "journal_vs_plain",
    "guard_vs_plain",
)


def overhead_gate(
    current_path: Path, baseline_path: Path, max_regression: float
) -> int:
    """Fail (1) when any gated normalized recording cost regressed."""
    current = json.loads(Path(current_path).read_text(encoding="utf-8"))
    baseline = json.loads(Path(baseline_path).read_text(encoding="utf-8"))
    failed = []
    for metric in GATED_METRICS:
        in_current = metric in current.get("derived", {})
        in_baseline = metric in baseline.get("derived", {})
        if not in_current and not in_baseline:
            print(f"overhead gate: {metric} absent from both documents, skipped")
            continue
        if not (in_current and in_baseline):
            print(
                f"overhead gate: {metric} missing from "
                f"{'current' if not in_current else 'baseline'} benchmark JSON",
                file=sys.stderr,
            )
            return 2
        cur = float(current["derived"][metric])
        base = float(baseline["derived"][metric])
        regression = cur / base - 1.0
        print(
            f"overhead gate: {metric} = {cur:.2f} "
            f"(baseline {base:.2f}, change {regression:+.1%}, "
            f"allowed +{max_regression:.0%})"
        )
        if cur > base * (1.0 + max_regression):
            failed.append((metric, regression))
    for name, entry in sorted(current.get("channels", {}).items()):
        print(f"  {name:<14} {entry['per_event_ns']:8.0f} ns/event")
    if failed:
        for metric, regression in failed:
            print(
                f"CI GATE: FAILED — {metric} is {regression:+.1%} "
                f"vs baseline (limit +{max_regression:.0%})"
            )
        return 1
    print("CI GATE: passed")
    return 0

from repro.events import collecting, read_profiles, save_collector
from repro.patterns import compare_reports
from repro.structures import TrackedList
from repro.usecases import UseCaseEngine, report_to_json, summarize_json


def build_v1() -> None:
    """Version 1: a tidy event pipeline."""
    log = TrackedList(label="event_log")
    for i in range(80):
        log.append(i)


def build_v2() -> None:
    """Version 2: someone added a linear rescan over the whole log —
    a Frequent-Long-Read in the making."""
    log = TrackedList(label="event_log")
    for i in range(400):
        log.append(i)
    for _ in range(15):
        seen = 0
        for i in range(len(log)):
            if log[i] % 3 == 0:
                seen += 1


def capture(build, path: Path) -> None:
    with collecting() as session:
        build()
    save_collector(session, path)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description="DSspy CI gates")
    parser.add_argument(
        "--overhead",
        default=None,
        metavar="CURRENT",
        help="overhead-gate mode: a fresh benchmarks/overhead.py JSON",
    )
    parser.add_argument(
        "--baseline",
        default="benchmarks/baselines/overhead_baseline.json",
        metavar="BASELINE",
        help="checked-in overhead baseline JSON",
    )
    parser.add_argument(
        "--max-regression",
        type=float,
        default=0.25,
        help="allowed fractional slowdown of the gated metric (0.25 = +25%%)",
    )
    args = parser.parse_args(argv)
    if args.overhead:
        return overhead_gate(
            Path(args.overhead), Path(args.baseline), args.max_regression
        )

    engine = UseCaseEngine()
    with tempfile.TemporaryDirectory() as tmp:
        v1_archive = Path(tmp) / "v1.jsonl"
        v2_archive = Path(tmp) / "v2.jsonl"
        capture(build_v1, v1_archive)
        capture(build_v2, v2_archive)

        before = engine.analyze(read_profiles(v1_archive))
        after = engine.analyze(read_profiles(v2_archive))

        print("v1:", summarize_json(report_to_json(before)))
        print("v2:", summarize_json(report_to_json(after)))
        print()

        diff = compare_reports(before, after)
        print(diff.describe())
        if diff.introduced:
            print()
            print("CI GATE: FAILED — new parallelization smells introduced:")
            for label, kind in diff.introduced:
                print(f"  {kind} on {label}")
            return 1
        print("CI GATE: passed")
        return 0


if __name__ == "__main__":
    raise SystemExit(main())
