"""Scenario: DSspy as a CI gate.

Two gates share this entry point:

``python examples/ci_gate.py``
    The use-case gate: profile the current build, archive the capture,
    diff against the previous build's archive, and fail when new
    parallelization smells were introduced.

``python examples/ci_gate.py --overhead CUR.json --baseline BASE.json``
    The recording-overhead gate: compare a fresh benchmark JSON
    (``dsspy bench -o CUR.json``) against the checked-in baseline and
    fail when a gated transport's per-event cost regressed by more
    than ``--max-regression`` (default 25%).  The comparison itself is
    :func:`repro.bench.check` — the same ratchet CI runs via ``dsspy
    bench --check`` — enforcing every metric in
    :data:`repro.bench.GATED_METRICS` (cost as a multiple of a plain
    ``list.append`` measured on the same machine, so the gate is
    portable across CI runners with different absolute clock speeds)
    plus the hard ceilings pinned in the baseline's ``gates`` object.
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
from pathlib import Path

from repro.bench import GATED_METRICS, check  # noqa: F401  (re-exported)


def overhead_gate(
    current_path: Path, baseline_path: Path, max_regression: float
) -> int:
    """Fail (1) when any gated normalized recording cost regressed."""
    current = json.loads(Path(current_path).read_text(encoding="utf-8"))
    baseline = json.loads(Path(baseline_path).read_text(encoding="utf-8"))
    try:
        failures, report = check(current, baseline, max_regression=max_regression)
    except ValueError as exc:
        print(f"overhead gate: {exc}", file=sys.stderr)
        return 2
    for line in report:
        print(f"overhead gate: {line}")
    for name, entry in sorted(current.get("channels", {}).items()):
        print(f"  {name:<14} {entry['per_event_ns']:8.0f} ns/event")
    if failures:
        for failure in failures:
            print(f"CI GATE: FAILED — {failure}")
        return 1
    print("CI GATE: passed")
    return 0

from repro.events import collecting, read_profiles, save_collector
from repro.patterns import compare_reports
from repro.structures import TrackedList
from repro.usecases import UseCaseEngine, report_to_json, summarize_json


def build_v1() -> None:
    """Version 1: a tidy event pipeline."""
    log = TrackedList(label="event_log")
    for i in range(80):
        log.append(i)


def build_v2() -> None:
    """Version 2: someone added a linear rescan over the whole log —
    a Frequent-Long-Read in the making."""
    log = TrackedList(label="event_log")
    for i in range(400):
        log.append(i)
    for _ in range(15):
        seen = 0
        for i in range(len(log)):
            if log[i] % 3 == 0:
                seen += 1


def capture(build, path: Path) -> None:
    with collecting() as session:
        build()
    save_collector(session, path)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description="DSspy CI gates")
    parser.add_argument(
        "--overhead",
        default=None,
        metavar="CURRENT",
        help="overhead-gate mode: a fresh benchmarks/overhead.py JSON",
    )
    parser.add_argument(
        "--baseline",
        default="benchmarks/baselines/overhead_baseline.json",
        metavar="BASELINE",
        help="checked-in overhead baseline JSON",
    )
    parser.add_argument(
        "--max-regression",
        type=float,
        default=0.25,
        help="allowed fractional slowdown of the gated metric (0.25 = +25%%)",
    )
    args = parser.parse_args(argv)
    if args.overhead:
        return overhead_gate(
            Path(args.overhead), Path(args.baseline), args.max_regression
        )

    engine = UseCaseEngine()
    with tempfile.TemporaryDirectory() as tmp:
        v1_archive = Path(tmp) / "v1.jsonl"
        v2_archive = Path(tmp) / "v2.jsonl"
        capture(build_v1, v1_archive)
        capture(build_v2, v2_archive)

        before = engine.analyze(read_profiles(v1_archive))
        after = engine.analyze(read_profiles(v2_archive))

        print("v1:", summarize_json(report_to_json(before)))
        print("v2:", summarize_json(report_to_json(after)))
        print()

        diff = compare_reports(before, after)
        print(diff.describe())
        if diff.introduced:
            print()
            print("CI GATE: FAILED — new parallelization smells introduced:")
            for label, kind in diff.introduced:
                print(f"  {kind} on {label}")
            return 1
        print("CI GATE: passed")
        return 0


if __name__ == "__main__":
    raise SystemExit(main())
