"""Quickstart: profile a data structure and get parallelization advice.

Run:  python examples/quickstart.py

Creates a tracked list, uses it the way the paper's Figure 3 profile
does (append a batch, scan it repeatedly), and asks DSspy what it sees:
the runtime profile chart, the detected access patterns, and the use
cases with recommended actions.
"""

from __future__ import annotations

from repro import TrackedList, UseCaseEngine, collecting, detect, format_table_v
from repro.viz import render_op_histogram, render_patterns, render_profile


def main() -> None:
    # 1. Capture a session: every tracked structure created inside
    #    records its access events.
    with collecting() as session:
        items = TrackedList(label="work_items")
        for round_ in range(14):
            for i in range(200):
                items.append(i * round_)
            # Repeatedly scan the list front-to-end, twice per round —
            # the "disguised search" shape.
            for _ in range(2):
                best = None
                for i in range(len(items)):
                    value = items[i]
                    if best is None or value > best:
                        best = value
            items.clear()

    # 2. Visualize the runtime profile (paper Figure 2/3 style).
    profile = session.profiles_by_label()["work_items"]
    print(f"profile: {profile}")
    print(render_profile(profile, width=72, height=12))
    print()
    print("operation mix:")
    print(render_op_histogram(profile))
    print()

    # 3. Detect access patterns.
    analysis = detect(profile)
    print(render_patterns(analysis, max_rows=8))
    print()

    # 4. Derive use cases + recommendations.
    report = UseCaseEngine().analyze_collector(session)
    print(format_table_v(report, title="DSspy advice"))
    print()
    print(
        f"search space: {report.instances_flagged} of "
        f"{report.instances_analyzed} instances flagged "
        f"({report.search_space_reduction:.0%} reduction)"
    )


if __name__ == "__main__":
    main()
