"""Scenario: visualize the canonical runtime-profile shapes.

Run:  python examples/visualize_profiles.py [output_dir]

Renders the paper's Figure 2 snippet and one profile per use-case kind,
both as terminal charts and as standalone SVG files — the visualization
DSspy presents to the engineer for trust and program understanding.
"""

from __future__ import annotations

import sys
from pathlib import Path

from repro.events import collecting
from repro.patterns import detect
from repro.viz import profile_to_svg, render_patterns, render_profile
from repro.workloads import (
    gen_fig2_snippet,
    gen_frequent_long_read,
    gen_insert_back_read_forward,
    gen_long_insert,
    gen_queue_usage,
    gen_sort_after_insert,
    gen_stack_usage,
    gen_write_without_read,
)

SHAPES = [
    ("fig2_snippet", lambda: gen_fig2_snippet()),
    ("fig3_insert_read_cycles", lambda: gen_insert_back_read_forward(50, 8)),
    ("long_insert", lambda: gen_long_insert(400)),
    ("queue_usage", lambda: gen_queue_usage(90)),
    ("stack_usage", lambda: gen_stack_usage(25, 4)),
    ("sort_after_insert", lambda: gen_sort_after_insert(200)),
    ("frequent_long_read", lambda: gen_frequent_long_read(12, 60)),
    ("write_without_read", lambda: gen_write_without_read(40)),
]


def main(output_dir: str = "profile_gallery") -> None:
    out = Path(output_dir)
    out.mkdir(exist_ok=True)
    for name, maker in SHAPES:
        with collecting():
            structure = maker()
            profile = structure.profile()
        print(f"=== {name} ({len(profile)} events) ===")
        print(render_profile(profile, width=70, height=10))
        analysis = detect(profile)
        print(render_patterns(analysis, max_rows=5))
        print()
        svg_path = out / f"{name}.svg"
        svg_path.write_text(profile_to_svg(profile, title=name))
        print(f"  -> {svg_path}")
        print()


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "profile_gallery")
