"""Table V — DSspy's use-case report for GPdotNET.

The published output lists five use cases: a Frequent-Long-Read on the
terminal-set array, Frequent-Long-Read + Long-Insert on the population
list (the pair the manual parallelization also touched), and
Frequent-Long-Read + Long-Insert on the selection structure.
"""

from __future__ import annotations

import pytest

from repro.events import StructureKind, collecting
from repro.usecases import UseCaseEngine, UseCaseKind, format_table_v
from repro.usecases.rules import PARALLEL_RULES
from repro.workloads import GPdotNET

from .conftest import save_result


@pytest.fixture(scope="module")
def report():
    workload = GPdotNET()
    with collecting() as session:
        workload.run_tracked(scale=0.5)
    return UseCaseEngine(rules=PARALLEL_RULES).analyze_collector(session)


def test_table5_report(benchmark, results_dir):
    workload = GPdotNET()

    def run():
        with collecting() as session:
            workload.run_tracked(scale=0.5)
        return UseCaseEngine(rules=PARALLEL_RULES).analyze_collector(session)

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    save_result(
        results_dir,
        "table5.txt",
        format_table_v(report, title="DSspy use cases for GPdotNET"),
    )
    assert len(report.use_cases) == 5


def test_table5_use_case_structure(report):
    """Five use cases on three distinct structures, kinds as published."""
    by_label: dict[str, set[UseCaseKind]] = {}
    for use_case in report.use_cases:
        by_label.setdefault(use_case.profile.label, set()).add(use_case.kind)

    assert by_label["terminals"] == {UseCaseKind.FREQUENT_LONG_READ}
    assert by_label["population"] == {
        UseCaseKind.FREQUENT_LONG_READ,
        UseCaseKind.LONG_INSERT,
    }
    assert by_label["selection_pool"] == {
        UseCaseKind.FREQUENT_LONG_READ,
        UseCaseKind.LONG_INSERT,
    }
    assert len(by_label) == 3  # three structures, like Table V


def test_table5_terminals_is_array(report):
    """Use case one targets an Array (Table V: Array<System.Double>)."""
    terminals_cases = [
        u for u in report.use_cases if u.profile.label == "terminals"
    ]
    assert terminals_cases[0].profile.kind is StructureKind.ARRAY


def test_table5_report_format(report):
    text = format_table_v(report)
    assert text.count("Use Case") >= 5
    assert "Frequent-Long-Read" in text
    assert "Long-Insert" in text
    assert "Recommendation" in text
