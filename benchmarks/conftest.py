"""Shared benchmark fixtures: results directory and collector isolation."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.events import reset_ambient

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(autouse=True)
def _isolated_collector():
    reset_ambient()
    yield
    reset_ambient()


@pytest.fixture(scope="session")
def results_dir() -> Path:
    """Directory the rendered tables/figures are written to."""
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def save_result(results_dir: Path, name: str, text: str) -> None:
    (results_dir / name).write_text(text + "\n", encoding="utf-8")
