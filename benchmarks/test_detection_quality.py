"""Beyond-paper benchmark: detection precision/recall + model validation.

Two measurements the paper lists as open:

1. *Recall* (§VII: "We therefore cannot make a statement on the recall
   rate of DSspy") — measured here on a labeled synthetic corpus with
   boundary cases, including a threshold-scaling sweep.
2. *Machine-model credibility* — the simulated scheduler validated
   against real thread-pool speedups on wait-bound tasks (genuine
   concurrency even on a single-core host).
"""

from __future__ import annotations

import pytest

from repro.eval import evaluate_detection_quality
from repro.parallel import validate_machine_model
from repro.usecases import Thresholds, UseCaseEngine
from repro.usecases.rules import PARALLEL_RULES

from .conftest import save_result


def test_detection_quality(benchmark, results_dir):
    quality = benchmark.pedantic(
        evaluate_detection_quality, rounds=1, iterations=1
    )
    save_result(results_dir, "detection_quality.txt", quality.describe())
    assert quality.macro_f1 == pytest.approx(1.0)
    assert quality.negative_specificity == pytest.approx(1.0)


def test_threshold_scaling_sweep(results_dir):
    """Quality vs globally scaled thresholds: the paper's values
    (factor 1.0) sit at the optimum of this corpus."""
    rows = []
    for factor in (0.05, 0.3, 1.0, 3.0, 10.0):
        engine = UseCaseEngine(
            thresholds=Thresholds().scaled(factor), rules=PARALLEL_RULES
        )
        quality = evaluate_detection_quality(engine=engine)
        rows.append(
            (factor, quality.macro_f1, quality.negative_specificity)
        )
    save_result(
        results_dir,
        "detection_quality_sweep.txt",
        "factor macro_f1 specificity\n"
        + "\n".join(f"{f:>6.2f} {m:>8.3f} {s:>11.3f}" for f, m, s in rows),
    )
    by_factor = {f: (m, s) for f, m, s in rows}
    best_f1 = max(m for m, _ in by_factor.values())
    assert by_factor[1.0][0] == pytest.approx(best_f1)
    assert by_factor[0.05][1] < 1.0  # loose thresholds leak negatives
    assert by_factor[10.0][0] < 1.0  # tight thresholds miss positives


def test_machine_model_validation(benchmark, results_dir):
    points = benchmark.pedantic(
        lambda: validate_machine_model(task_counts=(4, 8, 16), task_seconds=0.02),
        rounds=1,
        iterations=1,
    )
    lines = [
        f"tasks={p.tasks:>3} measured={p.measured_speedup:.2f} "
        f"predicted={p.predicted_speedup:.2f} err={p.relative_error:.1%}"
        for p in points
    ]
    save_result(results_dir, "machine_validation.txt", "\n".join(lines))
    for point in points:
        # Generous bound: wall-clock on a loaded single-core host.
        assert point.relative_error < 0.50, point
