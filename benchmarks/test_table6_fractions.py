"""Table VI — sequential vs parallelizable runtime fractions.

The paper's explanation of the 1.20 CPU-Benchmarks speedup: measured
sequential fractions of 94.29% / 3.89% / 9.09% / 28.21% for the four
analyzed programs, with lower fractions yielding higher speedups.
"""

from __future__ import annotations

import pytest

from repro.eval import (
    fractions_explain_speedups,
    render_table6,
    run_fraction_analysis,
    run_prose_cases,
)

from .conftest import save_result


@pytest.fixture(scope="module")
def rows():
    return run_fraction_analysis()


def test_table6_fractions(benchmark, results_dir):
    rows = benchmark(run_fraction_analysis)
    save_result(results_dir, "table6.txt", render_table6(rows))
    for row in rows:
        assert row.measured_fraction == pytest.approx(
            row.paper_fraction, abs=0.0005
        ), row.name


def test_table6_ordering_claim(rows):
    """'The lower the sequential fraction, the higher the parallel
    potential' — the measured speedups respect the fraction order."""
    assert fractions_explain_speedups(rows)


def test_table6_cpu_bench_is_the_outlier(rows):
    by_name = {r.name: r for r in rows}
    cpu = by_name["CPU Benchmarks"]
    assert cpu.measured_fraction > 0.9
    assert cpu.program_speedup < 1.3
    gp = by_name["Gpdotnet"]
    assert gp.program_speedup > 3.0


def test_prose_speedup_verdicts(results_dir):
    """§V per-location speedups: every case agrees with the paper on
    whether the parallelization paid off."""
    cases = run_prose_cases(scale=0.3)
    lines = [
        f"{c.description}: measured {c.measured_speedup:.2f} "
        f"(paper {c.paper_speedup:.2f})"
        for c in cases
    ]
    save_result(results_dir, "prose_cases.txt", "\n".join(lines))
    for case in cases:
        assert case.same_verdict, case.description
