"""Table II — recurring regularities on 15 programs.

Mines the synthesized per-program profile suites through the real
regularity classifier and use-case engine; every row and both totals
(81 regularities, 41 parallel use cases) must reproduce.
"""

from __future__ import annotations

import pytest

from repro.eval import render_table2
from repro.study import (
    TABLE2_PROGRAMS,
    TABLE2_TOTAL_PARALLEL_USE_CASES,
    TABLE2_TOTAL_REGULARITIES,
    run_regularity_study,
)

from .conftest import save_result


@pytest.fixture(scope="module")
def study():
    return run_regularity_study()


def test_table2_totals(benchmark, results_dir):
    study = benchmark.pedantic(run_regularity_study, rounds=1, iterations=1)
    save_result(results_dir, "table2.txt", render_table2(study))
    assert study.total_regularities == TABLE2_TOTAL_REGULARITIES
    assert study.total_parallel_use_cases == TABLE2_TOTAL_PARALLEL_USE_CASES


def test_table2_every_row_matches(study):
    for program in study.programs:
        assert program.matches_paper, (
            program.row.name,
            program.regularities_found,
            program.parallel_use_cases_found,
        )


def test_table2_has_15_programs(study):
    assert len(study.programs) == len(TABLE2_PROGRAMS) == 15


def test_table2_parallel_never_exceeds_double_regularities(study):
    """Sanity on the fire/astrogrep rows: a location carries at most
    two parallel use cases (the Figure 3 pair)."""
    for program in study.programs:
        assert (
            program.parallel_use_cases_found
            <= 2 * program.regularities_found
        )
