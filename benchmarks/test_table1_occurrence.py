"""Table I — empirical study: data structure occurrence per domain.

Regenerates the 37-program corpus to the published marginals, scans it
with the real static-analysis pipeline, and checks every Table I cell:
per-domain instance counts, the 1,960-instance total, the 65.05% list
share, the 3.94x list/dictionary ratio and the >75% lists+arrays claim.
"""

from __future__ import annotations

import pytest

from repro.eval import render_table1
from repro.events.types import StructureKind
from repro.study import TABLE1_DOMAINS, run_occurrence_study

from .conftest import save_result


@pytest.fixture(scope="module")
def study():
    return run_occurrence_study(loc_scale=0.05)


def test_table1_occurrence(benchmark, study, results_dir):
    measured = benchmark.pedantic(
        lambda: run_occurrence_study(loc_scale=0.05), rounds=1, iterations=1
    )
    save_result(results_dir, "table1.txt", render_table1(measured))

    assert measured.total_instances == 1_960
    for domain, (instances, _loc) in TABLE1_DOMAINS.items():
        measured_instances, _ = dict(
            (d, (i, l)) for d, i, l in measured.table1_rows()
        )[domain]
        assert measured_instances == instances, domain


def test_headline_shares(study):
    assert study.list_share == pytest.approx(0.6505, abs=0.0002)
    assert study.list_to_dictionary_ratio == pytest.approx(3.94, abs=0.01)
    assert study.lists_and_arrays_share > 0.75
    assert study.corpus.total_array_instances == 785


def test_kind_totals_exact(study):
    counts = study.corpus.counts_by_kind()
    assert counts[StructureKind.LIST] == 1_275
    assert counts[StructureKind.DICTIONARY] == 324
    assert counts[StructureKind.ARRAY_LIST] == 192
    assert counts[StructureKind.STACK] == 49
    assert counts[StructureKind.QUEUE] == 41
