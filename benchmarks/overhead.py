"""Recording-overhead microbenchmark (machine-readable).

Measures the per-event cost of each transport at its hot-path producer
API — ``post`` for the synchronous and async channels, the cached
:meth:`~repro.events.BatchingChannel.producer` callable for the batched
pipeline — timed over a full capture (post loop *plus* terminal drain,
so asynchronous transports cannot hide work in their drainer thread).
A second section measures the realistic ``EventCollector.record`` path
with and without sampling.  Emits one JSON document consumed by the CI
overhead gate (``examples/ci_gate.py --overhead``).

Run directly::

    PYTHONPATH=src python benchmarks/overhead.py --events 100000 -o overhead.json

Absolute nanoseconds vary wildly across machines, so the gated metric
is *normalized*: ``batching_vs_plain`` is the batched per-event cost
divided by a bare ``list.append`` measured on the same machine in the
same process.  ``batching_vs_async`` is the speedup of the batched
pipeline over the per-event-queue AsyncChannel — the paper-architecture
baseline this pipeline is designed to beat.  ``remote_vs_plain`` gates
the networked transport the same way: a ``RemoteChannel`` shipping to a
loopback :class:`~repro.service.ProfilingDaemon` must keep its producer
hot path within budget of the in-process batched pipeline.
``journal_vs_plain`` repeats the remote measurement against a daemon
with the write-ahead journal and checkpointing enabled — durability
lives on the daemon's ingest thread, so the producer hot path must not
notice it.  ``guard_vs_plain`` gates the fail-open firewall of
:mod:`repro.runtime`: the full ``TrackedList.append`` hot path with an
armed healthy guard (one cell read, one try/except, one thread-local
check per event) must stay within budget of a plain append; the
informational ``guard_overhead`` ratio isolates the guard's own cost
against the same path unarmed.
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import time
from pathlib import Path

from repro.events import (
    AccessKind,
    AsyncChannel,
    BatchingChannel,
    Burst,
    Decimate,
    EventCollector,
    OperationKind,
    SamplingPolicy,
    StructureKind,
    SynchronousChannel,
)
from repro.runtime import RuntimeGuard
from repro.service import ProfilingDaemon, RemoteChannel
from repro.structures import TrackedList

SCHEMA_VERSION = 4

#: A representative raw event (list read at position 5 of 1000).
RAW = (0, int(OperationKind.READ), int(AccessKind.READ), 5, 1000, 0, None)


def _time_channel(make_channel, events: int) -> float:
    """Seconds to push ``events`` raw tuples through a channel's hot
    path and drain it."""
    channel = make_channel()
    produce = channel.producer() if hasattr(channel, "producer") else channel.post
    raw = RAW
    start = time.perf_counter()
    for _ in range(events):
        produce(raw)
    channel.drain()
    return time.perf_counter() - start


def _time_record(
    make_channel,
    events: int,
    sampling: SamplingPolicy | None = None,
) -> float:
    """Seconds for the realistic path: ``EventCollector.record`` per
    event, then the channel drained (profiles not materialized — that
    cost is post-mortem analysis, not recording)."""
    collector = EventCollector(channel=make_channel(), sampling=sampling)
    iid = collector.register_instance(StructureKind.LIST)
    record = collector.record
    op = OperationKind.READ
    kind = AccessKind.READ
    start = time.perf_counter()
    for i in range(events):
        record(iid, op, kind, i % 1000, 1000)
    collector.channel.drain()
    return time.perf_counter() - start


def _time_tracked_append(events: int, guard: RuntimeGuard | None = None) -> float:
    """Seconds for the full structure hot path — ``TrackedList.append``
    through ``_record`` into a batching channel — optionally under an
    armed (healthy) firewall."""
    channel = BatchingChannel()
    collector = EventCollector(channel=channel)
    xs = TrackedList(collector=collector)
    append = xs.append
    if guard is not None:
        guard.__enter__()
    try:
        start = time.perf_counter()
        for _ in range(events):
            append(1)
        channel.drain()
        return time.perf_counter() - start
    finally:
        if guard is not None:
            guard.__exit__(None, None, None)


def _time_plain_append(events: int) -> float:
    """The uninstrumented floor: a bare bound ``list.append`` loop."""
    xs: list = []
    append = xs.append
    raw = RAW
    start = time.perf_counter()
    for _ in range(events):
        append(raw)
    return time.perf_counter() - start


def _best(measure, repeats: int) -> float:
    """Minimum over ``repeats`` runs — the standard noise filter."""
    return min(measure() for _ in range(repeats))


def run_overhead_benchmark(events: int = 100_000, repeats: int = 3) -> dict:
    """Measure every transport and sampling tier; return the JSON doc."""
    channels = {
        "sync": lambda: SynchronousChannel(),
        "async": lambda: AsyncChannel(),
        "batching": lambda: BatchingChannel(),
        "batching_drop": lambda: BatchingChannel(policy="drop"),
    }
    recorders = {
        "sync": (lambda: SynchronousChannel(), None),
        "batching": (lambda: BatchingChannel(), None),
        "batching_decimate10": (lambda: BatchingChannel(), lambda: Decimate(10)),
        "batching_burst1000_10": (lambda: BatchingChannel(), lambda: Burst(1000, 10)),
    }

    plain_s = _best(lambda: _time_plain_append(events), repeats)
    doc: dict = {
        "schema": SCHEMA_VERSION,
        "events": events,
        "repeats": repeats,
        "python": sys.version.split()[0],
        "plain_append_ns": plain_s / events * 1e9,
        "channels": {},
        "recording": {},
    }
    for name, factory in channels.items():
        total_s = _best(lambda: _time_channel(factory, events), repeats)
        doc["channels"][name] = {
            "total_s": total_s,
            "per_event_ns": total_s / events * 1e9,
        }
    # The networked transport: same producer hot path as "batching",
    # plus loopback shipping to a live daemon (one daemon reused across
    # repeats; every repeat is a fresh session, and drain() includes the
    # FIN handshake so the full capture cost is measured).
    with ProfilingDaemon(port=0, session_linger=0.1) as daemon:
        total_s = _best(
            lambda: _time_channel(lambda: RemoteChannel(daemon.address), events),
            repeats,
        )
    doc["channels"]["remote"] = {
        "total_s": total_s,
        "per_event_ns": total_s / events * 1e9,
    }
    # Same transport against a durable daemon: every window is journaled
    # before it is acknowledged, with periodic checkpoints.
    with tempfile.TemporaryDirectory(prefix="dsspy-bench-state-") as state_dir:
        with ProfilingDaemon(
            port=0,
            session_linger=0.1,
            state_dir=state_dir,
            checkpoint_every=max(events // 2, 10_000),
        ) as daemon:
            total_s = _best(
                lambda: _time_channel(lambda: RemoteChannel(daemon.address), events),
                repeats,
            )
    doc["channels"]["remote_journal"] = {
        "total_s": total_s,
        "per_event_ns": total_s / events * 1e9,
    }

    for name, (factory, make_policy) in recorders.items():
        total_s = _best(
            lambda: _time_record(
                factory, events, sampling=make_policy() if make_policy else None
            ),
            repeats,
        )
        doc["recording"][name] = {
            "total_s": total_s,
            "per_event_ns": total_s / events * 1e9,
        }

    # The firewall hot path: a healthy armed guard on the tracked-append
    # loop, against the identical loop with no guard armed (seed mode).
    unguarded_s = _best(lambda: _time_tracked_append(events), repeats)
    guarded_s = _best(
        lambda: _time_tracked_append(events, guard=RuntimeGuard(budget=25)), repeats
    )
    doc["structures"] = {
        "tracked_append": {
            "total_s": unguarded_s,
            "per_event_ns": unguarded_s / events * 1e9,
        },
        "tracked_append_guarded": {
            "total_s": guarded_s,
            "per_event_ns": guarded_s / events * 1e9,
        },
    }

    batching_ns = doc["channels"]["batching"]["per_event_ns"]
    drop_ns = doc["channels"]["batching_drop"]["per_event_ns"]
    async_ns = doc["channels"]["async"]["per_event_ns"]
    doc["derived"] = {
        # Speedup of the batched pipeline over the per-event queue
        # (default lossless policy, and the bare-append drop policy).
        "batching_vs_async": async_ns / batching_ns,
        "batching_drop_vs_async": async_ns / drop_ns,
        # Machine-normalized cost multiples — the CI-gated metrics.
        "batching_vs_plain": batching_ns / doc["plain_append_ns"],
        "remote_vs_plain": doc["channels"]["remote"]["per_event_ns"]
        / doc["plain_append_ns"],
        "journal_vs_plain": doc["channels"]["remote_journal"]["per_event_ns"]
        / doc["plain_append_ns"],
        "record_batching_vs_plain": doc["recording"]["batching"]["per_event_ns"]
        / doc["plain_append_ns"],
        # Firewall cost, gated: full guarded tracked-append vs a bare
        # append — and, informational, vs the same path unguarded.
        "guard_vs_plain": doc["structures"]["tracked_append_guarded"]["per_event_ns"]
        / doc["plain_append_ns"],
        "guard_overhead": guarded_s / unguarded_s,
    }
    return doc


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--events", type=int, default=100_000)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("-o", "--output", default=None, help="write JSON here")
    args = parser.parse_args(argv)

    doc = run_overhead_benchmark(events=args.events, repeats=args.repeats)
    text = json.dumps(doc, indent=2, sort_keys=True)
    if args.output:
        Path(args.output).write_text(text + "\n", encoding="utf-8")
        print(f"overhead benchmark written to {args.output}")
    else:
        print(text)
    derived = doc["derived"]
    print(
        f"batching: {doc['channels']['batching']['per_event_ns']:.0f} ns/event "
        f"({derived['batching_vs_plain']:.1f}x a plain append; "
        f"{derived['batching_vs_async']:.1f}x faster than async, "
        f"{derived['batching_drop_vs_async']:.1f}x with the drop policy); "
        f"remote: {doc['channels']['remote']['per_event_ns']:.0f} ns/event "
        f"({derived['remote_vs_plain']:.1f}x a plain append; "
        f"{derived['journal_vs_plain']:.1f}x journaled); "
        f"guard: {derived['guard_vs_plain']:.1f}x a plain append "
        f"({derived['guard_overhead']:.2f}x the unguarded tracked append)",
        file=sys.stderr,
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
