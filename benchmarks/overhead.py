"""Back-compat shim: the overhead benchmark now lives in ``repro.bench``.

The measurement core moved into the package so the CLI (``dsspy
bench``), the CI perf-ratchet, and this script share one
implementation.  Existing invocations keep working::

    PYTHONPATH=src python benchmarks/overhead.py --events 100000 -o overhead.json

New capabilities (``--check``, ``--json``, ``--append-trajectory``)
are documented in :mod:`repro.bench`.
"""

from __future__ import annotations

from repro.bench import (  # noqa: F401  (re-exported for callers of the old module)
    GATED_METRICS,
    SCHEMA_VERSION,
    check,
    main,
    run_overhead_benchmark,
)

if __name__ == "__main__":
    raise SystemExit(main())
