"""Pipeline scaling: throughput vs profile size.

Characterizes how recording, assembly, pattern detection and the
use-case engine scale with event count — the whole analysis must stay
near-linear for DSspy's "within several minutes" claim (§I) to hold on
realistic captures.
"""

from __future__ import annotations

import time

import pytest

from repro.events import AccessKind, EventCollector, OperationKind, StructureKind
from repro.patterns import PatternDetector
from repro.usecases import UseCaseEngine


def build_profile(n_events: int):
    """Fill/scan/clear cycles totalling ~n_events, collector-direct."""
    collector = EventCollector()
    iid = collector.register_instance(StructureKind.LIST)
    batch = 1_000
    produced = 0
    while produced < n_events:
        size = 0
        for i in range(batch):
            size += 1
            collector.record(iid, OperationKind.INSERT, AccessKind.WRITE, i, size)
        for i in range(batch):
            collector.record(iid, OperationKind.READ, AccessKind.READ, i, size)
        collector.record(iid, OperationKind.CLEAR, AccessKind.WRITE, None, 0)
        produced += 2 * batch + 1
    return collector.finish()[iid]


SIZES = (10_000, 40_000, 160_000)


@pytest.fixture(scope="module")
def profiles():
    return {n: build_profile(n) for n in SIZES}


def _scaling_exponent(points: list[tuple[int, float]]) -> float:
    """Log-log slope between the smallest and largest measurement."""
    import math

    (n0, t0), (n1, t1) = points[0], points[-1]
    return math.log(t1 / t0) / math.log(n1 / n0)


def test_detector_scales_linearly(benchmark, profiles, results_dir):
    detector = PatternDetector()

    def measure():
        rows = []
        for n in SIZES:
            start = time.perf_counter()
            detector.detect(profiles[n])
            rows.append((n, time.perf_counter() - start))
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    from .conftest import save_result

    save_result(
        results_dir,
        "scaling_detector.txt",
        "\n".join(f"{n:>8} events {t * 1e3:>8.1f} ms" for n, t in rows),
    )
    exponent = _scaling_exponent(rows)
    assert exponent < 1.4, rows  # near-linear (log-log slope ~1)


def test_engine_scales_linearly(profiles, results_dir):
    engine = UseCaseEngine()
    rows = []
    for n in SIZES:
        start = time.perf_counter()
        engine.analyze_profile(profiles[n])
        rows.append((n, time.perf_counter() - start))
    from .conftest import save_result

    save_result(
        results_dir,
        "scaling_engine.txt",
        "\n".join(f"{n:>8} events {t * 1e3:>8.1f} ms" for n, t in rows),
    )
    assert _scaling_exponent(rows) < 1.4, rows


def test_recording_throughput(benchmark):
    """Raw recording rate (events/second) for the Table IV slowdown
    discussion; asserted above a floor so regressions surface."""
    n = 50_000

    def record():
        collector = EventCollector()
        iid = collector.register_instance(StructureKind.LIST)
        for i in range(n):
            collector.record(iid, OperationKind.READ, AccessKind.READ, i % 100, 100)
        return collector

    collector = benchmark(record)
    assert collector.event_count == n
