"""Microbenchmarks: the cost of the pieces.

Not a paper table — these quantify the substrate itself: per-event
recording overhead (the source of Table IV's slowdown column), channel
throughput, detector and engine throughput, and the simulated machine.
pytest-benchmark runs these with many rounds, so they are the one place
timings are statistically meaningful.
"""

from __future__ import annotations

import pytest

from repro.events import (
    AccessKind,
    EventCollector,
    OperationKind,
    StructureKind,
    collecting,
)
from repro.parallel import MachineConfig, SimulatedMachine
from repro.patterns import PatternDetector
from repro.structures import TrackedList
from repro.usecases import UseCaseEngine

N = 5_000


class TestRecordingCosts:
    def test_plain_list_append_baseline(self, benchmark):
        def run():
            xs = []
            for i in range(N):
                xs.append(i)
            return xs

        assert len(benchmark(run)) == N

    def test_tracked_list_append(self, benchmark):
        def run():
            with collecting():
                xs = TrackedList()
                for i in range(N):
                    xs.append(i)
            return xs

        assert len(benchmark(run)) == N

    def test_tracked_list_read(self, benchmark):
        with collecting():
            xs = TrackedList(range(N))

            def run():
                total = 0
                for i in range(N):
                    total += xs[i]
                return total

            assert benchmark(run) == sum(range(N))

    def test_collector_record_raw(self, benchmark):
        collector = EventCollector()
        iid = collector.register_instance(StructureKind.LIST)

        def run():
            for i in range(N):
                collector.record(
                    iid, OperationKind.READ, AccessKind.READ, i % 50, 50
                )

        benchmark(run)


class TestAnalysisThroughput:
    @pytest.fixture(scope="class")
    def big_profile(self):
        with collecting():
            xs = TrackedList()
            for round_ in range(10):
                for i in range(2_000):
                    xs.append(i)
                for i in range(len(xs)):
                    _ = xs[i]
                xs.clear()
            return xs.profile()

    def test_detector_throughput(self, benchmark, big_profile):
        detector = PatternDetector()
        analysis = benchmark(lambda: detector.detect(big_profile))
        assert len(analysis.patterns) == 20

    def test_engine_throughput(self, benchmark, big_profile):
        engine = UseCaseEngine()
        cases = benchmark(lambda: engine.analyze_profile(big_profile))
        assert cases  # LI fires

    def test_vectorized_views(self, benchmark, big_profile):
        def run():
            big_profile._arrays = None  # force rebuild
            return big_profile.positions.sum()

        benchmark(run)


class TestMachineModelCost:
    def test_makespan_large(self, benchmark):
        machine = SimulatedMachine(MachineConfig(cores=8))
        costs = [float((i * 37) % 1000 + 1) for i in range(2_000)]
        result = benchmark(lambda: machine.makespan(costs))
        assert result > 0
