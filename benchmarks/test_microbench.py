"""Microbenchmarks: the cost of the pieces.

Not a paper table — these quantify the substrate itself: per-event
recording overhead (the source of Table IV's slowdown column), channel
throughput, detector and engine throughput, and the simulated machine.
pytest-benchmark runs these with many rounds, so they are the one place
timings are statistically meaningful.
"""

from __future__ import annotations

import pytest

from repro.events import (
    AccessKind,
    EventCollector,
    OperationKind,
    StructureKind,
    collecting,
)
from repro.parallel import MachineConfig, SimulatedMachine
from repro.patterns import PatternDetector
from repro.structures import TrackedList
from repro.usecases import UseCaseEngine

N = 5_000


class TestRecordingCosts:
    def test_plain_list_append_baseline(self, benchmark):
        def run():
            xs = []
            for i in range(N):
                xs.append(i)
            return xs

        assert len(benchmark(run)) == N

    def test_tracked_list_append(self, benchmark):
        def run():
            with collecting():
                xs = TrackedList()
                for i in range(N):
                    xs.append(i)
            return xs

        assert len(benchmark(run)) == N

    def test_tracked_list_read(self, benchmark):
        with collecting():
            xs = TrackedList(range(N))

            def run():
                total = 0
                for i in range(N):
                    total += xs[i]
                return total

            assert benchmark(run) == sum(range(N))

    def test_collector_record_raw(self, benchmark):
        collector = EventCollector()
        iid = collector.register_instance(StructureKind.LIST)

        def run():
            for i in range(N):
                collector.record(
                    iid, OperationKind.READ, AccessKind.READ, i % 50, 50
                )

        benchmark(run)


class TestAnalysisThroughput:
    @pytest.fixture(scope="class")
    def big_profile(self):
        with collecting():
            xs = TrackedList()
            for round_ in range(10):
                for i in range(2_000):
                    xs.append(i)
                for i in range(len(xs)):
                    _ = xs[i]
                xs.clear()
            return xs.profile()

    def test_detector_throughput(self, benchmark, big_profile):
        detector = PatternDetector()
        analysis = benchmark(lambda: detector.detect(big_profile))
        assert len(analysis.patterns) == 20

    def test_engine_throughput(self, benchmark, big_profile):
        engine = UseCaseEngine()
        cases = benchmark(lambda: engine.analyze_profile(big_profile))
        assert cases  # LI fires

    def test_vectorized_views(self, benchmark, big_profile):
        def run():
            big_profile._arrays = None  # force rebuild
            return big_profile.positions.sum()

        benchmark(run)


class TestMachineModelCost:
    def test_makespan_large(self, benchmark):
        machine = SimulatedMachine(MachineConfig(cores=8))
        costs = [float((i * 37) % 1000 + 1) for i in range(2_000)]
        result = benchmark(lambda: machine.makespan(costs))
        assert result > 0


class TestOverheadBudget:
    """The 100k-event overhead benchmark that feeds the CI gate.

    One real run of :func:`benchmarks.overhead.run_overhead_benchmark`,
    shared by all assertions; the JSON document is saved next to the
    other benchmark artifacts so a CI job can upload and gate on it.
    """

    @pytest.fixture(scope="class")
    def overhead_doc(self):
        from benchmarks.overhead import run_overhead_benchmark

        return run_overhead_benchmark(events=100_000, repeats=3)

    def test_doc_saved_for_ci_gate(self, overhead_doc, results_dir):
        import json

        from benchmarks.conftest import save_result

        save_result(
            results_dir, "overhead.json", json.dumps(overhead_doc, indent=2)
        )
        assert overhead_doc["schema"] == 2
        assert overhead_doc["events"] == 100_000

    def test_batching_beats_async_recording(self, overhead_doc):
        derived = overhead_doc["derived"]
        # Acceptance bar: the drop-policy fast path (bare list.append
        # bound method) must be >=3x cheaper per event than AsyncChannel
        # on the 100k-event workload; the block-policy path pays a
        # closure call for backpressure accounting, so its bound is
        # looser but still well clear of noise.
        assert derived["batching_drop_vs_async"] >= 3.0
        assert derived["batching_vs_async"] >= 1.8

    def test_batching_is_near_plain_append(self, overhead_doc):
        # The machine-normalized metric the CI gate tracks: batched
        # posting costs a small constant factor over a plain
        # list.append.  Generous bound — the checked-in baseline is
        # ~3x; 8x means the fast path grew real per-event work.
        assert overhead_doc["derived"]["batching_vs_plain"] < 8.0

    def test_sampling_stays_on_budget(self, overhead_doc):
        recording = overhead_doc["recording"]
        # Sampling's payoff is the 90% cut in downstream volume
        # (materialization, analysis, spill, memory), not the record
        # call itself: admit() costs about what the skipped batched
        # post would have.  Guard that the admit check never becomes a
        # per-event regression of its own.
        full = recording["batching"]["per_event_ns"]
        assert recording["batching_decimate10"]["per_event_ns"] <= full * 1.5
        assert recording["batching_burst1000_10"]["per_event_ns"] <= full * 1.5
