"""Table VII — related-work capability matrix (qualitative).

A static table in the paper; here we render it and assert its shape
claims: this work is the only approach combining access collection,
parallel-potential detection and use-case deduction.
"""

from __future__ import annotations

from repro.eval import TABLE7_MATRIX, render_table7

from .conftest import save_result


def test_table7_render(benchmark, results_dir):
    text = benchmark(render_table7)
    save_result(results_dir, "table7.txt", text)
    assert "This work" in text
    assert "Capability" in text


def test_table7_this_work_unique_on_use_cases():
    row = TABLE7_MATRIX["Deduction of use cases"]
    assert row["This work"] == "+"
    assert all(v == "-" for k, v in row.items() if k != "This work")


def test_table7_this_work_detects_parallel_potential():
    row = TABLE7_MATRIX["Detection of parallel potential"]
    assert row["This work"] == "+"
    positives = [k for k, v in row.items() if v == "+"]
    assert set(positives) == {
        "Data Structure Optimization",
        "Automatic Parallelization",
        "This work",
    }


def test_table7_consistent_columns():
    approaches = set(next(iter(TABLE7_MATRIX.values())))
    for capability, row in TABLE7_MATRIX.items():
        assert set(row) == approaches, capability
        assert all(v in "+o-" for v in row.values())
