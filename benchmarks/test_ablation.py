"""Ablations beyond the paper: thresholds, machine model, channels.

The paper tuned its thresholds on 23 programs and fixed one machine;
these benches sweep both to show (a) the published thresholds sit on a
stable plateau of the detection response, and (b) the speedup
conclusions are robust across the machine-model parameters.
"""

from __future__ import annotations

import dataclasses
import time

import pytest

from repro.events import (
    AccessKind,
    AsyncChannel,
    EventCollector,
    OperationKind,
    StructureKind,
    SynchronousChannel,
    collecting,
)
from repro.parallel import MachineConfig, SimulatedMachine
from repro.usecases import Thresholds, UseCaseEngine
from repro.usecases.rules import PARALLEL_RULES
from repro.workloads import GPdotNET, Mandelbrot

from .conftest import save_result

SCALE = 0.2


def _profiles_for(workload, scale=SCALE):
    with collecting() as session:
        workload.run_tracked(scale=scale)
    return session.profiles()


@pytest.fixture(scope="module")
def gpdotnet_profiles():
    return _profiles_for(GPdotNET())


class TestThresholdAblation:
    def test_li_phase_threshold_sweep(self, benchmark, gpdotnet_profiles, results_dir):
        """Use-case count vs the Long-Insert phase threshold.

        GPdotNET's insert phases are either ~110 events (selection) or
        >=350 (population): the published threshold of 100 sits on the
        plateau below both; pushing past the phase sizes drops them.
        """

        def sweep():
            rows = []
            for phase in (10, 50, 100, 200, 500, 2000, 10_000):
                th = dataclasses.replace(Thresholds(), li_long_phase=phase)
                engine = UseCaseEngine(thresholds=th, rules=PARALLEL_RULES)
                report = engine.analyze(gpdotnet_profiles)
                li = sum(
                    1 for u in report.use_cases if u.kind.abbreviation == "LI"
                )
                rows.append((phase, li, len(report.use_cases)))
            return rows

        rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
        save_result(
            results_dir,
            "ablation_li_threshold.txt",
            "phase_threshold li_count total_use_cases\n"
            + "\n".join(f"{p:>8} {li:>3} {total:>3}" for p, li, total in rows),
        )
        counts = dict((p, li) for p, li, _ in rows)
        assert counts[50] == counts[100] == 2  # the plateau
        assert counts[2000] < counts[100]  # threshold bites eventually
        # Detection response is monotone non-increasing in the threshold.
        li_series = [li for _, li, _ in rows]
        assert li_series == sorted(li_series, reverse=True)

    def test_flr_pattern_threshold_sweep(self, gpdotnet_profiles, results_dir):
        rows = []
        for min_patterns in (1, 5, 10, 20, 50, 200):
            th = dataclasses.replace(Thresholds(), flr_min_patterns=min_patterns)
            engine = UseCaseEngine(thresholds=th, rules=PARALLEL_RULES)
            report = engine.analyze(gpdotnet_profiles)
            flr = sum(
                1 for u in report.use_cases if u.kind.abbreviation == "FLR"
            )
            rows.append((min_patterns, flr))
        save_result(
            results_dir,
            "ablation_flr_threshold.txt",
            "min_patterns flr_count\n"
            + "\n".join(f"{p:>8} {f:>3}" for p, f in rows),
        )
        counts = dict(rows)
        assert counts[5] == counts[10] == 3  # the published plateau
        assert counts[200] == 0
        series = [f for _, f in rows]
        assert series == sorted(series, reverse=True)

    def test_insert_fraction_threshold(self, gpdotnet_profiles):
        """The 30% runtime-share knob separates the population (33%
        inserts) from the scan-heavy structures."""
        strict = dataclasses.replace(Thresholds(), li_insert_fraction=0.45)
        engine = UseCaseEngine(thresholds=strict, rules=PARALLEL_RULES)
        report = engine.analyze(gpdotnet_profiles)
        li_labels = {
            u.profile.label
            for u in report.use_cases
            if u.kind.abbreviation == "LI"
        }
        assert "population" not in li_labels  # 33% < 45%


class TestMachineAblation:
    def test_core_count_sweep(self, benchmark, results_dir):
        """Total Mandelbrot speedup vs core count: monotone, saturating
        toward the Amdahl limit of its 9.09% sequential fraction."""
        decomposition = Mandelbrot().decomposition(scale=SCALE)

        def sweep():
            return [
                (cores, decomposition.speedup(SimulatedMachine(MachineConfig(cores=cores))))
                for cores in (1, 2, 4, 8, 16, 32, 64)
            ]

        rows = benchmark(sweep)
        save_result(
            results_dir,
            "ablation_cores.txt",
            "cores speedup\n" + "\n".join(f"{c:>4} {s:.3f}" for c, s in rows),
        )
        speedups = [s for _, s in rows]
        assert speedups == sorted(speedups)
        assert speedups[0] == pytest.approx(1.0, abs=0.01)
        limit = 1 / decomposition.sequential_fraction
        assert speedups[-1] < limit

    def test_overhead_sweep(self, results_dir):
        """Fork/join overhead decides where parallelization stops
        paying: small regions flip from winner to loser as it grows."""
        small_work, big_work = 500.0, 500_000.0
        rows = []
        for overhead in (0, 50, 200, 1000, 5000, 50_000):
            machine = SimulatedMachine(
                MachineConfig(cores=8, fork_join_overhead=overhead)
            )
            rows.append(
                (
                    overhead,
                    machine.data_parallel_speedup(small_work),
                    machine.data_parallel_speedup(big_work),
                )
            )
        save_result(
            results_dir,
            "ablation_overhead.txt",
            "overhead small(500) big(500k)\n"
            + "\n".join(f"{o:>7} {s:>10.3f} {b:>10.3f}" for o, s, b in rows),
        )
        by_overhead = {o: (s, b) for o, s, b in rows}
        assert by_overhead[0][0] > 1.0  # free forks: small region pays
        assert by_overhead[5000][0] < 1.0  # expensive forks: it doesn't
        assert by_overhead[5000][1] > 4.0  # big region still pays


class TestChannelAblation:
    def _drive(self, channel_factory, n=20_000) -> float:
        collector = EventCollector(channel=channel_factory())
        iid = collector.register_instance(StructureKind.LIST)
        start = time.perf_counter()
        for i in range(n):
            collector.record(iid, OperationKind.INSERT, AccessKind.WRITE, i, i + 1)
        elapsed = time.perf_counter() - start
        assert len(collector.finish()[iid]) == n
        return elapsed

    def test_sync_vs_async_recording(self, benchmark, results_dir):
        """The paper argues for asynchronous collection to decouple the
        producer; on one core the sync path has lower recording cost,
        and both must deliver every event."""
        sync = self._drive(SynchronousChannel)
        async_ = benchmark.pedantic(
            lambda: self._drive(AsyncChannel), rounds=1, iterations=1
        )
        save_result(
            results_dir,
            "ablation_channel.txt",
            f"sync record {sync * 1e3:.1f} ms; async record {async_ * 1e3:.1f} ms "
            f"for 20k events (single-core host)",
        )
        assert sync > 0 and async_ > 0


class TestContentionAblation:
    def test_contention_closes_the_speedup_gap(self, benchmark, results_dir):
        """DESIGN.md's missing ingredient, quantified: sweeping memory
        intensity moves the evaluation workloads' simulated total
        speedups from their Amdahl-ish ceilings down into the paper's
        measured 1.2-3.0 band (the AMD FX's shared memory interface)."""
        from repro.parallel import (
            ContendedMachine,
            ContentionConfig,
            MachineConfig,
        )
        from repro.workloads import EVALUATION_WORKLOADS

        def sweep():
            rows = []
            for intensity in (0.0, 0.2, 0.45, 0.7):
                machine = ContendedMachine(
                    ContentionConfig(
                        machine=MachineConfig(cores=8),
                        memory_intensity=intensity,
                        memory_lanes=2,
                    )
                )
                speedups = {
                    w.name: w.decomposition(scale=0.3).speedup(machine)
                    for w in EVALUATION_WORKLOADS
                }
                rows.append((intensity, speedups))
            return rows

        rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
        lines = ["intensity " + " ".join(f"{w.name[:9]:>10}" for w in EVALUATION_WORKLOADS)]
        for intensity, speedups in rows:
            lines.append(
                f"{intensity:>9.2f} "
                + " ".join(f"{s:>10.2f}" for s in speedups.values())
            )
        save_result(results_dir, "ablation_contention.txt", "\n".join(lines))

        paper = {w.name: w.paper.speedup for w in EVALUATION_WORKLOADS}
        by_intensity = dict(rows)

        def mean_error(speedups):
            return sum(
                abs(speedups[name] - paper[name]) for name in paper
            ) / len(paper)

        assert mean_error(by_intensity[0.45]) < mean_error(by_intensity[0.0])
        # At the tuned point, every workload sits in the paper's band.
        for name, speedup in by_intensity[0.45].items():
            assert 1.0 <= speedup <= 3.5, (name, speedup)
