"""Figure 1 — per-program data structure occurrence.

Checks the figure's structure: 37 programs, per-program Σ matching the
published x-axis labels, the <2% cut-off aggregating rare kinds into a
"Rest" series, and list dominating every large program.
"""

from __future__ import annotations

import pytest

from repro.eval import render_figure1
from repro.events.types import StructureKind
from repro.study import FIG1_PROGRAMS, run_occurrence_study

from .conftest import save_result


@pytest.fixture(scope="module")
def study():
    return run_occurrence_study(loc_scale=0.05)


def test_fig1_series(benchmark, study, results_dir):
    names, series = benchmark(study.figure1_series)
    save_result(results_dir, "figure1.txt", render_figure1(study))

    assert len(names) == 37
    # Major kinds in the published legend (>= 2% share) + Rest.
    assert StructureKind.LIST in series
    assert StructureKind.DICTIONARY in series
    assert StructureKind.ARRAY_LIST in series
    assert StructureKind.STACK in series
    assert StructureKind.QUEUE in series
    assert StructureKind.OTHER in series
    # Rare kinds are folded away, exactly like the paper's 2% cut.
    assert StructureKind.SORTED_LIST not in series
    assert StructureKind.LINKED_LIST not in series

    # Per-program sums reproduce the figure's Σ annotations.
    expected = {p.name: p.instances for p in FIG1_PROGRAMS}
    for i, name in enumerate(names):
        total = sum(series[kind][i] for kind in series)
        assert total == expected[name], name


def test_fig1_rest_total(study):
    _names, series = study.figure1_series()
    # hashSet 38 + sortedList 20 + sortedSet 10 + sortedDict 8 + linked 3.
    assert sum(series[StructureKind.OTHER]) == 79


def test_fig1_list_dominates_big_programs(study):
    names, series = study.figure1_series()
    totals = {p.name: p.instances for p in FIG1_PROGRAMS}
    for i, name in enumerate(names):
        if totals[name] >= 50:
            assert series[StructureKind.LIST][i] > totals[name] * 0.4, name
