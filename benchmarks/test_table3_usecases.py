"""Table III — 66 use cases in the survey programs by category.

Runs the synthesized survey suites through the real use-case engine;
the category totals (LI 49, IQ 3, SAI 1, FS 3, FLR 10) and every
per-program row must reproduce.
"""

from __future__ import annotations

import pytest

from repro.eval import render_table3
from repro.study import TABLE3_TOTALS, TABLE3_TOTAL_USE_CASES, run_usecase_survey
from repro.usecases import UseCaseKind

from .conftest import save_result


@pytest.fixture(scope="module")
def survey():
    return run_usecase_survey()


def test_table3_totals(benchmark, results_dir):
    survey = benchmark.pedantic(run_usecase_survey, rounds=1, iterations=1)
    save_result(results_dir, "table3.txt", render_table3(survey))
    totals = survey.totals()
    assert survey.total_use_cases == TABLE3_TOTAL_USE_CASES
    assert totals[UseCaseKind.LONG_INSERT] == TABLE3_TOTALS["LI"]
    assert totals[UseCaseKind.IMPLEMENT_QUEUE] == TABLE3_TOTALS["IQ"]
    assert totals[UseCaseKind.SORT_AFTER_INSERT] == TABLE3_TOTALS["SAI"]
    assert totals[UseCaseKind.FREQUENT_SEARCH] == TABLE3_TOTALS["FS"]
    assert totals[UseCaseKind.FREQUENT_LONG_READ] == TABLE3_TOTALS["FLR"]


def test_table3_every_row_matches(survey):
    for program in survey.programs:
        assert program.matches_paper, (program.row.name, program.counts)


def test_table3_li_dominates(survey):
    """§VII: Long-Insert and Frequent-Long-Read dominate the survey —
    the paper's caveat about category frequency."""
    totals = survey.totals()
    li_flr = totals[UseCaseKind.LONG_INSERT] + totals[
        UseCaseKind.FREQUENT_LONG_READ
    ]
    assert li_flr / survey.total_use_cases > 0.85
