"""Table IV — the seven-program DSspy evaluation.

Runs the full pipeline (plain baseline, tracked run, use-case
derivation, simulated-transform verdicts) on every workload and checks
every count column against the paper: 104 instances → 24 use cases
(76.92% reduction), 16 true positives (66.67% precision), per-row
matches, a real >1x instrumentation slowdown, and speedup shape.
"""

from __future__ import annotations

import pytest

from repro.eval import evaluate_all, render_table4

from .conftest import save_result

SCALE = 0.5


@pytest.fixture(scope="module")
def summary():
    return evaluate_all(scale=SCALE, repeats=1)


def test_table4_counts(benchmark, results_dir):
    summary = benchmark.pedantic(
        lambda: evaluate_all(scale=SCALE, repeats=1), rounds=1, iterations=1
    )
    save_result(results_dir, "table4.txt", render_table4(summary))

    assert summary.total_instances == 104
    assert summary.total_use_cases == 24
    assert summary.total_true_positives == 16
    assert summary.total_reduction == pytest.approx(0.7692, abs=0.0001)
    assert summary.precision == pytest.approx(16 / 24, abs=1e-9)


def test_table4_per_row_counts(summary):
    for row in summary.rows:
        assert row.matches_paper_counts(), row.name
        paper = row.workload.paper
        assert row.search_space_reduction == pytest.approx(
            paper.reduction / 100.0, abs=0.0001
        ), row.name


def test_table4_slowdown_is_real(summary):
    """Instrumentation costs real time on every workload; the paper's
    point that the slowdown is material (avg 47.13x there) but one-off."""
    for row in summary.rows:
        assert row.slowdown > 1.5, (row.name, row.slowdown)
    assert summary.mean_slowdown > 3.0


def test_table4_speedup_shape(summary):
    """Shape, not absolute numbers: every program gains (>1), CPU
    Benchmarks gains least (the 94% sequential program), and the mean
    sits in the paper's 2x regime."""
    by_name = {row.name: row for row in summary.rows}
    speedups = {name: row.program_speedup for name, row in by_name.items()}
    assert all(s > 1.0 for s in speedups.values())
    assert min(speedups, key=speedups.get) == "CPU Benchmarks"
    assert 1.5 < summary.mean_speedup < 5.0


def test_table4_workload_results_are_correct(summary):
    """The tracked runs computed real answers (spot checks)."""
    from repro.workloads import workload_by_name

    mandelbrot = workload_by_name("Mandelbrot")
    result = mandelbrot.run_plain(scale=0.1)
    assert result.pixel(0, 0) < 5  # corner escapes immediately
    assert sum(result.histogram) == result.width * result.height
