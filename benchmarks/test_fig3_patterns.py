"""Figure 3 — Insert-Back + Read-Forward regularity.

The paper's Figure 3 profile repeatedly appends a batch, reads it front
to end, and clears — the pattern pair behind the Long-Insert and
Frequent-Long-Read use cases.
"""

from __future__ import annotations

import pytest

from repro.events import collecting
from repro.patterns import PatternType, RegularityClassifier, detect
from repro.usecases import UseCaseEngine, UseCaseKind
from repro.viz import profile_to_svg, render_patterns, render_profile
from repro.workloads import gen_insert_back_read_forward

from .conftest import save_result

ROUNDS = 12
ITEMS = 150


@pytest.fixture(scope="module")
def profile():
    with collecting():
        lst = gen_insert_back_read_forward(items=ITEMS, rounds=ROUNDS)
        return lst.profile()


def test_fig3_pattern_pair(benchmark, profile, results_dir):
    analysis = benchmark(lambda: detect(profile))
    save_result(
        results_dir,
        "figure3.txt",
        render_profile(profile, width=70, height=12)
        + "\n\n"
        + render_patterns(analysis),
    )
    save_result(results_dir, "figure3.svg", profile_to_svg(profile))

    assert analysis.count(PatternType.INSERT_BACK) == ROUNDS
    assert analysis.count(PatternType.READ_FORWARD) == ROUNDS
    # Insert-Back always appends at the end: every insert pattern
    # finishes at the (then-)last slot.
    for pattern in analysis.by_type(PatternType.INSERT_BACK):
        assert pattern.last_position == ITEMS - 1
    # Every read pattern covers the full list (the paper's "reads until
    # the last element, then the instance is cleared").
    for pattern in analysis.by_type(PatternType.READ_FORWARD):
        assert pattern.coverage == pytest.approx(1.0)


def test_fig3_contains_regularity(profile):
    verdict = RegularityClassifier().classify(profile)
    assert verdict.is_regular
    assert PatternType.INSERT_BACK in verdict.recurring_types
    assert PatternType.READ_FORWARD in verdict.recurring_types


def test_fig3_yields_li_and_flr():
    """§III-B: 'This leads to the two use cases Long-Insert and
    Frequent-Long-Read.'  The published profile repeats its read
    patterns 'several hundreds times'; with the paper's ≥50%-reads
    threshold that requires more scanning than inserting, so the
    use-case check uses the scan-twice variant of the Figure 3 shape.
    """
    from repro.workloads.generators import gen_insert_and_scan

    with collecting():
        profile = gen_insert_and_scan(items=ITEMS, rounds=ROUNDS).profile()
    kinds = {u.kind for u in UseCaseEngine().analyze_profile(profile)}
    assert UseCaseKind.LONG_INSERT in kinds
    assert UseCaseKind.FREQUENT_LONG_READ in kinds
