"""Figure 2 — the runtime profile of the paper's example snippet.

The snippet fills a capacity-10 list front to back, then reads it in
reverse.  The published profile shows: ten insert (write) bars at
ascending positions, ten read bars at descending positions, and a flat
grey size bar at 10 throughout (capacity semantics).
"""

from __future__ import annotations

import pytest

from repro.events import OperationKind, collecting
from repro.patterns import PatternType, detect
from repro.viz import profile_to_svg, render_profile
from repro.workloads import gen_fig2_snippet

from .conftest import save_result


@pytest.fixture(scope="module")
def profile():
    with collecting():
        lst = gen_fig2_snippet()
        return lst.profile()


def test_fig2_profile_shape(benchmark, profile, results_dir):
    def capture():
        with collecting():
            return gen_fig2_snippet().profile()

    measured = benchmark(capture)
    save_result(
        results_dir,
        "figure2.txt",
        render_profile(measured, width=40, height=10),
    )
    save_result(results_dir, "figure2.svg", profile_to_svg(measured))

    inserts = [e for e in measured if e.op is OperationKind.INSERT]
    reads = [e for e in measured if e.op is OperationKind.READ]
    assert [e.position for e in inserts] == list(range(10))
    assert [e.position for e in reads] == list(range(9, -1, -1))


def test_fig2_flat_size_bar(profile):
    """The grey bar: size stays 10 while Add() fills the pre-sized list."""
    sizes = [e.size for e in profile if e.op is not OperationKind.INIT]
    assert sizes == [10] * 20


def test_fig2_two_patterns(profile):
    """The paper: 'the runtime profile contains two separate access
    patterns' — Insert-Back (the fill) and Read-Backward (the dump)."""
    analysis = detect(profile)
    assert analysis.count(PatternType.INSERT_BACK) == 1
    assert analysis.count(PatternType.READ_BACKWARD) == 1
    assert len(analysis.patterns) == 2
