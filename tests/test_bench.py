"""The perf ratchet itself: ``repro.bench.check`` must catch seeded
regressions, hard-ceiling breaks, and schema mismatches — and the
committed baseline must actually satisfy the acceptance bounds it
exists to defend.  (Full benchmark runs are CI's job, not this
suite's; everything here works on synthetic or committed documents.)
"""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.bench import (
    DEFAULT_BASELINE,
    GATED_METRICS,
    SCHEMA_VERSION,
    append_trajectory,
    check,
)

REPO = Path(__file__).resolve().parent.parent


def _doc(**overrides) -> dict:
    """A synthetic benchmark document with every gated metric present."""
    derived = {m: 10.0 for m in GATED_METRICS}
    derived.update(overrides.pop("derived", {}))
    doc = {
        "schema": SCHEMA_VERSION,
        "events": 1000,
        "python": "3.11",
        "record_kernel": "python",
        "plain_append_ns": 25.0,
        "derived": derived,
        "gates": {},
    }
    doc.update(overrides)
    return doc


class TestCheck:
    def test_identical_documents_pass(self):
        base = _doc()
        failures, report = check(_doc(), base)
        assert failures == []
        assert len(report) == len(GATED_METRICS)

    def test_within_tolerance_passes(self):
        failures, _ = check(
            _doc(derived={"remote_vs_plain": 10.9}), _doc(), max_regression=0.10
        )
        assert failures == []

    def test_seeded_ten_percent_regression_fails(self):
        # The acceptance scenario: one gated metric 11% over baseline
        # with a 10% allowance must fail, and name the metric.
        failures, _ = check(
            _doc(derived={"tracked_batching_vs_plain": 11.1}),
            _doc(),
            max_regression=0.10,
        )
        assert len(failures) == 1
        assert "tracked_batching_vs_plain" in failures[0]

    def test_kernel_mismatch_reports_loudly_but_never_fails(self):
        # A minimal runner without the compiled _fastrecord extension
        # measures pure-python ratios an order of magnitude above the
        # C-kernel baseline; that must surface as a NOT ENFORCED note,
        # not a hard failure that masks the job's real results.
        current = _doc(derived={m: 300.0 for m in GATED_METRICS})
        base = _doc(record_kernel="c", gates={"tracked_batching_vs_plain": 5.0})
        failures, report = check(current, base, max_regression=0.10)
        assert failures == []
        assert any("NOT ENFORCED" in line for line in report)
        assert any("record kernel mismatch" in line for line in report)

    def test_matching_kernels_still_enforce(self):
        # The mismatch escape hatch must not weaken same-kernel runs.
        base = _doc(gates={"tracked_batching_vs_plain": 5.0})
        failures, _ = check(
            _doc(derived={"tracked_batching_vs_plain": 30.0}), base
        )
        assert failures  # regression and ceiling both violated

    def test_improvement_never_fails(self):
        failures, _ = check(_doc(derived={m: 1.0 for m in GATED_METRICS}), _doc())
        assert failures == []

    def test_hard_ceiling_from_baseline_gates(self):
        base = _doc(gates={"tracked_batching_vs_plain": 5.0})
        current = _doc(derived={"tracked_batching_vs_plain": 5.2})
        failures, report = check(current, base, max_regression=1000.0)
        # Relative bound is satisfied (huge allowance); the absolute
        # ceiling embedded in the baseline still trips.
        assert len(failures) == 1
        assert "ceiling" in failures[0]
        assert any("hard ceiling" in line for line in report)

    def test_hard_ceiling_at_bound_passes(self):
        base = _doc(gates={"tracked_batching_vs_plain": 5.0})
        failures, _ = check(_doc(derived={"tracked_batching_vs_plain": 5.0}), base)
        assert failures == []

    def test_metric_missing_from_current_raises(self):
        current = _doc()
        del current["derived"]["shm_vs_plain"]
        with pytest.raises(ValueError, match="shm_vs_plain"):
            check(current, _doc())

    def test_metric_missing_from_baseline_raises(self):
        base = _doc()
        del base["derived"]["journal_vs_plain"]
        with pytest.raises(ValueError, match="journal_vs_plain"):
            check(_doc(), base)

    def test_gated_metric_absent_from_both_is_skipped(self):
        # Forward compatibility: a metric this code gates but neither
        # document measured (e.g. both docs predate it) is not an error.
        current, base = _doc(), _doc()
        del current["derived"]["guard_vs_plain"]
        del base["derived"]["guard_vs_plain"]
        failures, report = check(current, base)
        assert failures == []
        assert any("skipped" in line for line in report)

    def test_absolute_gate_on_unmeasured_metric_raises(self):
        base = _doc(gates={"no_such_metric": 2.0})
        with pytest.raises(ValueError, match="no_such_metric"):
            check(_doc(), base)


class TestCommittedBaseline:
    """The checked-in baseline must defend the ISSUE acceptance bounds."""

    @pytest.fixture(scope="class")
    def baseline(self):
        return json.loads((REPO / DEFAULT_BASELINE).read_text(encoding="utf-8"))

    def test_schema_and_metrics_present(self, baseline):
        assert baseline["schema"] == SCHEMA_VERSION
        for metric in GATED_METRICS:
            assert metric in baseline["derived"], metric

    def test_embeds_hard_ceilings(self, baseline):
        assert baseline["gates"].get("tracked_batching_vs_plain") == 5.0

    def test_tracked_batching_within_ceiling(self, baseline):
        assert baseline["derived"]["tracked_batching_vs_plain"] <= 5.0

    def test_shm_beats_socket_transport(self, baseline):
        derived = baseline["derived"]
        assert derived["shm_vs_plain"] < derived["remote_vs_plain"]

    def test_baseline_passes_against_itself(self, baseline):
        failures, _ = check(baseline, baseline)
        assert failures == []


class TestTrajectory:
    def test_header_written_once_then_appends(self, tmp_path):
        csv = tmp_path / "trajectory.csv"
        append_trajectory(_doc(), csv, commit="abcdef0123456789")
        append_trajectory(_doc(), csv, commit="fedcba9876543210")
        lines = csv.read_text(encoding="utf-8").splitlines()
        assert len(lines) == 3
        assert lines[0].startswith("timestamp,commit,schema,")
        assert lines[1].split(",")[1] == "abcdef012345"  # 12-char short sha
        assert lines[2].split(",")[1] == "fedcba987654"

    def test_row_carries_every_gated_metric(self, tmp_path):
        csv = tmp_path / "t.csv"
        line = append_trajectory(_doc(), csv, commit="c" * 40)
        header = csv.read_text(encoding="utf-8").splitlines()[0].split(",")
        values = line.split(",")
        assert len(values) == len(header)
        for metric in GATED_METRICS:
            assert values[header.index(metric)] == "10.000"

    def test_committed_trajectory_parses(self):
        lines = (
            (REPO / "benchmarks" / "results" / "trajectory.csv")
            .read_text(encoding="utf-8")
            .splitlines()
        )
        header = lines[0].split(",")
        assert header[0] == "timestamp"
        assert len(lines) >= 2
        for line in lines[1:]:
            assert len(line.split(",")) == len(header)


class TestCliCheckMode:
    """``dsspy bench --check`` is the CI ratchet entry point: prove its
    exit codes end to end with --input (no measurement)."""

    def _run(self, *argv):
        return subprocess.run(
            [sys.executable, "-m", "repro.cli", "bench", *argv],
            capture_output=True,
            text=True,
            cwd=REPO,
            env={"PYTHONPATH": str(REPO / "src"), "PATH": "/usr/bin:/bin"},
        )

    def test_check_fails_on_seeded_regression(self, tmp_path):
        baseline = _doc()
        current = _doc(derived={"fastpath_vs_plain": 12.0})  # +20%
        (tmp_path / "base.json").write_text(json.dumps(baseline))
        (tmp_path / "cur.json").write_text(json.dumps(current))
        proc = self._run(
            "--input", str(tmp_path / "cur.json"),
            "--check", "--baseline", str(tmp_path / "base.json"),
            "--max-regression", "0.10",
        )
        assert proc.returncode == 1
        assert "PERF RATCHET: FAILED" in proc.stdout
        assert "fastpath_vs_plain" in proc.stdout

    def test_check_passes_within_tolerance(self, tmp_path):
        (tmp_path / "base.json").write_text(json.dumps(_doc()))
        (tmp_path / "cur.json").write_text(
            json.dumps(_doc(derived={"fastpath_vs_plain": 10.5}))
        )
        proc = self._run(
            "--input", str(tmp_path / "cur.json"),
            "--check", "--baseline", str(tmp_path / "base.json"),
        )
        assert proc.returncode == 0
        assert "PERF RATCHET: passed" in proc.stdout

    def test_schema_mismatch_is_exit_two(self, tmp_path):
        broken = _doc()
        del broken["derived"]["shm_vs_plain"]
        (tmp_path / "base.json").write_text(json.dumps(_doc()))
        (tmp_path / "cur.json").write_text(json.dumps(broken))
        proc = self._run(
            "--input", str(tmp_path / "cur.json"),
            "--check", "--baseline", str(tmp_path / "base.json"),
        )
        assert proc.returncode == 2
