"""Unit tests for the automatic Long-Insert source transform."""

from __future__ import annotations

import textwrap

from repro.instrument import suggest_transforms, transform_source


def run_module(source: str, entry: str, *args):
    namespace: dict = {}
    exec(compile(source, "<test>", "exec"), namespace)
    return namespace[entry](*args)


class TestFillLoopTransform:
    def test_simple_fill_loop_rewritten(self):
        source = textwrap.dedent(
            """
            def build(n):
                xs = []
                for i in range(n):
                    xs.append(i * i)
                return xs
            """
        )
        out, report = transform_source(source)
        assert report.count == 1
        assert "parallel_fill" in out
        # Semantics preserved, order included.
        assert run_module(out, "build", 50) == [i * i for i in range(50)]

    def test_expression_with_free_variables(self):
        source = textwrap.dedent(
            """
            def build(n, offset):
                xs = []
                for k in range(n):
                    xs.append(k + offset)
                return xs
            """
        )
        out, report = transform_source(source)
        assert report.count == 1
        assert run_module(out, "build", 10, 100) == list(range(100, 110))

    def test_plain_function_calls_allowed(self):
        source = textwrap.dedent(
            """
            def square(v):
                return v * v

            def build(n):
                xs = []
                for i in range(n):
                    xs.append(square(i))
                return xs
            """
        )
        out, report = transform_source(source)
        assert report.count == 1
        assert run_module(out, "build", 8) == [i * i for i in range(8)]

    def test_self_referencing_body_refused(self):
        source = textwrap.dedent(
            """
            def build(n):
                xs = [1]
                for i in range(n):
                    xs.append(xs[-1] * 2)
                return xs
            """
        )
        out, report = transform_source(source)
        assert report.count == 0
        assert len(report.skipped) == 1
        assert "order-dependent" in report.skipped[0]

    def test_method_call_body_refused(self):
        source = textwrap.dedent(
            """
            def build(n, rng):
                xs = []
                for i in range(n):
                    xs.append(rng.random())
                return xs
            """
        )
        _, report = transform_source(source)
        assert report.count == 0
        assert "stateful" in report.skipped[0]

    def test_multi_statement_body_untouched(self):
        source = textwrap.dedent(
            """
            def build(n):
                xs = []
                total = 0
                for i in range(n):
                    total += i
                    xs.append(i)
                return xs, total
            """
        )
        out, report = transform_source(source)
        assert report.count == 0
        assert "parallel_fill" not in out

    def test_range_with_start_stop_untouched(self):
        source = "for i in range(2, 10):\n    xs.append(i)\n"
        _, report = transform_source("xs = []\n" + source)
        assert report.count == 0

    def test_no_header_when_nothing_rewritten(self):
        out, report = transform_source("x = 1\n")
        assert report.count == 0
        assert "ParallelExecutor" not in out

    def test_dotnet_add_spelling(self):
        source = textwrap.dedent(
            """
            def build(n, xs):
                for i in range(n):
                    xs.add(i)
                return xs
            """
        )
        _, report = transform_source(source)
        assert report.count == 1

    def test_suggest_transforms(self):
        source = textwrap.dedent(
            """
            def build(n):
                xs = []
                ys = [1]
                for i in range(n):
                    xs.append(i)
                for i in range(n):
                    ys.append(ys[-1] + i)
                return xs, ys
            """
        )
        suggestions = suggest_transforms(source)
        assert len(suggestions) == 2
        assert any("parallelized fill loop" in s for s in suggestions)
        assert any(s.startswith("SKIPPED") for s in suggestions)

    def test_nested_loops(self):
        source = textwrap.dedent(
            """
            def build(n):
                rows = []
                for r in range(n):
                    rows.append(r * 10)
                cols = []
                for c in range(n):
                    cols.append(c + 1)
                return rows, cols
            """
        )
        out, report = transform_source(source)
        assert report.count == 2
        rows, cols = run_module(out, "build", 5)
        assert rows == [0, 10, 20, 30, 40]
        assert cols == [1, 2, 3, 4, 5]
