"""Unit tests for the use-case rules, engine and report."""

from __future__ import annotations

import pytest

from repro.events import OperationKind, StructureKind, collecting
from repro.structures import TrackedArray, TrackedList, TrackedQueue, TrackedStack
from repro.usecases import (
    PAPER_THRESHOLDS,
    Thresholds,
    UseCaseEngine,
    UseCaseKind,
    format_summary,
    format_table_v,
    rule_for,
)

from .conftest import make_profile

OP = OperationKind


def kinds_found(profiles, thresholds=PAPER_THRESHOLDS):
    engine = UseCaseEngine(thresholds=thresholds)
    report = engine.analyze(profiles if isinstance(profiles, list) else [profiles])
    return {u.kind for u in report.use_cases}


class TestLongInsert:
    def test_fires_on_long_insert_phase(self):
        specs = [(OP.INSERT, i, i + 1) for i in range(200)]
        assert UseCaseKind.LONG_INSERT in kinds_found(make_profile(specs))

    def test_requires_phase_length(self):
        # 30 inserts per phase -- high fraction but short phases.
        specs = []
        for _ in range(5):
            specs += [(OP.INSERT, i, i + 1) for i in range(30)]
            specs.append((OP.CLEAR, None, 0))
        assert UseCaseKind.LONG_INSERT not in kinds_found(make_profile(specs))

    def test_requires_runtime_fraction(self):
        # One long phase diluted by reads: fraction 100/1100 < 30%.
        specs = [(OP.INSERT, i, i + 1) for i in range(100)]
        specs += [(OP.READ, i % 100, 100) for i in range(1000)]
        # Keep the reads irregular so they don't form competing patterns.
        specs = specs[:100] + [
            (OP.READ, (i * 17) % 100, 100) for i in range(1000)
        ]
        assert UseCaseKind.LONG_INSERT not in kinds_found(make_profile(specs))

    def test_insert_front_also_qualifies(self):
        specs = [(OP.INSERT, 0, i + 1) for i in range(150)]
        assert UseCaseKind.LONG_INSERT in kinds_found(make_profile(specs))

    def test_not_on_dictionary(self):
        specs = [(OP.INSERT, i, i + 1) for i in range(200)]
        profile = make_profile(specs, kind=StructureKind.DICTIONARY)
        assert UseCaseKind.LONG_INSERT not in kinds_found(profile)

    def test_evidence_contents(self):
        specs = [(OP.INSERT, i, i + 1) for i in range(200)]
        engine = UseCaseEngine()
        (uc,) = engine.analyze_profile(make_profile(specs))
        assert uc.evidence["longest_phase"] == 200
        assert uc.evidence["insert_fraction"] > 0.9
        assert uc.recommendation.parallel


class TestImplementQueue:
    def _queue_profile(self, n=100):
        with collecting():
            xs = TrackedList()
            for i in range(n):
                xs.append(i)
            while len(xs):
                xs.pop(0)
            return xs.profile()

    def test_fires_on_list_used_as_queue(self):
        assert UseCaseKind.IMPLEMENT_QUEUE in kinds_found(self._queue_profile())

    def test_not_on_stack_usage(self):
        with collecting():
            xs = TrackedList()
            for i in range(100):
                xs.append(i)
            while len(xs):
                xs.pop()
            profile = xs.profile()
        assert UseCaseKind.IMPLEMENT_QUEUE not in kinds_found(profile)

    def test_not_on_actual_queue_structure(self):
        with collecting():
            q = TrackedQueue()
            for i in range(100):
                q.enqueue(i)
            while len(q):
                q.dequeue()
            profile = q.profile()
        assert UseCaseKind.IMPLEMENT_QUEUE not in kinds_found(profile)

    def test_needs_min_ops(self):
        assert UseCaseKind.IMPLEMENT_QUEUE not in kinds_found(
            self._queue_profile(n=5)
        )


class TestSortAfterInsert:
    def test_fires_when_sort_follows_long_insert(self):
        specs = [(OP.INSERT, i, i + 1) for i in range(150)] + [
            (OP.SORT, None, 150)
        ]
        assert UseCaseKind.SORT_AFTER_INSERT in kinds_found(make_profile(specs))

    def test_sort_before_insert_does_not_fire(self):
        specs = [(OP.SORT, None, 0)] + [
            (OP.INSERT, i, i + 1) for i in range(150)
        ]
        assert UseCaseKind.SORT_AFTER_INSERT not in kinds_found(
            make_profile(specs)
        )

    def test_short_insert_does_not_fire(self):
        specs = [(OP.INSERT, i, i + 1) for i in range(50)] + [
            (OP.SORT, None, 50)
        ]
        assert UseCaseKind.SORT_AFTER_INSERT not in kinds_found(
            make_profile(specs)
        )


class TestFrequentSearch:
    def test_fires_above_1000_searches(self):
        specs = [(OP.INSERT, i, i + 1) for i in range(100)]
        specs += [(OP.SEARCH, i % 100, 100) for i in range(1100)]
        assert UseCaseKind.FREQUENT_SEARCH in kinds_found(make_profile(specs))

    def test_exactly_1000_does_not_fire(self):
        specs = [(OP.SEARCH, i % 100, 100) for i in range(1000)]
        assert UseCaseKind.FREQUENT_SEARCH not in kinds_found(
            make_profile(specs)
        )

    def test_scaled_thresholds(self):
        th = PAPER_THRESHOLDS.scaled(0.01)  # >10 searches suffice
        specs = [(OP.SEARCH, i % 10, 10) for i in range(20)]
        assert UseCaseKind.FREQUENT_SEARCH in kinds_found(
            make_profile(specs), thresholds=th
        )


class TestFrequentLongRead:
    def _scan_profile(self, scans, size=50, coverage=1.0):
        specs = [(OP.INSERT, i, i + 1) for i in range(size)]
        upto = int(size * coverage)
        for _ in range(scans):
            specs += [(OP.READ, i, size) for i in range(upto)]
            specs += [(OP.SEARCH, 0, size)]  # break between scans
        return make_profile(specs)

    def test_fires_on_repeated_full_scans(self):
        assert UseCaseKind.FREQUENT_LONG_READ in kinds_found(
            self._scan_profile(scans=12)
        )

    def test_ten_scans_insufficient(self):
        assert UseCaseKind.FREQUENT_LONG_READ not in kinds_found(
            self._scan_profile(scans=10)
        )

    def test_shallow_scans_do_not_fire(self):
        assert UseCaseKind.FREQUENT_LONG_READ not in kinds_found(
            self._scan_profile(scans=12, coverage=0.3)
        )

    def test_write_heavy_profile_does_not_fire(self):
        # Scans interleaved with heavy writes: read fraction < 50%.
        specs = []
        size = 50
        for _ in range(12):
            specs += [(OP.READ, i, size) for i in range(size)]
            specs += [(OP.SEARCH, 0, size)]
            specs += [(OP.WRITE, (i * 7) % size, size) for i in range(2 * size)]
        assert UseCaseKind.FREQUENT_LONG_READ not in kinds_found(
            make_profile(specs)
        )


class TestInsertDeleteFront:
    def test_fires_on_array_churn(self):
        with collecting():
            arr = TrackedArray([0])
            for i in range(10):
                arr.insert(0, i)
                arr.delete(0)
            profile = arr.profile()
        assert UseCaseKind.INSERT_DELETE_FRONT in kinds_found(profile)

    def test_list_churn_does_not_fire(self):
        with collecting():
            xs = TrackedList([0])
            for i in range(10):
                xs.insert(0, i)
                xs.pop(0)
            profile = xs.profile()
        assert UseCaseKind.INSERT_DELETE_FRONT not in kinds_found(profile)

    def test_insert_only_does_not_fire(self):
        with collecting():
            arr = TrackedArray([0])
            for i in range(10):
                arr.insert(0, i)
            profile = arr.profile()
        assert UseCaseKind.INSERT_DELETE_FRONT not in kinds_found(profile)


class TestStackImplementation:
    def test_fires_on_list_used_as_stack(self):
        with collecting():
            xs = TrackedList()
            for round_ in range(5):
                for i in range(10):
                    xs.append(i)
                for _ in range(10):
                    xs.pop()
            profile = xs.profile()
        assert UseCaseKind.STACK_IMPLEMENTATION in kinds_found(profile)

    def test_queue_usage_does_not_fire_si(self):
        with collecting():
            xs = TrackedList()
            for i in range(50):
                xs.append(i)
            while len(xs):
                xs.pop(0)
            profile = xs.profile()
        assert UseCaseKind.STACK_IMPLEMENTATION not in kinds_found(profile)

    def test_actual_stack_structure_does_not_fire(self):
        with collecting():
            st = TrackedStack()
            for i in range(50):
                st.push(i)
            while len(st):
                st.pop()
            profile = st.profile()
        assert UseCaseKind.STACK_IMPLEMENTATION not in kinds_found(profile)


class TestWriteWithoutRead:
    def test_fires_on_trailing_null_out(self):
        with collecting():
            xs = TrackedList(range(20))
            _ = xs[3]  # some read activity earlier
            for i in range(20):
                xs[i] = None
            profile = xs.profile()
        assert UseCaseKind.WRITE_WITHOUT_READ in kinds_found(profile)

    def test_fires_on_trailing_clear_with_writes(self):
        specs = [(OP.READ, 0, 10)] + [(OP.WRITE, i, 10) for i in range(5)] + [
            (OP.CLEAR, None, 0)
        ]
        assert UseCaseKind.WRITE_WITHOUT_READ in kinds_found(make_profile(specs))

    def test_profile_ending_in_reads_does_not_fire(self):
        specs = [(OP.WRITE, i, 10) for i in range(10)] + [
            (OP.READ, i, 10) for i in range(10)
        ]
        assert UseCaseKind.WRITE_WITHOUT_READ not in kinds_found(
            make_profile(specs)
        )

    def test_few_trailing_writes_do_not_fire(self):
        specs = [(OP.READ, i, 10) for i in range(10)] + [
            (OP.WRITE, 0, 10),
            (OP.WRITE, 1, 10),
        ]
        assert UseCaseKind.WRITE_WITHOUT_READ not in kinds_found(
            make_profile(specs)
        )


class TestEngineAndReport:
    def test_search_space_reduction(self):
        hot = make_profile([(OP.INSERT, i, i + 1) for i in range(200)])
        cold1 = make_profile([(OP.READ, 0, 5)] * 3)
        cold2 = make_profile([])
        cold3 = make_profile([(OP.WRITE, 2, 5)] * 2)
        report = UseCaseEngine().analyze([hot, cold1, cold2, cold3])
        assert report.instances_analyzed == 4
        assert report.instances_flagged == 1
        assert report.search_space_reduction == pytest.approx(0.75)

    def test_multiple_use_cases_per_instance(self):
        # Long insert phase followed by many long scans: LI + FLR.
        size = 300
        specs = [(OP.INSERT, i, i + 1) for i in range(size)]
        for _ in range(15):
            specs += [(OP.READ, i, size) for i in range(size)]
            specs += [(OP.SEARCH, 0, size)]
        profile = make_profile(specs)
        found = {u.kind for u in UseCaseEngine().analyze_profile(profile)}
        assert UseCaseKind.FREQUENT_LONG_READ in found

    def test_report_selectors(self):
        hot = make_profile([(OP.INSERT, i, i + 1) for i in range(200)])
        report = UseCaseEngine().analyze([hot])
        assert len(report.parallel_use_cases) == len(report.use_cases)
        assert report.of_kind(UseCaseKind.LONG_INSERT)
        assert report.count_by_kind()[UseCaseKind.LONG_INSERT] == 1
        assert report.for_instance(hot.instance_id)

    def test_format_table_v(self):
        hot = make_profile([(OP.INSERT, i, i + 1) for i in range(200)])
        report = UseCaseEngine().analyze([hot])
        text = format_table_v(report, title="Test Output")
        assert "Use Case 1" in text
        assert "Long-Insert" in text
        assert "Recommendation" in text

    def test_format_table_v_empty(self):
        report = UseCaseEngine().analyze([])
        assert "no use cases" in format_table_v(report)

    def test_format_summary(self):
        hot = make_profile([(OP.INSERT, i, i + 1) for i in range(200)])
        report = UseCaseEngine().analyze([hot])
        summary = format_summary(report, name="demo")
        assert "demo" in summary and "LI=1" in summary

    def test_empty_report_reduction_zero(self):
        report = UseCaseEngine().analyze([])
        assert report.search_space_reduction == 0.0


class TestKindMetadata:
    def test_parallel_kind_partition(self):
        assert len(UseCaseKind.parallel_kinds()) == 5
        assert len(UseCaseKind.sequential_kinds()) == 3

    def test_from_abbreviation(self):
        assert UseCaseKind.from_abbreviation("li") is UseCaseKind.LONG_INSERT
        assert UseCaseKind.from_abbreviation("FLR") is UseCaseKind.FREQUENT_LONG_READ
        with pytest.raises(KeyError):
            UseCaseKind.from_abbreviation("nope")

    def test_rule_for(self):
        for kind in UseCaseKind:
            assert rule_for(kind).kind is kind

    def test_thresholds_scaled_minimums(self):
        tiny = Thresholds().scaled(0.0001)
        assert tiny.li_long_phase >= 2
        assert tiny.fs_min_search_ops >= 1


class TestRankedReports:
    """Regression: reports surfaced to users are ordered by predicted
    payoff, with ties falling back to the engine's threshold order."""

    def _ranked(self, profiles, cores=8):
        from repro.parallel.machine import MachineConfig, SimulatedMachine
        from repro.whatif import annotate_report, rank_report, workspans_from_profiles

        machine = SimulatedMachine(MachineConfig(cores=cores))
        report = UseCaseEngine().analyze(profiles)
        return rank_report(
            annotate_report(report, machine, workspans_from_profiles(profiles))
        )

    def test_report_orders_by_predicted_speedup(self):
        small = make_profile([(OP.INSERT, i, i + 1) for i in range(150)])
        big = make_profile([(OP.INSERT, i, i + 1) for i in range(5000)])
        ranked = self._ranked([small, big])
        assert len(ranked.use_cases) >= 2
        speeds = [u.predicted_speedup for u in ranked.use_cases]
        assert all(s is not None for s in speeds)
        assert speeds == sorted(speeds, reverse=True)
        # The bigger insert has more parallelizable work -> ranks first.
        assert ranked.use_cases[0].instance_id == big.instance_id

    def test_ties_preserve_threshold_order(self):
        # Two sequential-advice use cases both predict exactly 1.0;
        # their relative order must match the unranked engine report.
        stack_specs = []
        for i in range(60):
            stack_specs.append((OP.INSERT, i, i + 1))
        for i in reversed(range(60)):
            stack_specs.append((OP.DELETE, i, i))
        stacky1 = make_profile(stack_specs)
        stacky2 = make_profile(stack_specs)
        baseline = UseCaseEngine().analyze([stacky1, stacky2])
        ranked = self._ranked([stacky1, stacky2])
        tied = [u for u in ranked.use_cases if u.predicted_speedup == 1.0]
        base_order = [
            (u.instance_id, u.kind)
            for u in baseline.use_cases
            if (u.instance_id, u.kind) in {(t.instance_id, t.kind) for t in tied}
        ]
        assert [(u.instance_id, u.kind) for u in tied] == base_order

    def test_unannotated_report_is_unchanged_by_rank(self):
        from repro.whatif import rank_report

        hot = make_profile([(OP.INSERT, i, i + 1) for i in range(200)])
        report = UseCaseEngine().analyze([hot])
        assert rank_report(report).use_cases == report.use_cases
