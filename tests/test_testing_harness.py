"""Unit tests for the correctness harness itself: SimClock, the trace
generator, the fault proxy, and trace shrinking.

The differential oracle's end-to-end trials live in
``test_differential_oracle.py``; this file pins down the building
blocks so an oracle failure can be attributed to the product, not the
harness.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.events.spill import RECORD_SIZE
from repro.service import ProfilingDaemon, ProtocolError, ServiceClient
from repro.service.protocol import (
    _EVENTS_HEADER,
    FrameDecoder,
    MessageType,
    decode_events,
    encode_events,
)
from repro.testing import (
    FAULT_KINDS,
    FaultPlan,
    FaultProxy,
    SimClock,
    generate_trace,
    shrink_trace,
)


class TestSimClock:
    def test_monotonic_only_moves_on_advance(self):
        clock = SimClock()
        assert clock.monotonic() == 0.0
        time.sleep(0.01)  # real time passing is invisible
        assert clock.monotonic() == 0.0
        clock.advance(5.0)
        assert clock.monotonic() == 5.0

    def test_wall_tracks_virtual_time_from_fixed_epoch(self):
        clock = SimClock(start=10.0, epoch=1000.0)
        assert clock.wall() == 1000.0
        clock.advance(3.5)
        assert clock.wall() == 1003.5
        assert clock.monotonic() == 13.5

    def test_cannot_advance_backwards(self):
        with pytest.raises(ValueError, match="backwards"):
            SimClock().advance(-1.0)

    def test_wait_times_out_on_virtual_deadline(self):
        clock = SimClock()
        event = threading.Event()
        done = []

        def waiter():
            done.append(clock.wait(event, 30.0))

        t = threading.Thread(target=waiter)
        t.start()
        time.sleep(0.05)
        assert not done  # real time alone never expires the wait
        clock.advance(31.0)
        t.join(timeout=5.0)
        assert done == [False]

    def test_wait_returns_promptly_when_event_set_externally(self):
        clock = SimClock()
        event = threading.Event()
        done = []
        t = threading.Thread(target=lambda: done.append(clock.wait(event, 1e9)))
        t.start()
        event.set()  # no advance() at all
        t.join(timeout=5.0)
        assert done == [True]

    def test_sleep_blocks_until_advanced(self):
        clock = SimClock()
        woke = threading.Event()

        def sleeper():
            clock.sleep(10.0)
            woke.set()

        t = threading.Thread(target=sleeper, daemon=True)
        t.start()
        time.sleep(0.05)
        assert not woke.is_set()
        clock.advance(10.0)
        assert woke.wait(5.0)
        t.join(timeout=5.0)


class TestTraceGenerator:
    def test_same_seed_same_trace(self):
        a, b = generate_trace(1234), generate_trace(1234)
        assert a.events == b.events
        assert [i.instance_id for i in a.instances] == [
            i.instance_id for i in b.instances
        ]
        assert [i.kind for i in a.instances] == [i.kind for i in b.instances]

    def test_different_seeds_differ(self):
        assert generate_trace(1).events != generate_trace(2).events

    def test_per_instance_order_is_preserved_by_interleaving(self):
        # Re-deriving each instance's substream must give a coherent
        # stream; spot-check via insert positions growing with size.
        trace = generate_trace(77)
        for inst in trace.instances:
            events = trace.events_of(inst.instance_id)
            assert all(raw[0] == inst.instance_id for raw in events)

    def test_events_are_wire_shaped(self):
        trace = generate_trace(5)
        for raw in trace.events:
            iid, op, kind, pos, size, tid, wall = raw
            assert iid >= 100
            assert op >= 0 and kind >= 0
            assert pos is None or pos >= 0
            assert size >= 0 and tid >= 0
            assert wall is None
        # Wire-shaped means encodable: the protocol must round-trip it.
        start, raws = decode_events(encode_events(0, trace.events[:50])[5:])
        assert start == 0
        assert len(raws) == 50

    def test_seed_diversity_flags_use_cases(self):
        # The generator is biased toward rule-triggering shapes; a
        # vacuous generator would make the differential tests toothless.
        from repro.testing import run_batch_path

        flagged_seeds = sum(
            1 if run_batch_path(generate_trace(seed))["use_cases"] else 0
            for seed in range(15)
        )
        assert flagged_seeds >= 5


class TestFaultPlan:
    def test_plan_is_seed_deterministic(self):
        a = FaultPlan.from_seed(99, intensity=0.5)
        b = FaultPlan.from_seed(99, intensity=0.5)
        assert a.faults == b.faults
        assert a.faults  # intensity 0.5 over 64 frames: certainly some

    def test_plan_respects_max_faults_and_kinds(self):
        plan = FaultPlan.from_seed(1, intensity=1.0, max_faults=3, kinds=("stall",))
        assert len(plan.faults) == 3
        assert set(plan.faults.values()) == {"stall"}

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultPlan.from_seed(1, kinds=("gremlin",))

    def test_transparent_plan_is_empty(self):
        plan = FaultPlan.transparent()
        assert plan.describe() == "transparent"
        assert plan.action_for(0) is None


def _raws(n, instance=0, start=0):
    return [(instance, 4, 1, start + i, start + i + 1, 0, None) for i in range(n)]


def _registration(instance=0):
    return {"id": instance, "kind": "list", "site": None, "label": "w"}


class TestFaultProxy:
    """Each fault kind against a live daemon, one at a time."""

    def _roundtrip(self, plan, n_events=120, window=40):
        events = _raws(n_events)
        with ProfilingDaemon(port=0) as daemon:
            with FaultProxy(daemon.address, plan) as proxy:
                # Same reconnect-and-retransmit protocol the oracle's
                # daemon driver speaks, inlined so this file stands on
                # its own.
                client = None
                sent = 0
                session_id = None
                for _ in range(50):
                    try:
                        if client is None:
                            client = ServiceClient(proxy.address, session_id=session_id)
                            session_id = client.session_id
                            sent = (
                                min(sent, client.server_received)
                                if client.resumed
                                else 0
                            )
                            client.register_instances([_registration()])
                        while sent < n_events:
                            k = min(window, n_events - sent)
                            client.send_events(sent, events[sent : sent + k])
                            sent += k
                        ack = client.fin()
                        client.close()
                        return ack, proxy.injected
                    except (OSError, ProtocolError):
                        if client is not None:
                            client.close()
                        client = None
                raise AssertionError("round trip did not converge")

    def test_transparent_proxy_is_invisible(self):
        ack, injected = self._roundtrip(FaultPlan.transparent())
        assert ack["received"] == 120
        assert injected == []

    @pytest.mark.parametrize("kind", FAULT_KINDS)
    def test_each_fault_kind_is_survived(self, kind):
        plan = FaultPlan(faults={1: kind})
        ack, injected = self._roundtrip(plan)
        assert ack["received"] == 120
        assert [f.kind for f in injected] == [kind]

    def test_every_kind_in_one_plan(self):
        plan = FaultPlan(faults=dict(enumerate(FAULT_KINDS)))
        ack, injected = self._roundtrip(plan, n_events=400, window=40)
        assert ack["received"] == 400
        assert {f.kind for f in injected} == set(FAULT_KINDS)

    def test_corrupt_payload_helper_is_detectable(self):
        from repro.testing.faults import _corrupt_events_payload

        payload = encode_events(7, _raws(5))[5:]  # strip frame header
        corrupted = _corrupt_events_payload(payload)
        assert corrupted != payload
        with pytest.raises(ProtocolError, match="implausible"):
            decode_events(corrupted, validate=True)
        # Without validation the garbage op survives decoding — the
        # daemon-side validate flag is what turns it into a rejection.
        start, raws = decode_events(corrupted)
        assert start == 7 and len(raws) == 5

    def test_swap_halves_creates_a_gap(self):
        from repro.testing.faults import _swap_halves

        payload = encode_events(10, _raws(6))[5:]
        wire = _swap_halves(payload)
        decoder = FrameDecoder()
        frames = list(decoder.feed(wire))
        assert [mt for mt, _ in frames] == [MessageType.EVENTS] * 2
        starts = [_EVENTS_HEADER.unpack_from(p)[0] for _, p in frames]
        assert starts == [13, 10]  # later half first: a stream gap
        total = sum(_EVENTS_HEADER.unpack_from(p)[1] for _, p in frames)
        assert total == 6
        for _, p in frames:
            s, c = _EVENTS_HEADER.unpack_from(p)
            assert len(p) - _EVENTS_HEADER.size == c * RECORD_SIZE


class TestShrinking:
    def test_shrinks_to_single_instance(self):
        # First seed whose trace has two or more active instances.
        trace = next(
            t
            for t in (generate_trace(seed) for seed in range(50))
            if sum(1 for i in t.instances if t.events_of(i.instance_id)) >= 2
        )
        # Target the busiest instance (the first may be a silent one).
        target = max(
            (i.instance_id for i in trace.instances),
            key=lambda iid: len(trace.events_of(iid)),
        )

        def fails(candidate):
            return any(raw[0] == target for raw in candidate.events)

        small = shrink_trace(trace, fails)
        assert fails(small)
        live = {raw[0] for raw in small.events}
        assert live == {target}

    def test_shrinks_event_count_down(self):
        trace = generate_trace(42)

        def fails(candidate):
            return len(candidate.events) >= 3

        small = shrink_trace(trace, fails)
        assert len(small.events) == 3

    def test_rejects_passing_trace(self):
        with pytest.raises(ValueError, match="failing trace"):
            shrink_trace(generate_trace(1), lambda c: False)

    def test_result_is_subsequence_of_input(self):
        from repro.events.types import OperationKind

        trace = generate_trace(7)
        insert = int(OperationKind.INSERT)

        def fails(candidate):
            return sum(1 for r in candidate.events if r[1] == insert) >= 5

        small = shrink_trace(trace, fails)
        it = iter(trace.events)
        assert all(raw in it for raw in small.events)  # order-preserving
