"""Unit tests for the memory-contention machine model."""

from __future__ import annotations

import pytest

from repro.parallel import (
    ContendedMachine,
    ContentionConfig,
    MachineConfig,
    SimulatedMachine,
    speedup_under_contention,
)


def machine(intensity=0.45, lanes=2, cores=8, **mc):
    return ContendedMachine(
        ContentionConfig(
            machine=MachineConfig(cores=cores, **mc),
            memory_intensity=intensity,
            memory_lanes=lanes,
        )
    )


class TestContendedMachine:
    def test_zero_intensity_matches_plain_machine(self):
        plain = SimulatedMachine(MachineConfig(cores=8))
        contended = machine(intensity=0.0)
        costs = [1000.0] * 8
        assert contended.parallel_time(costs) == pytest.approx(
            plain.parallel_time(costs)
        )

    def test_full_intensity_limited_by_lanes(self):
        m = machine(intensity=1.0, lanes=2, task_overhead=0, fork_join_overhead=0)
        costs = [1000.0] * 8
        # All memory: 8000 units through 2 lanes.
        assert m.parallel_time(costs) == pytest.approx(4000.0)

    def test_contention_never_helps(self):
        plain = SimulatedMachine(MachineConfig(cores=8))
        contended = machine(intensity=0.45)
        for work in (1e3, 1e5, 1e7):
            costs = contended.chunk_work(work)
            assert contended.parallel_time(costs) >= plain.parallel_time(
                costs
            ) - 1e-9

    def test_speedup_monotone_decreasing_in_intensity(self):
        work = 1e6
        speedups = [
            machine(intensity=i).data_parallel_speedup(work)
            for i in (0.0, 0.2, 0.5, 0.8, 1.0)
        ]
        assert speedups == sorted(speedups, reverse=True)

    def test_more_lanes_help(self):
        work = 1e6
        two = machine(lanes=2).data_parallel_speedup(work)
        eight = machine(lanes=8).data_parallel_speedup(work)
        assert eight > two

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            ContentionConfig(memory_intensity=1.5)
        with pytest.raises(ValueError):
            ContentionConfig(memory_lanes=0)

    def test_empty_region(self):
        assert machine().parallel_time([]) == 0.0

    def test_effective_parallelism_bounds(self):
        m = machine(intensity=0.45, lanes=2)
        eff = m.effective_parallelism(1e8)
        assert 1.0 < eff < 8.0


class TestPaperBand:
    """With the AMD-FX-style contention parameters, every evaluation
    workload's total speedup lands in the paper's 1.0–3.5 band."""

    def test_workload_speedups_in_band(self):
        from repro.workloads import EVALUATION_WORKLOADS

        for workload in EVALUATION_WORKLOADS:
            decomposition = workload.decomposition(scale=0.3)
            speedup = speedup_under_contention(decomposition)
            assert 1.0 <= speedup <= 3.5, (workload.name, speedup)

    def test_ordering_preserved_under_contention(self):
        """Table VI's claim survives contention: lower sequential
        fraction, higher speedup — up to bandwidth-saturation ties (the
        two most-parallel programs hit the same memory ceiling, so they
        may tie within a couple of percent)."""
        from repro.eval.speedup_eval import TABLE6_PAPER_ROWS
        from repro.workloads import workload_by_name

        rows = []
        for name, seq, par in TABLE6_PAPER_ROWS:
            d = workload_by_name(name).decomposition(scale=0.3)
            rows.append((d.sequential_fraction, speedup_under_contention(d)))
        rows.sort()
        speedups = [s for _, s in rows]
        for higher, lower in zip(speedups, speedups[1:]):
            assert higher >= lower * 0.98

    def test_mean_closer_to_paper_than_uncontended(self):
        from repro.eval.harness import EVAL_MACHINE
        from repro.workloads import EVALUATION_WORKLOADS

        paper = [w.paper.speedup for w in EVALUATION_WORKLOADS]
        plain = [
            w.decomposition(scale=0.3).speedup(EVAL_MACHINE)
            for w in EVALUATION_WORKLOADS
        ]
        contended = [
            speedup_under_contention(w.decomposition(scale=0.3))
            for w in EVALUATION_WORKLOADS
        ]
        def err(xs):
            return sum(abs(a - b) for a, b in zip(xs, paper)) / len(paper)

        assert err(contended) < err(plain)
