"""Unit tests for the parallel substrate (machine, executor, containers,
transforms)."""

from __future__ import annotations

import pytest

from repro.events import OperationKind, collecting
from repro.parallel import (
    MachineConfig,
    ParallelExecutor,
    ParallelList,
    ParallelQueue,
    ParallelRegion,
    SimulatedMachine,
    WorkDecomposition,
    amdahl,
    apply_all,
    apply_recommendation,
    chunk_ranges,
    estimate_region,
    parallel_sorted,
)
from repro.structures import TrackedList
from repro.usecases import UseCaseEngine, UseCaseKind

from .conftest import make_profile

OP = OperationKind


class TestAmdahl:
    def test_no_sequential_part(self):
        assert amdahl(0.0, 8) == pytest.approx(8.0)

    def test_all_sequential(self):
        assert amdahl(1.0, 8) == pytest.approx(1.0)

    def test_half_sequential(self):
        assert amdahl(0.5, 8) == pytest.approx(1 / (0.5 + 0.5 / 8))

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            amdahl(-0.1, 8)
        with pytest.raises(ValueError):
            amdahl(0.5, 0)


class TestSimulatedMachine:
    def test_makespan_balances(self):
        m = SimulatedMachine(MachineConfig(cores=4, task_overhead=0, fork_join_overhead=0))
        assert m.makespan([1, 1, 1, 1]) == pytest.approx(1.0)
        assert m.makespan([4, 1, 1, 1, 1]) == pytest.approx(4.0)

    def test_makespan_single_core(self):
        m = SimulatedMachine(MachineConfig(cores=1, task_overhead=0, fork_join_overhead=0))
        assert m.makespan([3, 2, 1]) == pytest.approx(6.0)

    def test_speedup_bounded_by_cores(self):
        m = SimulatedMachine(MachineConfig(cores=8))
        assert m.data_parallel_speedup(1e9) <= 8.0

    def test_large_work_approaches_cores(self):
        m = SimulatedMachine(MachineConfig(cores=8))
        assert m.data_parallel_speedup(1e9) == pytest.approx(8.0, rel=0.01)

    def test_small_work_not_worth_it(self):
        m = SimulatedMachine(MachineConfig(cores=8, fork_join_overhead=200))
        assert m.data_parallel_speedup(100) < 1.0

    def test_speedup_monotonic_in_work(self):
        m = SimulatedMachine(MachineConfig(cores=8))
        speedups = [m.data_parallel_speedup(w) for w in (1e2, 1e4, 1e6, 1e8)]
        assert speedups == sorted(speedups)

    def test_empty_region(self):
        m = SimulatedMachine()
        assert m.parallel_time([]) == 0.0
        assert m.region_speedup([]) == 1.0

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            MachineConfig(cores=0)
        with pytest.raises(ValueError):
            MachineConfig(task_overhead=-1)


class TestWorkDecomposition:
    def test_sequential_fraction(self):
        d = WorkDecomposition(
            sequential_work=300,
            regions=(ParallelRegion(work=700),),
        )
        assert d.sequential_fraction == pytest.approx(0.3)
        assert d.total_work == 1000

    def test_speedup_vs_amdahl(self):
        m = SimulatedMachine(MachineConfig(cores=8))
        d = WorkDecomposition(
            sequential_work=1e5, regions=(ParallelRegion(work=9e5),)
        )
        measured = d.speedup(m)
        ceiling = d.amdahl_limit(8)
        assert 1.0 < measured <= ceiling

    def test_mostly_sequential_program_low_speedup(self):
        """Table VI: 94.29% sequential -> speedup near 1 (CPU Benchmarks)."""
        m = SimulatedMachine(MachineConfig(cores=8))
        d = WorkDecomposition(
            sequential_work=94.29e4, regions=(ParallelRegion(work=5.71e4),)
        )
        assert 1.0 < d.speedup(m) < 1.2

    def test_mostly_parallel_program_high_speedup(self):
        """Table VI: GPdotNET at 3.89% sequential can reach high speedups."""
        m = SimulatedMachine(MachineConfig(cores=8))
        d = WorkDecomposition(
            sequential_work=3.89e4, regions=(ParallelRegion(work=96.11e4),)
        )
        assert d.speedup(m) > 2.5

    def test_max_parallelism_cap(self):
        m = SimulatedMachine(MachineConfig(cores=8, task_overhead=0, fork_join_overhead=0))
        region = ParallelRegion(work=800, max_parallelism=2)
        assert m.parallel_time(region.chunks(m)) == pytest.approx(400.0)

    def test_empty_decomposition(self):
        d = WorkDecomposition(sequential_work=0)
        assert d.sequential_fraction == 1.0
        assert d.speedup(SimulatedMachine()) == 1.0


class TestChunking:
    def test_chunks_cover_range(self):
        ranges = chunk_ranges(10, 3)
        flat = [i for r in ranges for i in r]
        assert flat == list(range(10))

    def test_chunks_balanced(self):
        sizes = [len(r) for r in chunk_ranges(10, 3)]
        assert max(sizes) - min(sizes) <= 1

    def test_more_chunks_than_items(self):
        ranges = chunk_ranges(2, 8)
        assert len(ranges) == 2

    def test_empty(self):
        assert chunk_ranges(0, 4) == []


class TestParallelExecutor:
    def test_parallel_map_matches_sequential(self):
        ex = ParallelExecutor(4)
        items = list(range(100))
        assert ex.parallel_map(lambda x: x * x, items) == [x * x for x in items]

    def test_parallel_fill(self):
        ex = ParallelExecutor(3)
        assert ex.parallel_fill(lambda i: i + 1, 10) == list(range(1, 11))

    def test_parallel_for_side_effects(self):
        ex = ParallelExecutor(4)
        out = [0] * 50
        ex.parallel_for(lambda i: out.__setitem__(i, i * 2), 50)
        assert out == [i * 2 for i in range(50)]

    def test_parallel_search_finds_lowest(self):
        ex = ParallelExecutor(4)
        items = [0] * 100
        items[17] = 1
        items[80] = 1
        assert ex.parallel_search(items, lambda x: x == 1) == 17

    def test_parallel_search_missing(self):
        ex = ParallelExecutor(4)
        assert ex.parallel_search([1, 2, 3], lambda x: x == 9) is None
        assert ex.parallel_search([], lambda x: True) is None

    def test_parallel_index_raises_like_list(self):
        ex = ParallelExecutor(2)
        with pytest.raises(ValueError):
            ex.parallel_index([1, 2], 3)

    def test_parallel_any(self):
        ex = ParallelExecutor(2)
        assert ex.parallel_any(range(100), lambda x: x == 55)
        assert not ex.parallel_any(range(100), lambda x: x == 200)

    def test_parallel_reduce_max(self):
        ex = ParallelExecutor(4)
        items = [3, 9, 1, 9, 2]
        result = ex.parallel_reduce(items, max, max, float("-inf"))
        assert result == 9

    def test_invalid_workers(self):
        with pytest.raises(ValueError):
            ParallelExecutor(0)


class TestParallelContainers:
    def test_parallel_list_basics(self):
        xs = ParallelList([1, 2])
        xs.append(3)
        xs.extend([4])
        assert len(xs) == 4
        assert xs[0] == 1
        xs[0] = 10
        assert list(xs) == [10, 2, 3, 4]

    def test_parallel_fill_and_extend(self):
        xs = ParallelList(executor=ParallelExecutor(4))
        xs.parallel_fill(lambda i: i * i, 20)
        assert xs.snapshot() == [i * i for i in range(20)]
        xs.parallel_extend(lambda i: -i, 5)
        assert len(xs) == 25

    def test_parallel_search_and_contains(self):
        xs = ParallelList(range(1000), executor=ParallelExecutor(4))
        assert xs.parallel_index(777) == 777
        assert 500 in xs
        assert 5000 not in xs
        with pytest.raises(ValueError):
            xs.parallel_index(-1)

    def test_parallel_max_matches_max(self):
        """The FLR transform for the priority-queue-as-list case."""
        import random

        rng = random.Random(7)
        data = [rng.random() for _ in range(5000)]
        xs = ParallelList(data, executor=ParallelExecutor(4))
        assert xs.parallel_max() == max(data)

    def test_parallel_max_with_key(self):
        xs = ParallelList([(1, "a"), (9, "b"), (5, "c")])
        assert xs.parallel_max(key=lambda t: t[0]) == (9, "b")

    def test_parallel_max_empty_raises(self):
        with pytest.raises(ValueError):
            ParallelList().parallel_max()

    def test_parallel_map_method(self):
        xs = ParallelList([1, 2, 3])
        assert xs.parallel_map(lambda v: v * 10) == [10, 20, 30]

    def test_parallel_queue_fifo(self):
        q = ParallelQueue()
        q.enqueue(1)
        q.enqueue(2)
        assert q.peek() == 1
        assert q.dequeue() == 1
        assert q.dequeue() == 2
        with pytest.raises(IndexError):
            q.dequeue()

    def test_parallel_queue_producer_consumer(self):
        import threading

        q = ParallelQueue()
        received = []

        def consumer():
            for _ in range(100):
                received.append(q.dequeue(block=True, timeout=5))

        t = threading.Thread(target=consumer)
        t.start()
        for i in range(100):
            q.enqueue(i)
        t.join(timeout=10)
        assert received == list(range(100))

    def test_parallel_queue_timeout(self):
        q = ParallelQueue()
        with pytest.raises(TimeoutError):
            q.dequeue(block=True, timeout=0.01)

    def test_parallel_sorted(self):
        import random

        rng = random.Random(3)
        data = [rng.randrange(1000) for _ in range(500)]
        assert parallel_sorted(data, executor=ParallelExecutor(4)) == sorted(data)

    def test_parallel_sorted_stable(self):
        data = [(1, "x"), (0, "a"), (1, "y"), (0, "b")]
        result = parallel_sorted(data, key=lambda t: t[0])
        assert result == sorted(data, key=lambda t: t[0])

    def test_parallel_sorted_trivial(self):
        assert parallel_sorted([]) == []
        assert parallel_sorted([1]) == [1]


class TestTransforms:
    def _use_case(self, kind):
        if kind is UseCaseKind.LONG_INSERT:
            profile = make_profile([(OP.INSERT, i, i + 1) for i in range(100_000)])
        elif kind is UseCaseKind.FREQUENT_LONG_READ:
            size = 2000
            specs = [(OP.INSERT, i, i + 1) for i in range(size)]
            for _ in range(15):
                specs += [(OP.READ, i, size) for i in range(size)]
                specs += [(OP.SEARCH, 0, size)]
            profile = make_profile(specs)
        else:
            raise NotImplementedError(kind)
        cases = UseCaseEngine().analyze_profile(profile)
        return next(u for u in cases if u.kind is kind)

    def test_long_insert_large_work_true_positive(self):
        machine = SimulatedMachine(MachineConfig(cores=8))
        outcome = apply_recommendation(
            self._use_case(UseCaseKind.LONG_INSERT), machine
        )
        assert outcome.is_true_positive
        assert outcome.speedup > 2.0

    def test_flr_transform(self):
        machine = SimulatedMachine(MachineConfig(cores=8))
        outcome = apply_recommendation(
            self._use_case(UseCaseKind.FREQUENT_LONG_READ), machine
        )
        assert outcome.region.work > 0
        assert outcome.is_true_positive

    def test_small_work_false_positive(self):
        """Tiny insert phases don't pay for parallelization — the paper's
        'initializations without speedup'."""
        profile = make_profile([(OP.INSERT, i, i + 1) for i in range(150)])
        (uc,) = [
            u
            for u in UseCaseEngine().analyze_profile(profile)
            if u.kind is UseCaseKind.LONG_INSERT
        ]
        machine = SimulatedMachine(MachineConfig(cores=8, fork_join_overhead=500))
        outcome = apply_recommendation(uc, machine)
        assert not outcome.is_true_positive

    def test_apply_all_filters_sequential(self):
        with collecting():
            xs = TrackedList()
            for round_ in range(5):
                for i in range(50):
                    xs.append(i)
                for _ in range(50):
                    xs.pop()
            profile = xs.profile()
        cases = UseCaseEngine().analyze_profile(profile)
        machine = SimulatedMachine()
        outcomes = apply_all(cases, machine)
        assert all(o.use_case.kind.parallel for o in outcomes)

    def test_estimate_region_sequential_kind_zero(self):
        with collecting():
            xs = TrackedList()
            for round_ in range(5):
                for i in range(20):
                    xs.append(i)
                for _ in range(20):
                    xs.pop()
            profile = xs.profile()
        cases = UseCaseEngine().analyze_profile(profile)
        si = next(
            u for u in cases if u.kind is UseCaseKind.STACK_IMPLEMENTATION
        )
        region = estimate_region(si)
        assert region.work == 0.0

    def test_outcome_describe(self):
        machine = SimulatedMachine()
        outcome = apply_recommendation(
            self._use_case(UseCaseKind.LONG_INSERT), machine
        )
        text = outcome.describe()
        assert "Long-Insert" in text and "speedup" in text
