"""Unit tests for the evaluation harness (Tables IV–VII machinery)."""

from __future__ import annotations

import pytest

from repro.eval import (
    TABLE6_PAPER_ROWS,
    evaluate_workload,
    fractions_explain_speedups,
    paper_fraction,
    render_table4,
    render_table6,
    render_table7,
    run_fraction_analysis,
)
from repro.eval.harness import EvaluationSummary
from repro.workloads import Mandelbrot, WordWheelSolver


@pytest.fixture(scope="module")
def mandelbrot_row():
    return evaluate_workload(Mandelbrot(), scale=0.1, repeats=1)


class TestWorkloadEvaluation:
    def test_row_columns(self, mandelbrot_row):
        row = mandelbrot_row
        assert row.name == "Mandelbrot"
        assert row.instances == 7
        assert row.use_cases == 4
        assert row.true_positives == 4
        assert row.search_space_reduction == pytest.approx(1 - 4 / 7)
        assert row.matches_paper_counts()

    def test_slowdown_measured(self, mandelbrot_row):
        assert mandelbrot_row.plain_seconds > 0
        assert mandelbrot_row.tracked_seconds > mandelbrot_row.plain_seconds
        assert mandelbrot_row.slowdown > 1.0

    def test_speedup_and_fraction(self, mandelbrot_row):
        assert mandelbrot_row.program_speedup > 2.0
        assert mandelbrot_row.sequential_fraction == pytest.approx(
            0.0909, abs=0.001
        )

    def test_skip_slowdown_measurement(self):
        row = evaluate_workload(
            WordWheelSolver(), scale=0.1, measure_slowdown=False
        )
        assert row.plain_seconds == 0.0
        assert row.slowdown == float("inf")
        assert row.matches_paper_counts()


class TestSummaryAggregation:
    def test_summary_math(self, mandelbrot_row):
        summary = EvaluationSummary(rows=(mandelbrot_row,))
        assert summary.total_instances == 7
        assert summary.total_use_cases == 4
        assert summary.precision == pytest.approx(1.0)
        assert summary.total_reduction == pytest.approx(1 - 4 / 7)
        assert summary.all_counts_match

    def test_empty_summary(self):
        summary = EvaluationSummary(rows=())
        assert summary.total_reduction == 0.0
        assert summary.precision == 0.0
        assert summary.mean_speedup == 1.0

    def test_render_table4(self, mandelbrot_row):
        text = render_table4(EvaluationSummary(rows=(mandelbrot_row,)))
        assert "Mandelbrot" in text
        assert "precision" in text


class TestFractionAnalysis:
    @pytest.fixture(scope="class")
    def rows(self):
        return run_fraction_analysis()

    def test_paper_fractions_exact(self, rows):
        for row in rows:
            assert row.measured_fraction == pytest.approx(
                row.paper_fraction, abs=0.0005
            ), row.name

    def test_ordering(self, rows):
        assert fractions_explain_speedups(rows)

    def test_amdahl_bounds_speedup(self, rows):
        for row in rows:
            assert row.program_speedup <= row.amdahl_limit + 1e-9

    def test_paper_fraction_lookup(self):
        assert paper_fraction("CPU Benchmarks") == pytest.approx(
            7600 / 8060, abs=1e-9
        )
        with pytest.raises(KeyError):
            paper_fraction("nope")

    def test_table6_rows_complete(self):
        assert len(TABLE6_PAPER_ROWS) == 4

    def test_render_table6(self, rows):
        text = render_table6(rows)
        assert "94.29%" in text

    def test_render_table7(self):
        text = render_table7()
        assert "This work" in text
