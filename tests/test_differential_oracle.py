"""Differential-correctness trials: batch vs streaming vs daemon.

The fast tests here run a few dozen seeded trials with the full fault
vocabulary on every PR; the 500-trial acceptance sweep is marked
``slow`` (CI runs it in a dedicated job, locally:
``pytest -m slow tests/test_differential_oracle.py``).

The harness must not just pass on correct code — it must *fail* on
broken code.  ``TestOracleCatchesRealBugs`` deliberately breaks the
daemon's overlap dedup and asserts the oracle notices within a bounded
number of trials, which is the evidence that the passing runs mean
something.
"""

from __future__ import annotations

import pytest

from repro.service.protocol import ProtocolError
from repro.service.session import Session
from repro.testing import (
    DifferentialOracle,
    generate_trace,
    run_batch_path,
    run_streaming_path,
    summarize_report,
)


class TestPathAgreementNoFaults:
    def test_batch_and_streaming_agree_over_many_seeds(self):
        for seed in range(40):
            trace = generate_trace(seed)
            batch = summarize_report(run_batch_path(trace))
            streaming = summarize_report(run_streaming_path(trace))
            assert batch == streaming, f"seed {seed}: {trace.describe()}"

    def test_window_size_does_not_matter(self):
        trace = generate_trace(11)
        reference = summarize_report(run_streaming_path(trace, window=64))
        for window in (1, 7, 128, 10_000):
            assert summarize_report(run_streaming_path(trace, window=window)) == (
                reference
            ), f"window {window}"

    def test_faultless_oracle_trials(self):
        with DifferentialOracle(fault_intensity=0.0) as oracle:
            results = oracle.run_trials(10, base_seed=0)
        assert all(r.ok for r in results)
        assert all(r.faults_injected == 0 for r in results)


class TestPathAgreementUnderFaults:
    def test_oracle_trials_with_full_fault_vocabulary(self):
        with DifferentialOracle(fault_intensity=0.35) as oracle:
            results = oracle.run_trials(25, base_seed=0)
        failures = [r for r in results if not r.ok]
        assert not failures, "\n".join(r.describe() for r in failures)
        # The run must actually have exercised the fault machinery.
        assert sum(r.faults_injected for r in results) >= 10
        kinds = {f.kind for r in results for f in r.plan.injected}
        assert len(kinds) >= 4

    def test_trials_are_reproducible(self):
        with DifferentialOracle(fault_intensity=0.35) as oracle:
            first = oracle.run_trial(3)
            second = oracle.run_trial(3)
        assert first.ok and second.ok
        assert first.trace.events == second.trace.events
        assert first.plan.faults == second.plan.faults

    @pytest.mark.slow
    def test_acceptance_sweep_500_trials(self):
        """The PR's acceptance criterion: 500 seeded trials through the
        fault proxy, zero divergence between the three paths."""
        with DifferentialOracle(fault_intensity=0.25) as oracle:
            results = oracle.run_trials(500, base_seed=0, stop_on_failure=False)
        failures = [r for r in results if not r.ok]
        assert not failures, "\n".join(r.describe() for r in failures)
        assert sum(r.faults_injected for r in results) >= 100


def _ingest_without_overlap_skip(self, start, raws, stage=0):
    """Session.ingest with the dedup rewind removed: retransmitted
    overlap is folded again instead of skipped."""
    with self._lock:
        if self.state == "finished":
            raise ProtocolError(f"session {self.session_id} already finished")
        if start > self.received:
            raise ProtocolError(
                f"event gap: window starts at {start} but only "
                f"{self.received} events were received"
            )
        self.received = max(self.received, start + len(raws))
        self.touch()
        self.pipeline.submit(raws)  # BUG: folds the overlap twice
        self.rate.tick(len(raws))
    return len(raws)


class TestOracleCatchesRealBugs:
    def test_broken_dedup_is_caught_within_50_trials(self, monkeypatch):
        monkeypatch.setattr(Session, "ingest", _ingest_without_overlap_skip)
        with DifferentialOracle(
            fault_intensity=0.4, fault_kinds=("duplicate", "reset")
        ) as oracle:
            results = oracle.run_trials(50, base_seed=0, stop_on_failure=True)
            failures = [r for r in results if not r.ok]
            assert failures, (
                "broken overlap dedup survived 50 duplicate/reset trials — "
                "the oracle has lost its teeth"
            )
            first = failures[0]
            assert first.mismatches
            # Failing trials shrink to something small to stare at.
            minimal = oracle.shrink_failure(first, max_rounds=60)
            assert len(minimal.events) <= len(first.trace.events)
            assert not oracle.run_trial(first.seed, trace=minimal).ok

    def test_shrunk_failure_replays_with_same_seed(self, monkeypatch):
        monkeypatch.setattr(Session, "ingest", _ingest_without_overlap_skip)
        with DifferentialOracle(
            fault_intensity=0.5, fault_kinds=("duplicate",)
        ) as oracle:
            results = oracle.run_trials(50, base_seed=100, stop_on_failure=True)
            failing = next((r for r in results if not r.ok), None)
            assert failing is not None
            # Replay is deterministic: same seed, same verdict.
            assert not oracle.run_trial(failing.seed, trace=failing.trace).ok
