"""Resource-exhaustion governance: the pressure ladder, the FaultFS
test double it is exercised with, the journal's self-healing append
path, and the acceptance sweep — ENOSPC at *every* byte budget must
leave a state directory that fsck passes and recovery replays with
exact cursor accounting.
"""

from __future__ import annotations

import errno

import pytest

from repro.service.durability import AdmissionStage, SessionJournal, recover_session_dir
from repro.service.fsck import fsck_session_dir
from repro.service.governor import (
    RESOURCE_ERRNOS,
    RealFS,
    ResourceGovernor,
    is_resource_error,
)
from repro.testing import SimClock
from repro.testing.faults import FaultFS


def _enospc() -> OSError:
    return OSError(errno.ENOSPC, "disk full")


def _raws(n: int, base: int = 0) -> list:
    return [(1, 0, 0, (base + i) % 4, 4, 0, None) for i in range(n)]


class TestClassification:
    def test_resource_errnos_are_resource_errors(self):
        for code in RESOURCE_ERRNOS:
            assert is_resource_error(OSError(code, "x"))

    def test_other_errors_are_not(self):
        assert not is_resource_error(OSError(errno.EBADF, "x"))
        assert not is_resource_error(ValueError("x"))


class TestPressureLadder:
    def test_starts_normal(self):
        gov = ResourceGovernor(clock=SimClock())
        assert gov.pressure_stage() == AdmissionStage.NORMAL

    def test_first_failure_demands_compaction(self):
        gov = ResourceGovernor(clock=SimClock())
        gov.record_failure("journal-append", _enospc())
        assert gov.pressure_stage() == AdmissionStage.JOURNAL_COMPACT

    def test_sustained_failure_escalates_to_shed_and_stops(self):
        gov = ResourceGovernor(clock=SimClock(), escalate_after=3)
        for _ in range(1 + 3):
            gov.record_failure("journal-append", _enospc())
        assert gov.pressure_stage() == AdmissionStage.JOURNAL
        for _ in range(3):
            gov.record_failure("journal-append", _enospc())
        assert gov.pressure_stage() == AdmissionStage.SHED
        for _ in range(10):  # the ladder has a top rung
            gov.record_failure("journal-append", _enospc())
        assert gov.pressure_stage() == AdmissionStage.SHED

    def test_cooldown_decays_one_rung_at_a_time(self):
        clock = SimClock()
        gov = ResourceGovernor(clock=clock, escalate_after=1, cooldown=5.0)
        for _ in range(4):
            gov.record_failure("checkpoint", _enospc())
        assert gov.pressure_stage() == AdmissionStage.SHED
        clock.advance(5.0)
        assert gov.pressure_stage() == AdmissionStage.JOURNAL
        clock.advance(5.0)
        assert gov.pressure_stage() == AdmissionStage.JOURNAL_COMPACT
        clock.advance(5.0)
        assert gov.pressure_stage() == AdmissionStage.NORMAL

    def test_new_failure_resets_the_quiet_timer(self):
        clock = SimClock()
        gov = ResourceGovernor(clock=clock, escalate_after=1, cooldown=5.0)
        gov.record_failure("journal-append", _enospc())
        clock.advance(4.0)
        gov.record_failure("journal-append", _enospc())
        clock.advance(4.0)  # 8s since first, 4s since last: no decay
        assert gov.pressure_stage() == AdmissionStage.JOURNAL

    def test_force_pressure_never_lowers(self):
        gov = ResourceGovernor(clock=SimClock(), escalate_after=1)
        for _ in range(4):
            gov.record_failure("journal-append", _enospc())
        gov.force_pressure(1)
        assert gov.pressure_stage() == AdmissionStage.SHED

    def test_stats_surface_every_ledger_counter(self):
        gov = ResourceGovernor(clock=SimClock())
        gov.record_failure("journal-append", _enospc())
        gov.record_failure("checkpoint", OSError(errno.EMFILE, "fds"))
        gov.note_refused()
        gov.note_compaction()
        stats = gov.stats()
        assert stats["pressure_stage"] == "journal-compact"
        assert stats["failures_by_errno"] == {"ENOSPC": 1, "EMFILE": 1}
        assert stats["failures_by_op"] == {"journal-append": 1, "checkpoint": 1}
        assert stats["refused_windows"] == 1
        assert stats["compactions"] == 1
        for key in ("state_bytes", "state_budget_bytes", "budget_overruns",
                    "budget_evictions"):
            assert key in stats

    def test_nonpositive_budget_rejected(self):
        with pytest.raises(ValueError, match="state_budget_bytes"):
            ResourceGovernor(state_budget_bytes=0)


class TestStateBudgetAccounting:
    def test_measure_and_over_budget(self, tmp_path):
        (tmp_path / "a.bin").write_bytes(b"x" * 600)
        (tmp_path / "sub").mkdir()
        (tmp_path / "sub" / "b.bin").write_bytes(b"y" * 600)
        gov = ResourceGovernor(state_budget_bytes=1000, clock=SimClock())
        assert gov.measure_state(tmp_path) == 1200
        assert gov.over_budget()
        (tmp_path / "a.bin").unlink()
        gov.measure_state(tmp_path)
        assert not gov.over_budget()

    def test_no_budget_is_never_over(self, tmp_path):
        gov = ResourceGovernor(clock=SimClock())
        gov.measure_state(tmp_path)
        assert not gov.over_budget()


class TestFaultFS:
    def test_duck_types_realfs(self):
        for name in dir(RealFS):
            if not name.startswith("_"):
                assert hasattr(FaultFS, name), name

    def test_enospc_budget_and_relieve(self, tmp_path):
        fs = FaultFS(enospc_after_bytes=10)
        with (tmp_path / "f").open("wb") as fh:
            fs.write(fh, b"x" * 8)
            with pytest.raises(OSError) as ei:
                fs.write(fh, b"y" * 8)
            assert ei.value.errno == errno.ENOSPC
            fs.relieve(100)
            fs.write(fh, b"y" * 8)
            fs.relieve()  # lift entirely
            fs.write(fh, b"z" * 10_000)
        assert fs.writes_failed == 1

    def test_partial_write_lands_prefix_then_fails(self, tmp_path):
        fs = FaultFS(enospc_after_bytes=5, partial_writes=True)
        path = tmp_path / "f"
        with path.open("wb") as fh:
            with pytest.raises(OSError):
                fs.write(fh, b"abcdefgh")
        assert path.read_bytes() == b"abcde"  # the torn-record case

    def test_eio_every_kth_read(self, tmp_path):
        path = tmp_path / "f"
        path.write_bytes(b"data")
        fs = FaultFS(eio_every_reads=3)
        fs.read_bytes(path)
        fs.read_bytes(path)
        with pytest.raises(OSError) as ei:
            fs.read_bytes(path)
        assert ei.value.errno == errno.EIO
        fs.read_bytes(path)  # counter-based: next one succeeds

    def test_from_spec_roundtrip(self):
        fs = FaultFS.from_spec("enospc-after=4096,partial,eio-every=7")
        assert fs.enospc_after_bytes == 4096
        assert fs.partial_writes
        assert fs.eio_every_reads == 7

    def test_from_spec_rejects_unknown_keys(self):
        with pytest.raises(ValueError, match="no-such-key"):
            FaultFS.from_spec("no-such-key=1")

    def test_from_seed_is_deterministic(self):
        a, b = FaultFS.from_seed(42), FaultFS.from_seed(42)
        assert a.enospc_after_bytes == b.enospc_after_bytes
        assert a.eio_every_reads == b.eio_every_reads
        assert a.fsync_stall_seconds == b.fsync_stall_seconds


class TestJournalUnderPressure:
    def test_failed_append_leaves_no_torn_record(self, tmp_path):
        fs = FaultFS(enospc_after_bytes=400, partial_writes=True)
        gov = ResourceGovernor(fs=fs, clock=SimClock())
        journal = SessionJournal(tmp_path / "s", fs=fs, governor=gov)
        acked = 0
        for i in range(10):
            try:
                journal.append_events(acked, _raws(4, acked))
            except OSError:
                break
            acked += 4
        assert journal.append_failures >= 1
        assert gov.stats()["failures_by_op"].get("journal-append", 0) >= 1
        journal.close()
        # Self-healing truncate: replay sees exactly the acked events,
        # with no torn tail for recovery to complain about.
        recovered = recover_session_dir(tmp_path / "s")
        assert recovered.received == acked
        assert recovered.truncated_bytes == 0

    def test_append_succeeds_again_after_relief(self, tmp_path):
        fs = FaultFS(enospc_after_bytes=300, partial_writes=True)
        journal = SessionJournal(tmp_path / "s", fs=fs)
        acked = 0
        with pytest.raises(OSError):
            while True:
                journal.append_events(acked, _raws(4, acked))
                acked += 4
        fs.relieve()  # the operator freed disk space
        journal.append_events(acked, _raws(4, acked))
        acked += 4
        journal.close()
        assert recover_session_dir(tmp_path / "s").received == acked

    def test_construction_on_full_disk_defers_the_failure(self, tmp_path):
        # Crash-recovery on the very volume that caused the crash: the
        # journal must come up (degraded), not abort session startup.
        fs = FaultFS(enospc_after_bytes=0)
        gov = ResourceGovernor(fs=fs, clock=SimClock())
        journal = SessionJournal(tmp_path / "s", fs=fs, governor=gov)
        assert journal.append_failures == 1
        assert gov.stats()["failures_by_op"] == {"journal-open": 1}
        with pytest.raises(OSError):
            journal.append_events(0, _raws(2))
        fs.relieve()
        journal.append_events(0, _raws(2))
        journal.close()
        assert recover_session_dir(tmp_path / "s").received == 2


class TestEnospcEveryByte:
    """The acceptance sweep: run the disk out of space at every single
    byte budget.  Whatever the journal acked must fsck clean and replay
    to exactly the acked cursor — no budget may produce a state dir
    that is torn, gapped, or lies about what it holds."""

    @pytest.mark.parametrize("partial", [False, True])
    def test_every_budget_leaves_consistent_state(self, tmp_path, partial):
        # Measure the fault-free footprint first so the sweep provably
        # crosses every write boundary.
        probe_dir = tmp_path / "probe"
        probe_fs = FaultFS()
        journal = SessionJournal(probe_dir, fs=probe_fs)
        journal.append_register([{"id": 1, "kind": "list", "site": None,
                                  "label": "t"}])
        for w in range(3):
            journal.append_events(w * 4, _raws(4, w * 4))
        journal.close()
        total = probe_fs.bytes_written
        assert total > 0

        for budget in range(total + 1):
            directory = tmp_path / f"b{budget:05d}"
            fs = FaultFS(enospc_after_bytes=budget, partial_writes=partial)
            journal = SessionJournal(directory, fs=fs)
            acked = 0
            try:
                journal.append_register(
                    [{"id": 1, "kind": "list", "site": None, "label": "t"}]
                )
                for w in range(3):
                    journal.append_events(acked, _raws(4, acked))
                    acked += 4
            except OSError as exc:
                assert exc.errno == errno.ENOSPC
            journal.close()
            if not directory.exists():
                # Budget so small even the segment magic failed; the
                # open was unwound completely.  Nothing was acked.
                assert acked == 0
                continue
            report = fsck_session_dir(directory)
            assert report["ok"], (budget, report["problems"])
            recovered = recover_session_dir(directory)
            assert recovered.received == acked, (budget, partial)
