"""Unit tests for the tracked (proxy) data structures."""

from __future__ import annotations

import pytest

from repro.events import AccessKind, OperationKind, StructureKind, collecting
from repro.structures import (
    TrackedArray,
    TrackedDict,
    TrackedList,
    TrackedQueue,
    TrackedStack,
    as_tracked,
    tracked_class,
)


def ops_of(structure):
    return [ev.op for ev in structure.profile()]


class TestTrackedListBehaviour:
    """The proxy must behave exactly like a plain list."""

    def test_append_and_index(self):
        with collecting():
            xs = TrackedList()
            xs.append(10)
            xs.append(20)
            assert xs[0] == 10 and xs[1] == 20
            assert len(xs) == 2

    def test_negative_indexing(self):
        with collecting():
            xs = TrackedList([1, 2, 3])
            assert xs[-1] == 3
            xs[-1] = 30
            assert xs[2] == 30

    def test_slicing_returns_plain_list(self):
        with collecting():
            xs = TrackedList(range(10))
            assert xs[2:5] == [2, 3, 4]
            assert xs[::3] == [0, 3, 6, 9]

    def test_slice_assignment(self):
        with collecting():
            xs = TrackedList([0, 0, 0, 0])
            xs[1:3] = [7, 8]
            assert xs.raw() == [0, 7, 8, 0]

    def test_insert_remove_pop(self):
        with collecting():
            xs = TrackedList([1, 3])
            xs.insert(1, 2)
            assert xs.raw() == [1, 2, 3]
            xs.remove(2)
            assert xs.raw() == [1, 3]
            assert xs.pop() == 3
            assert xs.pop(0) == 1
            assert len(xs) == 0

    def test_remove_missing_raises(self):
        with collecting():
            xs = TrackedList([1])
            with pytest.raises(ValueError):
                xs.remove(99)

    def test_sort_reverse(self):
        with collecting():
            xs = TrackedList([3, 1, 2])
            xs.sort()
            assert xs.raw() == [1, 2, 3]
            xs.reverse()
            assert xs.raw() == [3, 2, 1]
            xs.sort(reverse=True)
            assert xs.raw() == [3, 2, 1]

    def test_sort_with_key(self):
        with collecting():
            xs = TrackedList(["bb", "a", "ccc"])
            xs.sort(key=len)
            assert xs.raw() == ["a", "bb", "ccc"]

    def test_contains_index_count(self):
        with collecting():
            xs = TrackedList([5, 6, 6])
            assert 6 in xs
            assert 99 not in xs
            assert xs.index(6) == 1
            assert xs.count(6) == 2

    def test_iteration_yields_all(self):
        with collecting():
            xs = TrackedList(range(5))
            assert list(iter(xs)) == [0, 1, 2, 3, 4]

    def test_extend_iadd_add(self):
        with collecting():
            xs = TrackedList([1])
            xs.extend([2, 3])
            xs += [4]
            assert xs.raw() == [1, 2, 3, 4]
            assert xs + [5] == [1, 2, 3, 4, 5]

    def test_clear_and_bool(self):
        with collecting():
            xs = TrackedList([1])
            assert xs
            xs.clear()
            assert not xs
            assert len(xs) == 0

    def test_equality(self):
        with collecting():
            assert TrackedList([1, 2]) == [1, 2]
            assert TrackedList([1, 2]) == TrackedList([1, 2])
            assert TrackedList([1]) != [2]

    def test_unhashable(self):
        with collecting():
            with pytest.raises(TypeError):
                hash(TrackedList())

    def test_delitem(self):
        with collecting():
            xs = TrackedList([1, 2, 3, 4])
            del xs[1]
            assert xs.raw() == [1, 3, 4]
            del xs[0:2]
            assert xs.raw() == [4]

    def test_dotnet_aliases(self):
        with collecting():
            xs = TrackedList()
            xs.add(1)
            xs.add_range([2, 3])
            assert xs.raw() == [1, 2, 3]
            assert xs.index_of(2) == 1
            assert xs.contains(3)

    def test_for_each(self):
        with collecting():
            seen = []
            TrackedList([1, 2, 3]).for_each(seen.append)
            assert seen == [1, 2, 3]


class TestTrackedListEvents:
    """The proxy must emit the right event stream."""

    def test_append_emits_insert_at_back(self):
        with collecting():
            xs = TrackedList()
            xs.append("a")
            xs.append("b")
            profile = xs.profile()
        inserts = [ev for ev in profile if ev.op is OperationKind.INSERT]
        assert [ev.position for ev in inserts] == [0, 1]
        assert all(ev.targets_back for ev in inserts)
        assert all(ev.kind is AccessKind.WRITE for ev in inserts)

    def test_init_event_first(self):
        with collecting():
            xs = TrackedList()
            assert xs.profile()[0].op is OperationKind.INIT

    def test_read_event_position_and_kind(self):
        with collecting():
            xs = TrackedList([1, 2, 3])
            _ = xs[1]
            ev = xs.profile()[-1]
        assert ev.op is OperationKind.READ
        assert ev.position == 1
        assert ev.kind is AccessKind.READ

    def test_negative_read_normalized(self):
        with collecting():
            xs = TrackedList([1, 2, 3])
            _ = xs[-1]
            assert xs.profile()[-1].position == 2

    def test_remove_emits_search_then_delete(self):
        with collecting():
            xs = TrackedList([1, 2, 3])
            xs.remove(2)
            events = list(xs.profile())[-2:]
        assert events[0].op is OperationKind.SEARCH
        assert events[1].op is OperationKind.DELETE
        assert events[1].position == 1

    def test_whole_structure_ops(self):
        with collecting():
            xs = TrackedList([2, 1])
            xs.sort()
            xs.reverse()
            xs.copy()
            xs.clear()
            ops = ops_of(xs)
        assert OperationKind.SORT in ops
        assert OperationKind.REVERSE in ops
        assert OperationKind.COPY in ops
        assert ops[-1] is OperationKind.CLEAR

    def test_iteration_emits_forall_then_reads(self):
        with collecting():
            xs = TrackedList([1, 2])
            list(xs)
            events = list(xs.profile())
        kinds = [ev.op for ev in events]
        forall_at = kinds.index(OperationKind.FORALL)
        assert kinds[forall_at + 1 :] == [OperationKind.READ, OperationKind.READ]
        assert [ev.position for ev in events[forall_at + 1 :]] == [0, 1]

    def test_capacity_reported_as_size(self):
        """Figure 2: a pre-sized list reports capacity while filling."""
        with collecting():
            xs = TrackedList(capacity=10)
            for i in range(10):
                xs.append(i)
            profile = xs.profile()
        insert_sizes = [
            ev.size for ev in profile if ev.op is OperationKind.INSERT
        ]
        assert insert_sizes == [10] * 10

    def test_capacity_growth_emits_resize(self):
        with collecting():
            xs = TrackedList(capacity=4)
            for i in range(5):
                xs.append(i)
            ops = ops_of(xs)
        assert OperationKind.RESIZE in ops
        assert xs.capacity == 8

    def test_no_capacity_means_size_equals_len(self):
        with collecting():
            xs = TrackedList()
            xs.append(1)
            assert xs.profile()[-1].size == 1

    def test_raw_is_event_free(self):
        with collecting():
            xs = TrackedList([1, 2])
            before = len(xs.profile())
        assert xs.raw() == [1, 2]

    def test_search_records_found_position(self):
        with collecting():
            xs = TrackedList([7, 8, 9])
            assert 9 in xs
            assert xs.profile()[-1].position == 2
            assert 100 not in xs
            assert xs.profile()[-1].position is None

    def test_constructor_contents_recorded_as_inserts(self):
        with collecting():
            xs = TrackedList([1, 2, 3])
            assert xs.profile().count(OperationKind.INSERT) == 3


class TestTrackedArray:
    def test_length_constructor(self):
        with collecting():
            arr = TrackedArray(5)
            assert len(arr) == 5
            assert arr.raw() == [0] * 5

    def test_fill_value(self):
        with collecting():
            arr = TrackedArray(3, fill=None)
            assert arr.raw() == [None] * 3

    def test_iterable_constructor(self):
        with collecting():
            arr = TrackedArray([1, 2, 3])
            assert arr.raw() == [1, 2, 3]

    def test_get_set(self):
        with collecting():
            arr = TrackedArray(3)
            arr[1] = 42
            assert arr[1] == 42
            arr[-1] = 7
            assert arr[2] == 7

    def test_insert_reallocates(self):
        with collecting():
            arr = TrackedArray([1, 3])
            arr.insert(1, 2)
            assert arr.raw() == [1, 2, 3]
            ops = ops_of(arr)
        assert OperationKind.RESIZE in ops
        assert OperationKind.COPY in ops
        assert OperationKind.INSERT in ops

    def test_delete_reallocates(self):
        with collecting():
            arr = TrackedArray([1, 2, 3])
            arr.delete(1)
            assert arr.raw() == [1, 3]
            assert OperationKind.RESIZE in ops_of(arr)

    def test_delete_out_of_range(self):
        with collecting():
            arr = TrackedArray(2)
            with pytest.raises(IndexError):
                arr.delete(5)

    def test_resize_grow_and_shrink(self):
        with collecting():
            arr = TrackedArray([1, 2])
            arr.resize(4, fill=9)
            assert arr.raw() == [1, 2, 9, 9]
            arr.resize(1)
            assert arr.raw() == [1]

    def test_fill_all_writes_forward(self):
        with collecting():
            arr = TrackedArray(4)
            arr.fill_all(5)
            writes = [
                ev for ev in arr.profile() if ev.op is OperationKind.WRITE
            ]
        assert [ev.position for ev in writes] == [0, 1, 2, 3]

    def test_slice_assignment_must_preserve_length(self):
        with collecting():
            arr = TrackedArray(4)
            arr[0:2] = [1, 2]
            assert arr.raw() == [1, 2, 0, 0]
            with pytest.raises(ValueError):
                arr[0:2] = [1, 2, 3]

    def test_search_and_contains(self):
        with collecting():
            arr = TrackedArray([10, 20])
            assert 20 in arr
            assert arr.index(10) == 0
            assert arr.index_of(20) == 1

    def test_kind_is_array(self):
        with collecting():
            assert TrackedArray(1).profile().kind is StructureKind.ARRAY


class TestTrackedDict:
    def test_mapping_behaviour(self):
        with collecting():
            d = TrackedDict({"a": 1})
            d["b"] = 2
            assert d["a"] == 1
            assert d.get("b") == 2
            assert d.get("zz", -1) == -1
            assert "a" in d
            assert len(d) == 2
            del d["a"]
            assert "a" not in d

    def test_insert_vs_write_distinction(self):
        with collecting():
            d = TrackedDict()
            d["k"] = 1  # insert
            d["k"] = 2  # overwrite
            ops = [ev.op for ev in d.profile()]
        assert OperationKind.INSERT in ops
        assert OperationKind.WRITE in ops

    def test_pop_update_setdefault(self):
        with collecting():
            d = TrackedDict()
            d.update({"x": 1, "y": 2})
            assert d.pop("x") == 1
            assert d.pop("zz", "dflt") == "dflt"
            assert d.setdefault("y", 9) == 2
            assert d.setdefault("z", 9) == 9

    def test_pop_missing_raises(self):
        with collecting():
            with pytest.raises(KeyError):
                TrackedDict().pop("nope")

    def test_views_and_copy(self):
        with collecting():
            d = TrackedDict({"a": 1, "b": 2})
            assert set(d.keys()) == {"a", "b"}
            assert sorted(d.values()) == [1, 2]
            assert dict(d.items()) == {"a": 1, "b": 2}
            assert d.copy() == {"a": 1, "b": 2}

    def test_positionless_events(self):
        with collecting():
            d = TrackedDict()
            d["k"] = 1
            _ = d["k"]
            assert all(ev.position is None for ev in d.profile())

    def test_clear(self):
        with collecting():
            d = TrackedDict({"a": 1})
            d.clear()
            assert len(d) == 0
            assert d.profile()[-1].op is OperationKind.CLEAR


class TestTrackedStackQueue:
    def test_stack_lifo(self):
        with collecting():
            st = TrackedStack()
            st.push(1)
            st.push(2)
            assert st.peek() == 2
            assert st.pop() == 2
            assert st.pop() == 1
            with pytest.raises(IndexError):
                st.pop()

    def test_stack_events_at_back(self):
        with collecting():
            st = TrackedStack()
            st.push("a")
            st.push("b")
            st.pop()
            events = [
                ev
                for ev in st.profile()
                if ev.op in (OperationKind.INSERT, OperationKind.DELETE)
            ]
        assert all(ev.targets_back for ev in events)

    def test_stack_iterates_top_down(self):
        with collecting():
            st = TrackedStack([1, 2, 3])
            assert list(st) == [3, 2, 1]

    def test_queue_fifo(self):
        with collecting():
            q = TrackedQueue()
            q.enqueue(1)
            q.enqueue(2)
            assert q.peek() == 1
            assert q.dequeue() == 1
            assert q.dequeue() == 2
            with pytest.raises(IndexError):
                q.dequeue()

    def test_queue_dequeues_front(self):
        with collecting():
            q = TrackedQueue([1, 2])
            q.dequeue()
            deletes = [
                ev for ev in q.profile() if ev.op is OperationKind.DELETE
            ]
        assert all(ev.position == 0 for ev in deletes)

    def test_contains_and_clear(self):
        with collecting():
            q = TrackedQueue([1, 2])
            assert 2 in q and 9 not in q
            q.clear()
            assert not q
            st = TrackedStack([5])
            assert 5 in st
            st.clear()
            assert len(st) == 0


class TestRegistryAndSites:
    def test_as_tracked_dispatch(self):
        with collecting():
            assert isinstance(as_tracked([1]), TrackedList)
            assert isinstance(as_tracked({"a": 1}), TrackedDict)
            assert isinstance(as_tracked((1, 2)), TrackedArray)

    def test_as_tracked_passthrough(self):
        with collecting():
            xs = TrackedList()
            assert as_tracked(xs) is xs

    def test_as_tracked_rejects_unknown(self):
        with pytest.raises(TypeError):
            as_tracked(42)

    def test_tracked_class_lookup(self):
        assert tracked_class(StructureKind.LIST) is TrackedList
        with pytest.raises(KeyError):
            tracked_class(StructureKind.HASHTABLE)

    def test_allocation_site_is_caller(self):
        with collecting():
            xs = TrackedList(label="here")
        site = xs.allocation_site
        assert site.filename.endswith("test_structures.py")
        assert site.function == "test_allocation_site_is_caller"
        assert site.variable == "here"

    def test_instance_ids_unique(self):
        with collecting() as session:
            a = TrackedList()
            b = TrackedList()
            c = TrackedArray(1)
        assert len({a.instance_id, b.instance_id, c.instance_id}) == 3
        assert session.instance_count == 3
