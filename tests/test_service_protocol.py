"""Wire-protocol round trips, partial feeds, and spill robustness."""

from __future__ import annotations

import random
import struct

import pytest

from repro.events import (
    RECORD_SIZE,
    OperationKind,
    SpillWriter,
    pack_record,
    read_spill_raw,
    record_is_plausible,
    unpack_record,
)
from repro.events.spill import MAGIC
from repro.service import (
    MAX_FRAME_BYTES,
    FrameDecoder,
    MessageType,
    ProtocolError,
    decode_events,
    decode_json,
    encode_events,
    encode_frame,
    encode_json,
)


def _random_raw(rng: random.Random):
    position = None if rng.random() < 0.2 else rng.randrange(0, 10_000)
    wall = None if rng.random() < 0.5 else rng.random() * 100
    return (
        rng.randrange(0, 1_000),
        rng.choice(list(OperationKind)).value,
        rng.randrange(0, 2),
        position,
        rng.randrange(0, 10_000),
        rng.randrange(0, 8),
        wall,
    )


class TestRecordRoundTrip:
    def test_pack_unpack_identity(self):
        rng = random.Random(7)
        for _ in range(500):
            raw = _random_raw(rng)
            assert unpack_record(pack_record(raw)) == raw

    def test_none_position_and_wall(self):
        raw = (1, int(OperationKind.SORT), 1, None, 10, 0, None)
        assert unpack_record(pack_record(raw)) == raw

    def test_record_size(self):
        assert len(pack_record((0, 0, 0, None, 0, 0, None))) == RECORD_SIZE


class TestFrameRoundTrip:
    def test_roundtrip(self):
        frame = encode_frame(MessageType.HELLO, b"payload")
        decoder = FrameDecoder()
        assert decoder.feed(frame) == [(MessageType.HELLO, b"payload")]

    def test_byte_by_byte_partial_feed(self):
        rng = random.Random(11)
        frames = [
            (rng.randrange(1, 9), bytes(rng.randrange(256) for _ in range(rng.randrange(0, 50))))
            for _ in range(20)
        ]
        stream = b"".join(encode_frame(t, p) for t, p in frames)
        decoder = FrameDecoder()
        out = []
        for i in range(len(stream)):
            out.extend(decoder.feed(stream[i : i + 1]))
        assert out == frames
        assert decoder.pending_bytes == 0

    def test_random_chunking(self):
        rng = random.Random(13)
        frames = [(MessageType.EVENTS, bytes(i % 256 for i in range(n))) for n in (0, 1, 39, 4096)]
        stream = b"".join(encode_frame(t, p) for t, p in frames)
        decoder = FrameDecoder()
        out, i = [], 0
        while i < len(stream):
            n = rng.randrange(1, 64)
            out.extend(decoder.feed(stream[i : i + n]))
            i += n
        assert out == frames

    def test_zero_length_frame_rejected(self):
        decoder = FrameDecoder()
        with pytest.raises(ProtocolError, match="< 1"):
            decoder.feed(struct.pack("!I", 0))

    def test_oversized_frame_rejected_without_allocation(self):
        decoder = FrameDecoder()
        with pytest.raises(ProtocolError, match="MAX_FRAME_BYTES"):
            decoder.feed(struct.pack("!I", MAX_FRAME_BYTES + 1))

    def test_oversized_encode_rejected(self):
        with pytest.raises(ProtocolError):
            encode_frame(MessageType.EVENTS, b"x" * MAX_FRAME_BYTES)

    def test_json_control_roundtrip(self):
        obj = {"session": "abc", "received": 42, "resumed": True}
        frames = FrameDecoder().feed(encode_json(MessageType.ACK, obj))
        assert len(frames) == 1
        mtype, payload = frames[0]
        assert mtype == MessageType.ACK
        assert decode_json(payload) == obj

    def test_malformed_json_rejected(self):
        with pytest.raises(ProtocolError):
            decode_json(b"{nope")
        with pytest.raises(ProtocolError):
            decode_json(b"[1,2]")


class TestEventsPayload:
    def test_roundtrip(self):
        rng = random.Random(3)
        raws = [_random_raw(rng) for _ in range(1000)]
        frames = FrameDecoder().feed(encode_events(17, raws))
        mtype, payload = frames[0]
        assert mtype == MessageType.EVENTS
        start, decoded = decode_events(payload)
        assert start == 17
        assert decoded == raws

    def test_empty_window(self):
        _, payload = FrameDecoder().feed(encode_events(0, []))[0]
        assert decode_events(payload) == (0, [])

    def test_truncated_payload_rejected(self):
        _, payload = FrameDecoder().feed(encode_events(0, [(1, 0, 0, 0, 1, 0, None)]))[0]
        with pytest.raises(ProtocolError, match="body bytes"):
            decode_events(payload[:-1])

    def test_short_header_rejected(self):
        with pytest.raises(ProtocolError, match="header"):
            decode_events(b"\x00\x00")

    def test_validate_passes_clean_frames(self):
        rng = random.Random(9)
        raws = [_random_raw(rng) for _ in range(200)]
        _, payload = FrameDecoder().feed(encode_events(3, raws))[0]
        assert decode_events(payload, validate=True) == (3, raws)

    def test_validate_rejects_implausible_record(self):
        raws = [(1, int(OperationKind.READ), 0, i, 10, 0, None) for i in range(5)]
        _, payload = FrameDecoder().feed(encode_events(40, raws))[0]
        blob = bytearray(payload)
        # Trash the middle record in place.
        offset = 12 + 2 * RECORD_SIZE
        blob[offset : offset + RECORD_SIZE] = b"\xff" * RECORD_SIZE
        with pytest.raises(ProtocolError, match="stream index 40.*1 implausible"):
            decode_events(bytes(blob), validate=True)
        # Unvalidated decoding still succeeds — rejection is the
        # daemon's explicit choice, not a property of the codec.
        start, decoded = decode_events(bytes(blob))
        assert start == 40 and len(decoded) == 5


class TestSpillCorruptionSkipping:
    def _write(self, path, raws):
        with SpillWriter(path) as writer:
            writer.write_batch(raws)

    def test_corrupt_mid_file_record_skipped_with_warning(self, tmp_path):
        path = tmp_path / "events.spill"
        raws = [(i, int(OperationKind.READ), 0, i, 100, 0, None) for i in range(10)]
        self._write(path, raws)
        blob = bytearray(path.read_bytes())
        # Trash record 4 in place (flags byte -> undefined bits, op -> 255).
        offset = len(MAGIC) + 4 * RECORD_SIZE
        blob[offset : offset + RECORD_SIZE] = b"\xff" * RECORD_SIZE
        path.write_bytes(bytes(blob))
        with pytest.warns(RuntimeWarning, match="skipped 1 corrupt"):
            back = read_spill_raw(path)
        assert back == raws[:4] + raws[5:]

    def test_clean_file_no_warning(self, tmp_path):
        import warnings

        path = tmp_path / "events.spill"
        raws = [(i, int(OperationKind.WRITE), 1, i, 50, 0, None) for i in range(100)]
        self._write(path, raws)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert read_spill_raw(path) == raws

    def test_truncated_tail_still_silent(self, tmp_path):
        path = tmp_path / "events.spill"
        raws = [(i, int(OperationKind.READ), 0, i, 10, 0, None) for i in range(5)]
        self._write(path, raws)
        blob = path.read_bytes()
        path.write_bytes(blob[: len(blob) - 7])  # tear the last record
        assert read_spill_raw(path) == raws[:4]

    def test_bad_magic_still_raises(self, tmp_path):
        path = tmp_path / "not_a_spill.bin"
        path.write_bytes(b"NOTMAGIC" + b"\x00" * 80)
        with pytest.raises(ValueError, match="bad magic"):
            read_spill_raw(path)

    def test_record_is_plausible_on_valid_records(self):
        rng = random.Random(23)
        for _ in range(200):
            assert record_is_plausible(pack_record(_random_raw(rng)))
        assert not record_is_plausible(b"\xff" * RECORD_SIZE)

    def test_multiple_corrupt_records_all_counted(self, tmp_path):
        path = tmp_path / "events.spill"
        raws = [(i, int(OperationKind.READ), 0, i, 100, 0, None) for i in range(20)]
        self._write(path, raws)
        blob = bytearray(path.read_bytes())
        for index in (2, 9, 15):
            offset = len(MAGIC) + index * RECORD_SIZE
            blob[offset : offset + RECORD_SIZE] = b"\xff" * RECORD_SIZE
        path.write_bytes(bytes(blob))
        with pytest.warns(RuntimeWarning, match="skipped 3 corrupt"):
            back = read_spill_raw(path)
        assert back == [raw for i, raw in enumerate(raws) if i not in (2, 9, 15)]

    def test_corruption_straddling_read_chunk_boundary(self, tmp_path):
        # iter_spill_raw reads in 4096-record chunks; records 4095 and
        # 4096 sit on either side of the first boundary and must both
        # be screened, not conflated with a truncated tail.
        path = tmp_path / "events.spill"
        n = 4096 + 50
        raws = [(i, int(OperationKind.READ), 0, i, n, 0, None) for i in range(n)]
        self._write(path, raws)
        blob = bytearray(path.read_bytes())
        for index in (4095, 4096):
            offset = len(MAGIC) + index * RECORD_SIZE
            blob[offset : offset + RECORD_SIZE] = b"\xff" * RECORD_SIZE
        path.write_bytes(bytes(blob))
        with pytest.warns(RuntimeWarning, match="skipped 2 corrupt"):
            back = read_spill_raw(path)
        assert len(back) == n - 2
        assert back == raws[:4095] + raws[4097:]

    def test_corrupt_record_plus_truncated_tail(self, tmp_path):
        # The two degradation modes compose: mid-file corruption warns
        # and is skipped, the torn tail ends the stream silently.
        path = tmp_path / "events.spill"
        raws = [(i, int(OperationKind.READ), 0, i, 10, 0, None) for i in range(8)]
        self._write(path, raws)
        blob = bytearray(path.read_bytes())
        offset = len(MAGIC) + 3 * RECORD_SIZE
        blob[offset : offset + RECORD_SIZE] = b"\xff" * RECORD_SIZE
        blob = blob[: len(blob) - 11]  # tear the final record
        path.write_bytes(bytes(blob))
        with pytest.warns(RuntimeWarning, match="skipped 1 corrupt"):
            back = read_spill_raw(path)
        assert back == raws[:3] + raws[4:7]
