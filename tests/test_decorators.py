"""Unit tests for the @instrumented function decorator."""

from __future__ import annotations

import pytest

from repro.events import collecting
from repro.instrument import analyze_function, instrumented
from repro.usecases import UseCaseKind


@instrumented
def build_and_scan(n: int) -> int:
    index = []
    for i in range(n):
        index.append(i * 2)
    total = 0
    for _ in range(12):
        for i in range(len(index)):
            total += index[i]
    return total


@instrumented(dicts=True)
def build_lookup(n: int) -> int:
    lookup = {}
    for i in range(n):
        lookup[i] = i * i
    return len(lookup)


def plain_helper(n: int) -> list:
    return [i for i in range(n)]


class TestInstrumentedDecorator:
    def test_result_unchanged(self):
        with collecting():
            assert build_and_scan(50) == sum(i * 2 for i in range(50)) * 12

    def test_rewrites_counted(self):
        assert build_and_scan.__dsspy_rewrites__ == 1

    def test_analyze_function(self):
        with collecting():
            build_and_scan(300)
        report = analyze_function(build_and_scan)
        kinds = {u.kind for u in report.use_cases}
        assert UseCaseKind.FREQUENT_LONG_READ in kinds
        labels = {u.profile.label for u in report.use_cases}
        assert labels == {"index"}

    def test_dicts_option(self):
        with collecting() as session:
            assert build_lookup(10) == 10
        assert session.instance_count == 1
        profile = session.profiles()[0]
        assert profile.label == "lookup"

    def test_uninstrumented_function_rejected(self):
        with pytest.raises(ValueError, match="has not recorded"):
            analyze_function(plain_helper)

    def test_never_called_rejected(self):
        @instrumented
        def never_called():
            xs = []
            return xs

        with pytest.raises(ValueError, match="has not recorded"):
            analyze_function(never_called)

    def test_closure_rejected(self):
        captured = 5

        def closure_fn():
            xs = []
            xs.append(captured)
            return xs

        with pytest.raises(ValueError, match="closes over"):
            instrumented(closure_fn)

    def test_metadata_preserved(self):
        assert build_and_scan.__name__ == "build_and_scan"

    def test_multiple_calls_accumulate(self):
        with collecting() as first:
            build_and_scan(150)
        with collecting() as second:
            build_and_scan(150)
        report = analyze_function(build_and_scan)
        # Both sessions' instances appear.
        assert report.instances_analyzed >= 2
