"""Shared-memory ring transport: ring mechanics and the full client ↔
daemon path, including the edges that only bite in production —
wrap-around, overrun backpressure, stale segments, daemon restart
mid-stream, and fork children holding an inherited mapping.
"""

from __future__ import annotations

import struct

import pytest

from repro.events.spill import RECORD_SIZE, pack_record, unpack_records
from repro.service import ProfilingDaemon, RemoteChannel
from repro.service.shm import HEADER_SIZE, MAGIC, ShmRing


def _records(start: int, count: int) -> bytes:
    return b"".join(
        pack_record((start + i, 1, 0, i, 100, 0, None)) for i in range(count)
    )


class TestRingMechanics:
    def test_create_attach_roundtrip(self):
        with ShmRing.create(capacity_records=16) as ring:
            consumer = ShmRing.attach(ring.name)
            try:
                data = _records(0, 5)
                assert ring.write(data) == len(data)
                assert consumer.read() == data
                assert consumer.used == 0
            finally:
                consumer.close()

    def test_wrap_around_preserves_records(self):
        with ShmRing.create(capacity_records=8) as ring:
            consumer = ShmRing.attach(ring.name)
            try:
                seen = []
                seq = 0
                # Push 5 records at a time through an 8-record ring: the
                # payload offset wraps repeatedly and every span must
                # come back intact and in order.
                for _ in range(10):
                    chunk = _records(seq, 5)
                    assert ring.write(chunk) == len(chunk)
                    seq += 5
                    seen.extend(unpack_records(consumer.read()))
                assert [raw[0] for raw in seen] == list(range(50))
            finally:
                consumer.close()

    def test_overrun_writes_partial_then_zero(self):
        with ShmRing.create(capacity_records=4) as ring:
            data = _records(0, 6)
            written = ring.write(data)
            assert written == 4 * RECORD_SIZE  # whole records that fit
            assert ring.write(data[written:]) == 0  # full: backpressure
            consumer = ShmRing.attach(ring.name)
            try:
                assert consumer.read() == data[:written]
                # Space reclaimed: the tail now fits.
                assert ring.write(data[written:]) == 2 * RECORD_SIZE
                assert consumer.read() == data[written:]
            finally:
                consumer.close()

    def test_write_never_splits_a_record(self):
        with ShmRing.create(capacity_records=4) as ring:
            consumer = ShmRing.attach(ring.name)
            try:
                ring.write(_records(0, 3))
                consumer.read()
                # Offset is now 3 records in; a 3-record write must span
                # the wrap point in two record-aligned memcpys.
                chunk = _records(3, 3)
                assert ring.write(chunk) == len(chunk)
                assert consumer.read() == chunk
            finally:
                consumer.close()

    def test_read_caps_at_max_bytes_whole_records(self):
        with ShmRing.create(capacity_records=8) as ring:
            consumer = ShmRing.attach(ring.name)
            try:
                ring.write(_records(0, 6))
                out = consumer.read(max_bytes=2 * RECORD_SIZE + 7)
                assert len(out) == 2 * RECORD_SIZE
                assert len(consumer.read()) == 4 * RECORD_SIZE
            finally:
                consumer.close()


class TestAttachValidation:
    def test_attach_unknown_name_raises_oserror(self):
        with pytest.raises(OSError):
            ShmRing.attach("dsspy-test-no-such-segment")

    def test_attach_rejects_foreign_segment(self):
        from multiprocessing import shared_memory

        shm = shared_memory.SharedMemory(create=True, size=HEADER_SIZE + 390)
        try:
            shm.buf[:8] = b"NOTARING"
            with pytest.raises(ValueError, match="bad magic"):
                ShmRing.attach(shm.name)
        finally:
            shm.close()
            shm.unlink()

    def test_attach_rejects_wrong_record_size(self):
        with ShmRing.create(capacity_records=4) as ring:
            # Corrupt the declared record size in the header.
            struct.pack_into("<I", ring._shm.buf, 12, RECORD_SIZE + 1)
            with pytest.raises(ValueError, match="records"):
                ShmRing.attach(ring.name)

    def test_attach_rejects_implausible_capacity(self):
        with ShmRing.create(capacity_records=4) as ring:
            struct.pack_into("<Q", ring._shm.buf, 16, 10**12)
            with pytest.raises(ValueError, match="capacity"):
                ShmRing.attach(ring.name)

    def test_header_constants(self):
        with ShmRing.create(capacity_records=2) as ring:
            assert bytes(ring._shm.buf[:8]) == MAGIC
            assert ring.capacity_bytes == 2 * RECORD_SIZE
            assert ring.generation > 0


def _capture(channel, count: int, start: int = 0) -> None:
    produce = channel.producer()
    for i in range(count):
        produce((0, 1, 0, (start + i) % 97, 100, 0, None))


class TestShmTransport:
    def test_end_to_end_capture(self):
        with ProfilingDaemon(port=0, session_linger=0.1) as daemon:
            channel = RemoteChannel(
                daemon.address, transport="shm", batch_size=64
            )
            assert channel._ring is not None  # daemon accepted the offer
            ring_name = channel._ring.name
            _capture(channel, 5000)
            channel.drain()
            assert channel.final_ack is not None
            assert channel.final_ack["received"] == 5000
            assert channel._ring is None  # unlinked at drain
            with pytest.raises(OSError):
                ShmRing.attach(ring_name)  # segment really is gone

    def test_tiny_ring_backpressure_delivers_everything(self):
        with ProfilingDaemon(port=0, session_linger=0.1) as daemon:
            channel = RemoteChannel(
                daemon.address,
                transport="shm",
                ring_records=64,
                batch_size=32,
                flush_interval=0.001,
            )
            _capture(channel, 5000)
            channel.drain()
            assert channel.final_ack is not None
            assert channel.final_ack["received"] == 5000
            # A 64-record ring cannot hold 5000 events: the producer
            # must have stalled on a full ring and retried.
            assert channel.ring_full > 0

    def test_daemon_restart_mid_stream_uses_fresh_ring(self, tmp_path):
        state = tmp_path / "state"
        daemon = ProfilingDaemon(port=0, session_linger=5.0, state_dir=state)
        host, port = daemon.address.split(":")
        channel = RemoteChannel(daemon.address, transport="shm", batch_size=64)
        first_ring = channel._ring.name
        try:
            _capture(channel, 2000)
            channel.snapshot()  # harvest barrier: ships into the ring
            daemon.crash()
            # The replacement daemon recovers the journaled session and
            # binds the same port; the client reconnects, resumes, and
            # negotiates a *new* ring — the dead daemon's segment (and
            # its counters) mean nothing to the recovered cursor.
            with ProfilingDaemon(
                host=host, port=int(port), session_linger=5.0, state_dir=state
            ) as reborn:
                assert reborn.address == f"{host}:{port}"
                _capture(channel, 2000, start=2000)
                channel.drain()
                assert channel.final_ack is not None
                assert channel.final_ack["received"] == 4000
                assert channel.reconnects >= 1
                assert channel.session_id in reborn.recovered_sessions
            # Both generations of ring segment are gone.
            with pytest.raises(OSError):
                ShmRing.attach(first_ring)
        finally:
            daemon.close()

    def test_declined_offer_falls_back_to_socket(self, monkeypatch):
        from repro.service import daemon as daemon_mod

        monkeypatch.setattr(
            daemon_mod.ProfilingDaemon,
            "_attach_shm",
            lambda self, session, offer: False,
        )
        with ProfilingDaemon(port=0, session_linger=0.1) as daemon:
            channel = RemoteChannel(daemon.address, transport="shm", batch_size=64)
            assert channel._ring is None  # declined: ring unlinked
            _capture(channel, 1000)
            channel.drain()
            assert channel.final_ack is not None
            assert channel.final_ack["received"] == 1000

    def test_fork_child_detaches_without_unlinking(self):
        with ProfilingDaemon(port=0, session_linger=0.1) as daemon:
            channel = RemoteChannel(daemon.address, transport="shm", batch_size=64)
            _capture(channel, 100)
            ring = channel._ring
            assert ring is not None
            # Simulate the at-fork child hook: the inherited mapping is
            # detached (never unlinked — the parent still owns it).
            channel._after_fork_child("disable")
            assert channel._ring is None
            assert channel.ring_full == 0
            assert ring._closed
            # The parent's segment must still exist.
            probe = ShmRing.attach(ring.name)
            probe.close()
            ring.unlink()  # parent-side cleanup for the test
            channel.drain()
