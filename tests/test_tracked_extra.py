"""Unit tests for the extension structures (set, sorted list, linked list)."""

from __future__ import annotations

import pytest

from repro.events import OperationKind, StructureKind, collecting
from repro.patterns import PatternType, detect
from repro.structures import (
    TrackedLinkedList,
    TrackedSet,
    TrackedSortedList,
    as_tracked,
)
from repro.usecases import UseCaseEngine, UseCaseKind

OP = OperationKind


class TestTrackedSet:
    def test_set_behaviour(self):
        with collecting():
            s = TrackedSet([1, 2])
            s.add(3)
            s.add(3)  # idempotent
            assert len(s) == 3
            assert 2 in s
            s.discard(2)
            assert 2 not in s
            s.remove(1)
            with pytest.raises(KeyError):
                s.remove(99)
            assert sorted(iter(s)) == [3]

    def test_union_and_clear(self):
        with collecting():
            s = TrackedSet([1])
            assert s.union({2}) == {1, 2}
            s.clear()
            assert not s

    def test_positionless_events(self):
        with collecting():
            s = TrackedSet()
            s.add(1)
            _ = 1 in s
            assert all(e.position is None for e in s.profile())

    def test_no_linear_use_cases(self):
        """Associative structures never carry the linear rules."""
        with collecting():
            s = TrackedSet()
            for i in range(300):
                s.add(i)
            profile = s.profile()
        assert UseCaseEngine().analyze_profile(profile) == []

    def test_equality(self):
        with collecting():
            assert TrackedSet([1, 2]) == {1, 2}
            assert TrackedSet([1]) == TrackedSet([1])


class TestTrackedSortedList:
    def test_stays_sorted(self):
        with collecting():
            sl = TrackedSortedList([5, 1, 3])
            assert sl.raw() == [1, 3, 5]
            sl.add(2)
            assert sl.raw() == [1, 2, 3, 5]

    def test_index_binary_search(self):
        with collecting():
            sl = TrackedSortedList(range(100))
            assert sl.index(37) == 37
            with pytest.raises(ValueError):
                sl.index(1000)
            assert 50 in sl
            assert 1000 not in sl

    def test_remove_and_delitem(self):
        with collecting():
            sl = TrackedSortedList([1, 2, 3])
            sl.remove(2)
            assert sl.raw() == [1, 3]
            del sl[0]
            assert sl.raw() == [3]

    def test_search_is_one_event(self):
        """Binary search records one Search event — unlike a list's
        linear scan, there is no read pattern to flag."""
        with collecting():
            sl = TrackedSortedList(range(64))
            before = len(sl.profile())
            sl.index(10)
            assert len(sl.profile()) == before + 1

    def test_random_inserts_show_no_insert_back(self):
        import random

        rng = random.Random(5)
        with collecting():
            sl = TrackedSortedList()
            for _ in range(200):
                sl.add(rng.random())
            analysis = detect(sl.profile())
        # Insert positions are value-driven, not end-driven: chance
        # adjacencies produce only short runs, never a long insertion
        # phase, so Long-Insert cannot fire.
        longest = max(
            (p.length for p in analysis.by_type(PatternType.INSERT_BACK)),
            default=0,
        )
        assert longest < 20
        kinds = {u.kind for u in UseCaseEngine().analyze_profile(sl.profile())}
        assert UseCaseKind.LONG_INSERT not in kinds

    def test_ascending_input_is_insert_back(self):
        with collecting():
            sl = TrackedSortedList()
            for i in range(150):
                sl.add(i)
            kinds = {
                u.kind for u in UseCaseEngine().analyze_profile(sl.profile())
            }
        # Pre-sorted input degenerates to appends: LI legitimately fires.
        assert UseCaseKind.LONG_INSERT in kinds

    def test_iteration(self):
        with collecting():
            sl = TrackedSortedList([3, 1, 2])
            assert list(sl) == [1, 2, 3]


class TestTrackedLinkedList:
    def test_append_and_index(self):
        with collecting():
            ll = TrackedLinkedList([10, 20, 30])
            assert len(ll) == 3
            assert ll[0] == 10
            assert ll[-1] == 30
            with pytest.raises(IndexError):
                _ = ll[5]

    def test_append_left_pop_left(self):
        with collecting():
            ll = TrackedLinkedList()
            ll.append_left(2)
            ll.append_left(1)
            ll.append(3)
            assert ll.raw() == [1, 2, 3]
            assert ll.pop_left() == 1
            assert ll.pop_left() == 2
            assert ll.pop_left() == 3
            with pytest.raises(IndexError):
                ll.pop_left()

    def test_contains_records_search(self):
        with collecting():
            ll = TrackedLinkedList([1, 2, 3])
            assert 3 in ll
            assert ll.profile()[-1].position == 2
            assert 99 not in ll
            assert ll.profile()[-1].position is None

    def test_iteration_and_clear(self):
        with collecting():
            ll = TrackedLinkedList([1, 2])
            assert list(ll) == [1, 2]
            ll.clear()
            assert not ll and ll.raw() == []

    def test_queue_usage_fires_iq_shape(self):
        """A linked list used as a queue still profiles queue-like —
        but Implement-Queue only targets lists-as-queues, so no advice
        (the structure is already right)."""
        with collecting():
            ll = TrackedLinkedList()
            for i in range(100):
                ll.append(i)
            while len(ll):
                ll.pop_left()
            profile = ll.profile()
        kinds = {u.kind for u in UseCaseEngine().analyze_profile(profile)}
        assert UseCaseKind.IMPLEMENT_QUEUE not in kinds

    def test_kind(self):
        with collecting():
            assert TrackedLinkedList().profile().kind is StructureKind.LINKED_LIST


class TestRegistryExtension:
    def test_as_tracked_set(self):
        with collecting():
            assert isinstance(as_tracked({1, 2}), TrackedSet)
            assert isinstance(as_tracked(frozenset([1])), TrackedSet)

    def test_registry_has_extensions(self):
        from repro.structures import TRACKED_CLASSES

        assert StructureKind.HASH_SET in TRACKED_CLASSES
        assert StructureKind.SORTED_LIST in TRACKED_CLASSES
        assert StructureKind.LINKED_LIST in TRACKED_CLASSES
