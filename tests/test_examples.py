"""Smoke tests: every example script runs to completion.

Examples are deliverables; these tests keep them working as the API
evolves.  Each runs in a subprocess with a small scale where the script
accepts one.
"""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).parent.parent / "examples"


def run_example(name: str, *args: str, timeout: int = 300) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
        cwd=EXAMPLES.parent,
    )
    assert result.returncode in (0, 1), (name, result.stderr[-2000:])
    return result.stdout


class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "DSspy advice" in out
        assert "Long-Insert" in out

    def test_priority_queue_rescue(self):
        out = run_example("priority_queue_rescue.py")
        assert "Frequent-Long-Read" in out
        assert "parallel_max() agrees" in out

    def test_instrument_program(self):
        out = run_example("instrument_program.py")
        assert "instantiation sites" in out
        assert "slowdown" in out

    def test_visualize_profiles(self, tmp_path):
        out = run_example("visualize_profiles.py", str(tmp_path / "gallery"))
        assert "fig2_snippet" in out
        assert (tmp_path / "gallery" / "fig2_snippet.svg").exists()

    def test_ci_gate(self):
        out = run_example("ci_gate.py")
        assert "CI GATE: FAILED" in out  # the demo intentionally regresses

    def test_parallel_rescue(self):
        out = run_example("parallel_rescue.py")
        assert "[OK] Mandelbrot" in out
        assert "contended" in out

    def test_compat_smoke_self(self):
        # CI crosses builds (compat-matrix job); here both trees are
        # this one — the harness itself must stay green.
        out = run_example("compat_smoke.py", "--check-frame-skip")
        assert "compat smoke OK" in out
        assert "frames_skipped: 1" in out

    @pytest.mark.slow
    def test_reproduce_paper(self):
        out = run_example("reproduce_paper.py", "0.08", timeout=600)
        assert "Table I" in out
        assert "Table IV" in out
        assert "Table VII" in out
        assert "76.92%" in out
