"""Unit tests for the fail-open runtime: firewall, breaker, lifecycle."""

from __future__ import annotations

import sys
import threading
import time

import pytest

from repro.events import collecting
from repro.events.batching import BatchingChannel
from repro.runtime import (
    CircuitBreaker,
    RuntimeGuard,
    Watchdog,
    active_guard,
    arm,
    channel_stall_probe,
    disarm,
    finish_with_deadline,
    firewall,
    heartbeat_probe,
)
from repro.runtime.guard import ACTIVE_GUARD
from repro.runtime.lifecycle import install_fork_safety
from repro.structures import TrackedList
from repro.structures.base import capture_site, set_site_capture, site_capture_enabled
from repro.testing import HangingChannel, HostileCollector, ProfilerBug, SimClock


@pytest.fixture(autouse=True)
def _no_leaked_guard():
    """Every test must leave the ambient guard slot empty."""
    yield
    assert ACTIVE_GUARD[0] is None, "test leaked an armed guard"


class TestCircuitBreaker:
    def test_trips_exactly_at_budget(self):
        breaker = CircuitBreaker(budget=3)
        assert breaker.record_fault("record") is False
        assert breaker.record_fault("record") is False
        assert breaker.state == CircuitBreaker.CLOSED
        assert breaker.record_fault("record") is True
        assert breaker.state == CircuitBreaker.OPEN
        assert "3/3" in breaker.trip_reason

    def test_open_absorbs_further_faults(self):
        breaker = CircuitBreaker(budget=1)
        assert breaker.record_fault() is True
        # Once open, later faults neither re-trip nor grow the count.
        assert breaker.record_fault() is False
        assert breaker.trips == 1

    def test_budget_must_be_positive(self):
        with pytest.raises(ValueError):
            CircuitBreaker(budget=0)

    def test_no_cooldown_means_trip_is_final(self):
        clock = SimClock()
        breaker = CircuitBreaker(budget=1, cooldown=None, clock=clock)
        breaker.record_fault()
        clock.advance(1e9)
        assert breaker.poll() is None
        assert breaker.state == CircuitBreaker.OPEN

    def test_half_open_reprobe_then_close(self):
        clock = SimClock()
        breaker = CircuitBreaker(budget=1, cooldown=10.0, probation=5.0, clock=clock)
        breaker.record_fault()
        assert breaker.poll() is None  # cooldown not yet elapsed
        clock.advance(10.0)
        assert breaker.poll() == "half-open"
        assert breaker.reprobes == 1
        clock.advance(5.0)
        assert breaker.poll() == "closed"
        # A clean probation restores the full budget.
        assert breaker.faults == 0
        assert breaker.trip_reason is None

    def test_fault_during_probation_retrips_with_doubled_cooldown(self):
        clock = SimClock()
        breaker = CircuitBreaker(budget=1, cooldown=10.0, probation=5.0, clock=clock)
        breaker.record_fault()
        clock.advance(10.0)
        assert breaker.poll() == "half-open"
        assert breaker.record_fault("record") is True
        assert breaker.state == CircuitBreaker.OPEN
        assert "re-probe failed" in breaker.trip_reason
        # Second trip doubles the effective cooldown: 10s is no longer
        # enough, 20s is.
        clock.advance(10.0)
        assert breaker.poll() is None
        clock.advance(10.0)
        assert breaker.poll() == "half-open"


class TestArming:
    def test_arm_disarm_restores_previous(self):
        outer, inner = RuntimeGuard(), RuntimeGuard()
        arm(outer)
        arm(inner)
        assert active_guard() is inner
        disarm(inner)
        assert active_guard() is outer
        disarm(outer)
        assert active_guard() is None

    def test_disarm_wrong_guard_raises(self):
        guard = RuntimeGuard()
        arm(guard)
        try:
            with pytest.raises(RuntimeError):
                disarm(RuntimeGuard())
        finally:
            disarm(guard)

    def test_firewall_context_manager(self):
        with firewall(budget=7) as guard:
            assert active_guard() is guard
            assert guard.budget == 7
        assert active_guard() is None


class TestFirewall:
    def test_contains_and_counts_record_faults(self):
        with firewall(budget=100) as guard:
            xs = TrackedList(collector=HostileCollector())
            for i in range(5):
                xs.append(i)
            contents = xs.to_list()
        report = guard.report()
        # 1 INIT + 5 appends + 1 copy, every one contained.
        assert report.by_category["record"] == 7
        assert report.state == "closed"
        assert contents == [0, 1, 2, 3, 4]

    def test_trips_after_budget_then_pass_through(self):
        collector = HostileCollector()
        with firewall(budget=4) as guard:
            xs = TrackedList(collector=collector)
            for i in range(50):
                xs.append(i)
            assert guard.tripped
            contents = xs.to_list()
        # Exactly `budget` faults were counted; every call after the
        # trip skipped the collector entirely (pass-through).
        assert guard.report().faults == 4
        assert collector.record_calls == 4
        assert contents == list(range(50))

    def test_register_failure_untracks_instance(self):
        collector = HostileCollector(fail_record=False, fail_register=True)
        with firewall(budget=100) as guard:
            xs = TrackedList(collector=collector)
            xs.append(1)
            xs.append(2)
        assert not xs.tracked
        assert xs.instance_id == -1
        assert xs.to_list() == [1, 2]
        assert guard.report().by_category["register"] == 1
        with pytest.raises(RuntimeError, match="untracked"):
            xs.profile()

    def test_construction_while_tripped_yields_plain_delegate(self):
        with firewall(budget=1) as guard:
            guard.trip("test")
            xs = TrackedList()
            xs.append(1)
        assert not xs.tracked
        assert xs.to_list() == [1]

    def test_reentrant_recording_is_suppressed(self):
        with firewall(budget=100) as guard:
            with collecting() as session:
                xs = TrackedList(label="outer")
                xs.append(1)
                guard._tls.inside = True
                try:
                    # A profiler internal touching tracked structures:
                    # no events, no registration, no deadlock.
                    ys = TrackedList(label="inner")
                    ys.append(2)
                    xs.append(3)
                finally:
                    guard._tls.inside = False
                xs.append(4)
        labels = session.profiles_by_label()
        assert "inner" not in labels
        assert not ys.tracked
        assert ys.raw() == [2]
        assert xs.raw() == [1, 3, 4]
        # outer recorded INIT + append(1) + append(4); append(3) was
        # suppressed by the in-profiler flag.
        assert len(labels["outer"]) == 3

    def test_unguarded_behaviour_is_fail_loud(self):
        with pytest.raises(ProfilerBug):
            TrackedList(collector=HostileCollector())

    def test_trip_fails_open_watched_channels(self):
        channel = BatchingChannel(policy="block", max_buffered=10)
        try:
            guard = RuntimeGuard(budget=1)
            guard.watch_channel(channel)
            guard.trip("test")
            assert channel.failed_open
            # The gate can never re-close: producers cannot block.
            assert channel._open[0]
        finally:
            channel.drain()

    def test_fault_machinery_failure_forces_pass_through(self):
        guard = RuntimeGuard(budget=100)
        guard._breaker = None  # break the breaker itself
        guard.fault("record", ValueError("x"))  # must not raise
        assert guard.tripped

    def test_report_describe_mentions_trip(self):
        with firewall(budget=1) as guard:
            guard.fault("post", ValueError("boom"))
        text = guard.report().describe()
        assert "open" in text
        assert "post" in text
        assert "boom" in text


class TestCaptureSite:
    def test_frame_walk_failure_returns_unknown_site(self, monkeypatch):
        def explode(depth):
            raise RuntimeError("no frames here")

        monkeypatch.setattr(sys, "_getframe", explode)
        site = capture_site("v")
        assert site.filename == "<unknown>"
        assert site.variable == "v"

    def test_frame_walk_failure_counts_a_site_fault(self, monkeypatch):
        monkeypatch.setattr(
            sys, "_getframe", lambda depth: (_ for _ in ()).throw(RuntimeError())
        )
        with firewall(budget=10) as guard:
            capture_site()
        assert guard.report().by_category["site"] == 1

    def test_no_sites_fast_path(self):
        assert site_capture_enabled()
        set_site_capture(False)
        try:
            site = capture_site("w")
            assert site.filename == "<unknown>"
            assert site.variable == "w"
            xs = TrackedList()
            assert xs.allocation_site.filename == "<unknown>"
        finally:
            set_site_capture(True)
        assert capture_site().filename != "<unknown>"


class TestBoundedDrain:
    def test_hanging_drain_is_bounded_and_trips(self):
        channel = HangingChannel(max_hold=30.0)
        guard = RuntimeGuard(budget=10, exit_deadline=0.3)
        with guard:
            with collecting(channel=channel) as session:
                xs = TrackedList()
                xs.append(1)
                start = time.perf_counter()
            elapsed = time.perf_counter() - start
        channel.release()
        assert elapsed < 5.0  # bounded, nowhere near the 30s hold
        assert guard.tripped
        assert "deadline" in guard.report().trip_reason
        assert session is not None

    def test_raising_finish_is_contained_with_guard(self):
        class Exploding:
            finished = False

            def finish(self):
                raise ProfilerBug("drain bug")

        guard = RuntimeGuard(budget=10)
        assert finish_with_deadline(Exploding(), guard=guard) is False
        assert guard.report().by_category["drain"] == 1

    def test_raising_finish_propagates_without_guard(self):
        class Exploding:
            def finish(self):
                raise ProfilerBug("drain bug")

        with pytest.raises(ProfilerBug):
            finish_with_deadline(Exploding(), guard=None, deadline=1.0)

    def test_healthy_finish_completes(self):
        class Fine:
            done = False

            def finish(self):
                self.done = True

        obj = Fine()
        assert finish_with_deadline(obj, guard=None, deadline=2.0) is True
        assert obj.done


class TestWatchdog:
    def test_dead_drainer_trips_guard(self):
        channel = BatchingChannel()
        channel.drain()  # closed channel is healthy...
        guard = RuntimeGuard(budget=10)
        dog = Watchdog(guard)
        dog.add_probe("channel", channel_stall_probe(channel))
        dog.tick()
        assert not guard.tripped  # ...because closed means done

        class FakeStalled:
            _closed = False
            drainer_error = None
            _drainer = threading.Thread(target=lambda: None)  # never started

        dog2 = Watchdog(guard)
        dog2.add_probe("channel", channel_stall_probe(FakeStalled()))
        dog2.tick()
        assert guard.tripped
        assert "stalled" in guard.report().trip_reason

    def test_drainer_error_is_a_stall(self):
        class FakeBroken:
            _closed = False
            drainer_error = ValueError("x")

        guard = RuntimeGuard(budget=10)
        dog = Watchdog(guard)
        dog.add_probe("channel", channel_stall_probe(FakeBroken()))
        dog.tick()
        assert guard.tripped

    def test_heartbeat_probe_on_gave_up_channel(self):
        class FakeGaveUp:
            gave_up = True
            _down_since = None

        guard = RuntimeGuard(budget=10)
        dog = Watchdog(guard)
        dog.add_probe("daemon", heartbeat_probe(FakeGaveUp()))
        dog.tick()
        assert guard.tripped

    def test_heartbeat_probe_down_too_long(self):
        clock = SimClock()

        class FakeDown:
            gave_up = False
            _down_since = 0.0

        probe = heartbeat_probe(FakeDown(), max_down=10.0, clock=clock)
        assert probe() is True
        clock.advance(11.0)
        assert probe() is False

    def test_raising_probe_is_a_contained_watchdog_fault(self):
        guard = RuntimeGuard(budget=10)
        dog = Watchdog(guard)
        dog.add_probe("bad", lambda: (_ for _ in ()).throw(ValueError("probe bug")))
        dog.tick()
        assert not guard.tripped
        assert guard.report().by_category["watchdog"] == 1

    def test_poll_reopens_pass_through_on_half_open(self):
        clock = SimClock()
        guard = RuntimeGuard(budget=1, cooldown=5.0, probation=1.0, clock=clock)
        guard.fault("record", ValueError("x"))
        assert guard.tripped
        clock.advance(5.0)
        guard.poll()
        assert not guard.tripped  # half-open: traffic allowed again
        clock.advance(1.0)
        guard.poll()
        assert not guard.tripped  # closed for good

    def test_start_stop_thread(self):
        guard = RuntimeGuard(budget=10)
        with Watchdog(guard, interval=0.01) as dog:
            time.sleep(0.05)
            assert dog._thread.is_alive()
        assert not dog._thread.is_alive()


class TestLifecycleConfig:
    def test_bad_fork_policy_rejected(self):
        with pytest.raises(ValueError):
            install_fork_safety("fork-bomb")
