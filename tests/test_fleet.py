"""The fleet subsystem: sharding, rebalance, router, supervisor
lifecycle, coordinator merging, the result cache, and batch runs.

Process-spawning tests keep fleets small (2 workers) and scales tiny —
this suite must stay fast on a 1-core machine; the heavy kill-a-worker
-mid-stream convergence scenario lives in ``examples/fleet_smoke.py``
(the CI fleet job), not here.
"""

from __future__ import annotations

import json
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.events import AccessKind, EventCollector, OperationKind, StructureKind
from repro.service import (
    FleetCoordinator,
    FleetSupervisor,
    ProfilingDaemon,
    RemoteChannel,
    ResultCache,
    SessionJournal,
    SessionRouter,
    fetch_snapshot,
    fetch_stats,
    fleet_run,
    rebalance_state_dir,
    scan_fleet_state_dir,
    shard_for,
)
from repro.service.fleet import shard_dir_name

REPO = Path(__file__).resolve().parent.parent


def _ingest(address: str, session_id: str, events: int = 40) -> None:
    """One complete remote session: register, record, drain (FIN)."""
    channel = RemoteChannel(address, session_id=session_id, give_up_after=15.0)
    collector = EventCollector(channel=channel, fastpath="off")
    iid = collector.register_instance(StructureKind.LIST)
    for i in range(events):
        collector.record(iid, OperationKind.READ, AccessKind.READ, i % 10, 10)
    channel.drain()


def _fabricate_session(directory: Path, events: int = 8) -> None:
    """An on-disk journaled session (unfinished, recoverable)."""
    with SessionJournal(directory) as journal:
        journal.append_register(
            [{"id": 1, "kind": "list", "site": None, "label": "t"}]
        )
        journal.append_events(
            0, [(1, 0, 0, i % 4, 4, 0, None) for i in range(events)]
        )


class TestShardFor:
    def test_deterministic_and_in_range(self):
        for n in (1, 2, 5, 8):
            for sid in ("a", "mandelbrot-x1-r0", "CPU Benchmarks-r3"):
                assert shard_for(sid, n) == shard_for(sid, n)
                assert 0 <= shard_for(sid, n) < n

    def test_spreads_sessions(self):
        # Not a uniformity proof — just that the hash is not degenerate.
        shards = {shard_for(f"session-{i}", 4) for i in range(64)}
        assert shards == {0, 1, 2, 3}

    def test_agrees_across_processes(self):
        # The property the fleet depends on: no PYTHONHASHSEED leakage.
        out = subprocess.run(
            [sys.executable, "-c",
             "from repro.service import shard_for; print(shard_for('abc', 8))"],
            capture_output=True, text=True,
            env={"PYTHONPATH": str(REPO / "src"), "PYTHONHASHSEED": "7",
                 "PATH": "/usr/bin:/bin"},
        )
        assert int(out.stdout) == shard_for("abc", 8)

    def test_rejects_empty_fleet(self):
        with pytest.raises(ValueError):
            shard_for("x", 0)


class TestRebalance:
    def test_moves_sessions_to_assigned_shards(self, tmp_path):
        # Top-level sessions (single-daemon layout) and a wrong-shard
        # session must all end up under their hash-assigned shard dir.
        _fabricate_session(tmp_path / "sess-a")
        wrong = 1 - shard_for("sess-b", 2)
        _fabricate_session(tmp_path / shard_dir_name(wrong) / "sess-b")
        moves = rebalance_state_dir(tmp_path, 2)
        assert {m["session"] for m in moves} == {"sess-a", "sess-b"}
        assert all(m["moved"] for m in moves)
        for sid in ("sess-a", "sess-b"):
            home = tmp_path / shard_dir_name(shard_for(sid, 2)) / sid
            assert home.is_dir()

    def test_in_place_session_is_untouched(self, tmp_path):
        home = tmp_path / shard_dir_name(shard_for("sess-c", 2)) / "sess-c"
        _fabricate_session(home)
        assert rebalance_state_dir(tmp_path, 2) == []
        assert home.is_dir()

    def test_duplicate_keeps_assigned_copy(self, tmp_path):
        assigned = tmp_path / shard_dir_name(shard_for("dup", 2)) / "dup"
        stray = tmp_path / "dup"
        _fabricate_session(assigned)
        _fabricate_session(stray)
        (moves,) = rebalance_state_dir(tmp_path, 2)
        assert moves["moved"] is False and "duplicate" in moves["note"]
        assert assigned.is_dir() and stray.is_dir()

    def test_scan_covers_both_layouts(self, tmp_path):
        _fabricate_session(tmp_path / "top")
        _fabricate_session(tmp_path / "shard-01" / "deep")
        (tmp_path / "shard-01" / "not-a-session").mkdir()
        names = {d.name for d in scan_fleet_state_dir(tmp_path)}
        assert names == {"top", "deep"}


class TestSnapshotProtocol:
    def test_snapshot_round_trips_engine_state(self):
        with ProfilingDaemon(port=0, session_linger=30.0) as daemon:
            _ingest(daemon.address, "snap-a")
            reply = fetch_snapshot(daemon.address)
            (snap,) = reply["snapshots"]
            assert snap["session"] == "snap-a"
            assert snap["engine"]["events_folded"] == snap["applied"]
            narrowed = fetch_snapshot(daemon.address, session="snap-a")
            assert narrowed["snapshots"][0]["session"] == "snap-a"

    def test_bound_port_satellite(self):
        with ProfilingDaemon(port=0) as daemon:
            assert daemon.bound_port == int(daemon.address.rsplit(":", 1)[1])
            assert daemon.bound_port != 0


class TestRouter:
    """Router over two in-process daemons — no subprocesses needed."""

    @pytest.fixture()
    def fleet(self):
        with ProfilingDaemon(port=0, session_linger=30.0) as a, ProfilingDaemon(
            port=0, session_linger=30.0
        ) as b:
            with SessionRouter([a.address, b.address]) as router:
                yield router, (a, b)

    def test_routes_by_session_hash(self, fleet):
        router, daemons = fleet
        for sid in ("r-one", "r-two", "r-three"):
            _ingest(router.address, sid)
            owner = daemons[shard_for(sid, 2)]
            assert sid in {s["session"] for s in owner.stats()["sessions"]}

    def test_aggregated_stats_and_snapshot(self, fleet):
        router, _ = fleet
        for sid in ("agg-1", "agg-2", "agg-3", "agg-4"):
            _ingest(router.address, sid)
        stats = fetch_stats(router.address)
        assert stats["fleet"] is True
        assert len(stats["workers"]) == 2
        assert {s["session"] for s in stats["sessions"]} >= {
            "agg-1", "agg-2", "agg-3", "agg-4"
        }
        assert all("worker" in s for s in stats["sessions"])
        reply = fetch_snapshot(router.address)
        assert {s["session"] for s in reply["snapshots"]} >= {"agg-1", "agg-4"}

    def test_unreachable_worker_yields_error_frame(self, fleet):
        router, daemons = fleet
        sid = "err-session"
        daemons[shard_for(sid, 2)].close()
        from repro.service.protocol import ProtocolError

        with pytest.raises((ProtocolError, OSError)):
            channel = RemoteChannel(
                router.address, session_id=sid, give_up_after=2.0
            )
            channel.post((1, 0, 0, 0, 1, 0, None))
            channel.drain()

    def test_worker_down_error_frame_names_worker(self, fleet):
        # The raw protocol view of the same failure: HELLO for a
        # session whose shard owner is down must be answered with an
        # ERROR frame that names the unreachable worker, not a silent
        # connection drop.
        router, daemons = fleet
        sid = "err-frame-session"
        dead = daemons[shard_for(sid, 2)]
        dead_address = dead.address
        dead.close()
        from repro.service import ServiceClient
        from repro.service.protocol import ProtocolError

        with pytest.raises(ProtocolError, match="unreachable") as excinfo:
            ServiceClient(router.address, session_id=sid)
        assert dead_address in str(excinfo.value)
        # The other shard still routes: the fleet is degraded, not down.
        alive_sid = next(
            f"alive-{i}" for i in range(100)
            if daemons[shard_for(f"alive-{i}", 2)].address != dead_address
        )
        _ingest(router.address, alive_sid, events=4)

    def test_coordinator_merges_across_workers(self, fleet):
        router, daemons = fleet
        # Pick ids that provably span both shards.
        sid_for_0 = next(f"co-{i}" for i in range(100) if shard_for(f"co-{i}", 2) == 0)
        sid_for_1 = next(f"co-{i}" for i in range(100) if shard_for(f"co-{i}", 2) == 1)
        sids = [sid_for_0, sid_for_1, "co-extra"]
        for sid in sids:
            _ingest(router.address, sid, events=20)
        merged = FleetCoordinator([d.address for d in daemons]).collect()
        assert merged["complete"] is True
        assert {s["session"] for s in merged["sessions"]} == set(sids)
        assert merged["events_folded"] == 60
        # Provenance: every flagged use case names its origin session.
        for use_case in merged["report"]["use_cases"]:
            assert use_case["origin"]["session"] in sids

    def test_coordinator_reports_partial_merge(self, fleet):
        router, daemons = fleet
        daemons[0].close()
        merged = FleetCoordinator([d.address for d in daemons]).collect()
        assert merged["complete"] is False
        assert merged["errors"]


class TestResultCache:
    def test_hit_after_put(self, tmp_path):
        cache = ResultCache(tmp_path)
        config = {"workload": "Mandelbrot", "scale": 0.5, "session": "m-0"}
        assert cache.get(config) is None
        cache.put(config, {"report": {"use_cases": []}, "received": 9})
        assert cache.get(config)["received"] == 9
        assert cache.hits == 1 and cache.misses == 1 and len(cache) == 1

    def test_any_config_change_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        config = {"workload": "Mandelbrot", "scale": 0.5, "session": "m-0"}
        cache.put(config, {"ok": True})
        assert cache.get({**config, "scale": 0.25}) is None

    def test_corrupt_entry_reads_as_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        config = {"session": "x"}
        cache.put(config, {"ok": True})
        cache.path(config).write_text("{torn", encoding="utf-8")
        assert cache.get(config) is None

    def test_entry_lock_is_exclusive_and_reentrant_after_release(self, tmp_path):
        cache = ResultCache(tmp_path)
        config = {"session": "locked"}
        with cache.lock(config):
            other = ResultCache(tmp_path)
            with pytest.raises(TimeoutError):
                with other.lock(config, timeout=0.2, poll=0.02):
                    pass
        # Released on exit: immediately acquirable again.
        with cache.lock(config, timeout=0.2):
            pass

    def test_lock_survives_holder_crash(self, tmp_path):
        # flock dies with the holder process: a SIGKILL'd holder's lock
        # is taken over without any timeout or manual cleanup.
        cache = ResultCache(tmp_path)
        config = {"session": "crashed"}
        holder = subprocess.Popen(
            [
                sys.executable,
                "-c",
                "from repro.service import ResultCache; import sys, time\n"
                f"c = ResultCache({str(tmp_path)!r})\n"
                "ctx = c.lock({'session': 'crashed'})\n"
                "ctx.__enter__()\n"
                "print('held', flush=True)\n"
                "time.sleep(60)\n",
            ],
            env={"PYTHONPATH": str(REPO / "src"), "PATH": "/usr/bin:/bin"},
            stdout=subprocess.PIPE,
            text=True,
        )
        try:
            assert holder.stdout.readline().strip() == "held"
            with pytest.raises(TimeoutError):
                with cache.lock(config, timeout=0.2, poll=0.02):
                    pass
            holder.kill()
            holder.wait(timeout=10)
            with cache.lock(config, timeout=5.0):
                pass
        finally:
            if holder.poll() is None:
                holder.kill()
                holder.wait()

    def test_lock_serializes_concurrent_fillers(self, tmp_path):
        import threading

        cache = ResultCache(tmp_path)
        config = {"session": "fill-once"}
        computed = []

        def fill(tag: str) -> None:
            with cache.lock(config, timeout=10.0):
                if cache.get(config) is None:
                    time.sleep(0.05)  # widen the race window
                    computed.append(tag)
                    cache.put(config, {"by": tag})

        threads = [
            threading.Thread(target=fill, args=(f"t{i}",)) for i in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(computed) == 1  # exactly one filler computed
        assert cache.get(config)["by"] == computed[0]


@pytest.mark.slow
class TestSupervisorIntegration:
    """One 2-worker fleet exercised end to end (subprocess workers)."""

    def test_lifecycle_restart_and_batch(self, tmp_path):
        state = tmp_path / "fleet"
        cache = ResultCache(tmp_path / "cache")
        with FleetSupervisor(
            2, state, heartbeat_timeout=60.0, startup_timeout=60.0
        ) as sup:
            assert len(sup.worker_addresses()) == 2
            assert all(a.endswith(tuple("0123456789")) for a in sup.worker_addresses())
            # Shard dirs exist; the router answers aggregated stats.
            assert (state / shard_dir_name(0)).is_dir()
            stats = sup.stats()
            assert stats["fleet"] is True and len(stats["workers"]) == 2

            # Batch orchestration against the live fleet, then a rerun
            # that must be served entirely from the cache.
            tasks = [
                {"workload": "Mandelbrot", "scale": 0.25, "session": "m-r0"},
                {"workload": "WordWheelSolver", "scale": 0.25, "session": "w-r0"},
            ]
            out = fleet_run(
                tasks, sup.address, cache, workers=sup.worker_addresses()
            )
            assert out["failures"] == []
            assert out["ran"] == 2 and out["cache_hits"] == 0
            rerun = fleet_run(
                tasks, sup.address, cache, workers=sup.worker_addresses()
            )
            assert rerun["cache_hits"] == 2 and rerun["ran"] == 0
            assert rerun["results"] == out["results"]

            # The coordinator's merged report covers both sessions.
            merged = sup.coordinator().collect()
            assert merged["complete"] is True
            assert {s["session"] for s in merged["sessions"]} == {"m-r0", "w-r0"}

            # Kill one worker; the monitor must respawn it on the same
            # port and the fleet must keep serving its shard.
            victim = sup.workers[0]
            old_port = victim.port
            sup.kill_worker(0)
            deadline = time.monotonic() + 60.0
            reachable = False
            while time.monotonic() < deadline and not reachable:
                if victim.restarts >= 1 and victim.proc.poll() is None:
                    try:
                        fetch_stats(victim.address, timeout=2.0)
                        reachable = True
                    except OSError:
                        pass
                time.sleep(0.1)
            assert reachable, "killed worker never came back"
            assert victim.port == old_port
            sid = next(
                f"post-restart-{i}"
                for i in range(100)
                if shard_for(f"post-restart-{i}", 2) == 0
            )
            _ingest(sup.address, sid)  # routed to the restarted worker
            assert sup.stats()["restarts"] == {"0": 1}
        # Drained: every worker process has exited.
        assert all(w.proc.poll() is not None for w in sup.workers)

    def test_fleet_recover_cli(self, tmp_path):
        # A torn-down fleet's state dir: one journaled-but-unfinished
        # session per shard, plus a top-level orphan.  One `dsspy
        # recover` invocation must rebuild all three.
        state = tmp_path / "fleet"
        _fabricate_session(state / shard_dir_name(0) / "sess-a", events=6)
        _fabricate_session(state / shard_dir_name(1) / "sess-b", events=4)
        _fabricate_session(state / "orphan", events=2)
        proc = subprocess.run(
            [sys.executable, "-m", "repro.cli", "recover", str(state), "--json"],
            capture_output=True, text=True,
            env={"PYTHONPATH": str(REPO / "src"), "PATH": "/usr/bin:/bin"},
        )
        assert proc.returncode == 0, proc.stderr
        assert "3 session(s) across 2 shard(s)" in proc.stdout
        recovered = json.loads(proc.stdout[proc.stdout.index("[") :])
        by_session = {r["session"]: r for r in recovered}
        assert set(by_session) == {"sess-a", "sess-b", "orphan"}
        assert by_session["sess-a"]["received"] == 6


class TestRecoverBanner:
    """Fast, in-process coverage of the `dsspy recover` fleet banner
    (the subprocess variant above is slow-marked)."""

    def test_fleet_banner_counts_sessions_and_shards(self, tmp_path, capsys):
        from repro.cli import main

        state = tmp_path / "fleet"
        _fabricate_session(state / shard_dir_name(0) / "ban-a", events=3)
        _fabricate_session(state / shard_dir_name(1) / "ban-b", events=3)
        _fabricate_session(state / shard_dir_name(1) / "ban-c", events=3)
        assert main(["recover", str(state)]) == 0
        out = capsys.readouterr().out
        assert "fleet state dir: recovering 3 session(s) across 2 shard(s)" in out

    def test_no_banner_for_single_daemon_layout(self, tmp_path, capsys):
        from repro.cli import main

        state = tmp_path / "solo"
        _fabricate_session(state / "only-session", events=3)
        assert main(["recover", str(state)]) == 0
        out = capsys.readouterr().out
        assert "fleet state dir" not in out
        assert "only-session" in out
