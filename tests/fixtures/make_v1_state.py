"""Generator for the committed ``state_v1`` fixture.

Run once against the pre-version-negotiation tree (journal magic
``DSPYWJ01``, checkpoint version 1) to produce a state directory in
the old on-disk format::

    PYTHONPATH=src python tests/fixtures/make_v1_state.py

The output is committed verbatim; tests migrate a *copy* of it with
``dsspy migrate``, verify it with ``dsspy fsck``, and compare the
replayed report against batch analysis of the identical seeded trace
(`generate_trace` is a pure function of its seed, so the events need
not be stored alongside the journal).

Do not regenerate with a newer tree — the whole point of the fixture
is that it was written by the old format.
"""

from __future__ import annotations

import shutil
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[2] / "src"))

from repro.service import SessionJournal, StreamingUseCaseEngine  # noqa: E402
from repro.service.session import Session  # noqa: E402
from repro.testing import generate_trace  # noqa: E402

#: (session id, trace seed) pairs — mirrored by the migration test.
SESSIONS = (("fixture-a", 1005), ("fixture-b", 1006))
WINDOW = 64


def main() -> None:
    root = Path(__file__).resolve().parent / "state_v1"
    if root.exists():
        shutil.rmtree(root)
    for session_id, seed in SESSIONS:
        trace = generate_trace(seed)
        journal = SessionJournal(root / session_id, segment_max_bytes=16 * 1024)
        session = Session(
            session_id,
            StreamingUseCaseEngine(),
            journal=journal,
            checkpoint_every=128,
        )
        for inst in trace.instances:
            session.register(inst.instance_id, inst.kind, None, inst.label)
        for offset in range(0, len(trace.events), WINDOW):
            session.ingest(offset, trace.events[offset : offset + WINDOW])
        # No FIN: the fixture mimics sessions interrupted mid-stream
        # (the case a rolling upgrade must carry across formats).
        session.abandon()
    for path in sorted(root.rglob("*")):
        print(path.relative_to(root.parent), path.stat().st_size if path.is_file() else "dir")


if __name__ == "__main__":
    main()
