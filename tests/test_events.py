"""Unit tests for the access-event substrate (repro.events)."""

from __future__ import annotations

import threading

import pytest

from repro.events import (
    AccessKind,
    AllocationSite,
    AsyncChannel,
    EventCollector,
    NO_POSITION,
    OperationKind,
    ProcessChannel,
    RuntimeProfile,
    StructureKind,
    SynchronousChannel,
    collecting,
    end_of,
    get_collector,
    materialize,
)

from .conftest import make_event, make_profile


class TestOperationKind:
    def test_read_like_ops(self):
        assert OperationKind.READ.is_read_like
        assert OperationKind.SEARCH.is_read_like
        assert OperationKind.COPY.is_read_like
        assert OperationKind.FORALL.is_read_like

    def test_write_like_ops(self):
        for op in (
            OperationKind.WRITE,
            OperationKind.INSERT,
            OperationKind.DELETE,
            OperationKind.CLEAR,
            OperationKind.SORT,
            OperationKind.REVERSE,
            OperationKind.RESIZE,
        ):
            assert op.is_write_like, op

    def test_read_write_partition(self):
        for op in OperationKind:
            if op is OperationKind.INIT:
                continue
            assert op.is_read_like != op.is_write_like, op

    def test_linear_kinds(self):
        assert StructureKind.LIST.is_linear
        assert StructureKind.ARRAY.is_linear
        assert StructureKind.STACK.is_linear
        assert not StructureKind.DICTIONARY.is_linear
        assert not StructureKind.HASH_SET.is_linear

    def test_end_of(self):
        assert end_of(10) == 9
        assert end_of(0) == 0


class TestAccessEvent:
    def test_front_back_helpers(self):
        ev = make_event(0, OperationKind.READ, 0, 10)
        assert ev.targets_front and not ev.targets_back
        ev = make_event(1, OperationKind.READ, 9, 10)
        assert ev.targets_back and not ev.targets_front
        ev = make_event(2, OperationKind.CLEAR, None, 10)
        assert not ev.targets_front and not ev.targets_back

    def test_size_zero_never_back(self):
        ev = make_event(0, OperationKind.READ, 0, 0)
        assert not ev.targets_back

    def test_describe_mentions_fields(self):
        ev = make_event(7, OperationKind.INSERT, 3, 4)
        text = ev.describe()
        assert "#7" in text and "insert" in text and "pos=3" in text

    def test_materialize_roundtrip(self):
        raw = (5, int(OperationKind.SORT), int(AccessKind.WRITE), None, 12, 2, None)
        ev = materialize(99, raw)
        assert ev.seq == 99
        assert ev.op is OperationKind.SORT
        assert ev.kind is AccessKind.WRITE
        assert ev.position is None
        assert ev.size == 12
        assert ev.thread_id == 2
        assert ev.instance_id == 5

    def test_events_are_frozen(self):
        ev = make_event(0, OperationKind.READ, 0, 1)
        with pytest.raises(AttributeError):
            ev.size = 5  # type: ignore[misc]


class TestRuntimeProfile:
    def test_vectorized_views_match_events(self):
        profile = make_profile(
            [
                (OperationKind.INSERT, 0, 1),
                (OperationKind.INSERT, 1, 2),
                (OperationKind.READ, 0, 2),
                (OperationKind.CLEAR, None, 0),
            ]
        )
        assert list(profile.seqs) == [0, 1, 2, 3]
        assert list(profile.positions) == [0, 1, 0, NO_POSITION]
        assert list(profile.sizes) == [1, 2, 2, 0]
        assert profile.count(OperationKind.INSERT) == 2
        assert profile.count(OperationKind.CLEAR) == 1

    def test_fractions(self):
        profile = make_profile(
            [
                (OperationKind.READ, 0, 2),
                (OperationKind.READ, 1, 2),
                (OperationKind.WRITE, 0, 2),
                (OperationKind.WRITE, 1, 2),
            ]
        )
        assert profile.read_fraction == pytest.approx(0.5)
        assert profile.write_fraction == pytest.approx(0.5)

    def test_empty_profile_safe(self):
        profile = RuntimeProfile(0)
        assert len(profile) == 0
        assert profile.read_fraction == 0.0
        assert profile.max_size == 0
        assert profile.final_size == 0
        assert profile.thread_ids == []
        assert profile.op_histogram() == {}

    def test_append_invalidates_cache(self):
        profile = make_profile([(OperationKind.READ, 0, 1)])
        assert profile.max_size == 1
        profile.append(make_event(1, OperationKind.INSERT, 1, 5))
        assert profile.max_size == 5

    def test_split_by_thread(self):
        events = [
            make_event(0, OperationKind.READ, 0, 2, thread_id=0),
            make_event(1, OperationKind.READ, 1, 2, thread_id=1),
            make_event(2, OperationKind.READ, 1, 2, thread_id=0),
        ]
        profile = RuntimeProfile.from_events(events)
        assert profile.is_multithreaded
        parts = profile.split_by_thread()
        assert len(parts[0]) == 2
        assert len(parts[1]) == 1
        assert parts[0][0].seq == 0 and parts[0][1].seq == 2

    def test_slice(self):
        profile = make_profile(
            [(OperationKind.READ, i, 10) for i in range(10)]
        )
        part = profile.slice(2, 5)
        assert len(part) == 3
        assert part[0].position == 2

    def test_op_histogram(self):
        profile = make_profile(
            [
                (OperationKind.INSERT, 0, 1),
                (OperationKind.INSERT, 1, 2),
                (OperationKind.SORT, None, 2),
            ]
        )
        hist = profile.op_histogram()
        assert hist[OperationKind.INSERT] == 2
        assert hist[OperationKind.SORT] == 1

    def test_from_events_empty(self):
        profile = RuntimeProfile.from_events([])
        assert len(profile) == 0


class TestAllocationSite:
    def test_str_with_variable(self):
        site = AllocationSite("a.py", 12, "main", "xs")
        assert "a.py:12" in str(site)
        assert "xs" in str(site)


class TestChannels:
    def test_synchronous_order(self):
        ch = SynchronousChannel()
        for i in range(100):
            ch.post((i,))
        assert ch.pending == 100
        drained = ch.drain()
        assert drained == [(i,) for i in range(100)]
        with pytest.raises(RuntimeError):
            ch.post((0,))

    def test_async_preserves_order(self):
        ch = AsyncChannel()
        for i in range(1000):
            ch.post((i,))
        drained = ch.drain()
        assert drained == [(i,) for i in range(1000)]

    def test_async_drain_idempotent(self):
        ch = AsyncChannel()
        ch.post((1,))
        assert ch.drain() == [(1,)]
        assert ch.drain() == [(1,)]

    def test_async_post_after_drain_raises(self):
        ch = AsyncChannel()
        ch.drain()
        with pytest.raises(RuntimeError):
            ch.post((1,))

    def test_process_channel_roundtrip(self):
        ch = ProcessChannel()
        for i in range(50):
            ch.post((i, 0, 0, None, 0, 0, None))
        drained = ch.drain()
        assert len(drained) == 50
        assert drained[0][0] == 0 and drained[-1][0] == 49


class TestEventCollector:
    def test_register_and_record(self, collector):
        iid = collector.register_instance(StructureKind.LIST, label="xs")
        collector.record(iid, OperationKind.INSERT, AccessKind.WRITE, 0, 1)
        collector.record(iid, OperationKind.READ, AccessKind.READ, 0, 1)
        profiles = collector.finish()
        assert len(profiles[iid]) == 2
        assert profiles[iid][0].op is OperationKind.INSERT
        assert profiles[iid][1].seq == 1

    def test_finish_idempotent(self, collector):
        iid = collector.register_instance(StructureKind.LIST)
        collector.record(iid, OperationKind.READ, AccessKind.READ, 0, 1)
        first = collector.finish()
        second = collector.finish()
        assert first is second or len(first[iid]) == len(second[iid]) == 1

    def test_events_route_to_right_instance(self, collector):
        a = collector.register_instance(StructureKind.LIST)
        b = collector.register_instance(StructureKind.ARRAY)
        collector.record(a, OperationKind.READ, AccessKind.READ, 0, 1)
        collector.record(b, OperationKind.WRITE, AccessKind.WRITE, 0, 1)
        collector.record(a, OperationKind.READ, AccessKind.READ, 0, 1)
        profiles = collector.finish()
        assert len(profiles[a]) == 2
        assert len(profiles[b]) == 1
        assert profiles[b].kind is StructureKind.ARRAY

    def test_dense_thread_ids(self, collector):
        iid = collector.register_instance(StructureKind.LIST)

        def worker():
            collector.record(iid, OperationKind.READ, AccessKind.READ, 0, 1)

        threads = [threading.Thread(target=worker) for _ in range(3)]
        collector.record(iid, OperationKind.READ, AccessKind.READ, 0, 1)
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        profile = collector.finish()[iid]
        ids = profile.thread_ids
        assert ids[0] == 0
        assert max(ids) <= 3

    def test_collecting_context_scopes_collector(self):
        outer = get_collector()
        with collecting() as session:
            assert get_collector() is session
        assert get_collector() is outer
        assert session.finished

    def test_nested_collecting(self):
        with collecting() as outer_session:
            with collecting() as inner_session:
                assert get_collector() is inner_session
            assert get_collector() is outer_session

    def test_wall_time_capture(self):
        collector = EventCollector(capture_wall_time=True)
        iid = collector.register_instance(StructureKind.LIST)
        collector.record(iid, OperationKind.READ, AccessKind.READ, 0, 1)
        ev = collector.finish()[iid][0]
        assert ev.wall_time is not None and ev.wall_time > 0

    def test_profiles_by_label(self, collector):
        collector.register_instance(StructureKind.LIST, label="a")
        collector.register_instance(StructureKind.LIST, label="b")
        by_label = collector.profiles_by_label()
        assert set(by_label) == {"a", "b"}

    def test_nonempty_profiles(self, collector):
        a = collector.register_instance(StructureKind.LIST)
        collector.register_instance(StructureKind.LIST)  # never touched
        collector.record(a, OperationKind.READ, AccessKind.READ, 0, 1)
        assert len(collector.nonempty_profiles()) == 1
        assert len(collector.profiles()) == 2

    def test_async_channel_collector(self):
        collector = EventCollector(channel=AsyncChannel())
        iid = collector.register_instance(StructureKind.LIST)
        for i in range(500):
            collector.record(iid, OperationKind.INSERT, AccessKind.WRITE, i, i + 1)
        profile = collector.finish()[iid]
        assert len(profile) == 500
        assert list(profile.seqs) == list(range(500))
