"""Unit tests for the ``dsspy`` command-line interface."""

from __future__ import annotations

import textwrap

import pytest

from repro.cli import build_parser, main


@pytest.fixture
def legacy_file(tmp_path):
    path = tmp_path / "legacy.py"
    path.write_text(
        textwrap.dedent(
            """
            def main():
                xs = []
                for i in range(300):
                    xs.append(i)
                return len(xs)
            """
        )
    )
    return path


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_analyze_args(self):
        args = build_parser().parse_args(
            ["analyze", "f.py", "--entry", "main", "--dicts", "--charts"]
        )
        assert args.file == "f.py"
        assert args.entry == "main"
        assert args.dicts and args.charts

    def test_tables_default_scale(self):
        args = build_parser().parse_args(["tables"])
        assert args.scale == 0.3


class TestAnalyze:
    def test_analyze_file(self, legacy_file, capsys):
        assert main(["analyze", str(legacy_file), "--entry", "main"]) == 0
        out = capsys.readouterr().out
        assert "1 sites instrumented" in out or "sites instrumented" in out
        assert "Long-Insert" in out
        assert "search space reduction" in out

    def test_analyze_with_charts(self, legacy_file, capsys):
        assert main(
            ["analyze", str(legacy_file), "--entry", "main", "--charts"]
        ) == 0
        out = capsys.readouterr().out
        assert "size envelope" in out


class TestScan:
    def test_scan_file(self, legacy_file, capsys):
        assert main(["scan", str(legacy_file)]) == 0
        out = capsys.readouterr().out
        assert "1 instantiation sites" in out

    def test_scan_directory(self, tmp_path, capsys):
        (tmp_path / "a.py").write_text("xs = []\nd = {}\n")
        assert main(["scan", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "dynamic instances: 2" in out


class TestTables:
    def test_table7(self, capsys):
        assert main(["tables", "table7"]) == 0
        assert "This work" in capsys.readouterr().out

    def test_unknown_table(self, capsys):
        assert main(["tables", "table99"]) == 2

    def test_table6(self, capsys):
        assert main(["tables", "table6"]) == 0
        assert "94.29%" in capsys.readouterr().out


class TestDemo:
    def test_demo(self, capsys):
        assert main(["demo"]) == 0
        out = capsys.readouterr().out
        assert "Long-Insert" in out
        assert "Frequent-Long-Read" in out


class TestTransformCommand:
    def test_transform_writes_output(self, legacy_file, tmp_path, capsys):
        out = tmp_path / "out.py"
        assert main(["transform", str(legacy_file), "-o", str(out)]) == 0
        text = out.read_text()
        assert "parallel_fill" in text
        assert "1 transforms" in capsys.readouterr().out

    def test_transform_dry_run(self, legacy_file, capsys):
        assert main(["transform", str(legacy_file), "--dry-run"]) == 0
        assert "parallelized fill loop" in capsys.readouterr().out

    def test_default_output_suffix(self, legacy_file, capsys):
        assert main(["transform", str(legacy_file)]) == 0
        assert legacy_file.with_suffix(".parallel.py").exists()


class TestPersistenceFlags:
    def test_save_then_load(self, legacy_file, tmp_path, capsys):
        archive = tmp_path / "cap.jsonl"
        assert main(
            ["analyze", str(legacy_file), "--entry", "main", "--save", str(archive)]
        ) == 0
        assert archive.exists()
        capsys.readouterr()
        assert main(["analyze", "--load", str(archive)]) == 0
        out = capsys.readouterr().out
        assert "archived profiles loaded" in out
        assert "Long-Insert" in out


class TestCompareCommand:
    def test_compare_archives(self, tmp_path, capsys):
        import textwrap

        queueish = tmp_path / "queueish.py"
        queueish.write_text(
            textwrap.dedent(
                """
                def main():
                    jobs = []
                    for i in range(90):
                        jobs.append(i)
                    while jobs:
                        jobs.pop(0)
                """
            )
        )
        fixed = tmp_path / "fixed.py"
        fixed.write_text("def main():\n    jobs = []\n    jobs.append(1)\n")
        before = tmp_path / "before.jsonl"
        after = tmp_path / "after.jsonl"
        assert main(["analyze", str(queueish), "--entry", "main", "--save", str(before)]) == 0
        assert main(["analyze", str(fixed), "--entry", "main", "--save", str(after)]) == 0
        capsys.readouterr()
        assert main(["compare", str(before), str(after)]) == 0
        out = capsys.readouterr().out
        assert "resolved: 1" in out
        assert "Implement-Queue" in out

    def test_compare_flags_new_smells(self, tmp_path, capsys):
        clean = tmp_path / "clean.py"
        clean.write_text("def main():\n    jobs = []\n    jobs.append(1)\n")
        dirty = tmp_path / "dirty.py"
        dirty.write_text(
            "def main():\n    jobs = []\n"
            "    for i in range(300):\n        jobs.append(i)\n"
        )
        a = tmp_path / "a.jsonl"
        b = tmp_path / "b.jsonl"
        main(["analyze", str(clean), "--entry", "main", "--save", str(a)])
        main(["analyze", str(dirty), "--entry", "main", "--save", str(b)])
        capsys.readouterr()
        assert main(["compare", str(a), str(b)]) == 1  # new smell -> nonzero
        assert "introduced: 1" in capsys.readouterr().out


class TestQualityCommand:
    def test_quality_passes_at_paper_thresholds(self, capsys):
        assert main(["quality"]) == 0
        out = capsys.readouterr().out
        assert "macro-F1" in out

    def test_quality_gate_can_fail(self, capsys):
        # An impossible bar: macro-F1 cannot exceed 1.
        assert main(["quality", "--min-f1", "1.01"]) == 1
