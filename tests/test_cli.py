"""Unit tests for the ``dsspy`` command-line interface."""

from __future__ import annotations

import textwrap

import pytest

from repro.cli import build_parser, main


@pytest.fixture
def legacy_file(tmp_path):
    path = tmp_path / "legacy.py"
    path.write_text(
        textwrap.dedent(
            """
            def main():
                xs = []
                for i in range(300):
                    xs.append(i)
                return len(xs)
            """
        )
    )
    return path


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_analyze_args(self):
        args = build_parser().parse_args(
            ["analyze", "f.py", "--entry", "main", "--dicts", "--charts"]
        )
        assert args.file == "f.py"
        assert args.entry == "main"
        assert args.dicts and args.charts

    def test_tables_default_scale(self):
        args = build_parser().parse_args(["tables"])
        assert args.scale == 0.3


class TestAnalyze:
    def test_analyze_file(self, legacy_file, capsys):
        assert main(["analyze", str(legacy_file), "--entry", "main"]) == 0
        out = capsys.readouterr().out
        assert "1 sites instrumented" in out or "sites instrumented" in out
        assert "Long-Insert" in out
        assert "search space reduction" in out

    def test_analyze_with_charts(self, legacy_file, capsys):
        assert main(
            ["analyze", str(legacy_file), "--entry", "main", "--charts"]
        ) == 0
        out = capsys.readouterr().out
        assert "size envelope" in out


class TestScan:
    def test_scan_file(self, legacy_file, capsys):
        assert main(["scan", str(legacy_file)]) == 0
        out = capsys.readouterr().out
        assert "1 instantiation sites" in out

    def test_scan_directory(self, tmp_path, capsys):
        (tmp_path / "a.py").write_text("xs = []\nd = {}\n")
        assert main(["scan", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "dynamic instances: 2" in out


class TestTables:
    def test_table7(self, capsys):
        assert main(["tables", "table7"]) == 0
        assert "This work" in capsys.readouterr().out

    def test_unknown_table(self, capsys):
        assert main(["tables", "table99"]) == 2

    def test_table6(self, capsys):
        assert main(["tables", "table6"]) == 0
        assert "94.29%" in capsys.readouterr().out


class TestDemo:
    def test_demo(self, capsys):
        assert main(["demo"]) == 0
        out = capsys.readouterr().out
        assert "Long-Insert" in out
        assert "Frequent-Long-Read" in out


class TestTransformCommand:
    def test_transform_writes_output(self, legacy_file, tmp_path, capsys):
        out = tmp_path / "out.py"
        assert main(["transform", str(legacy_file), "-o", str(out)]) == 0
        text = out.read_text()
        assert "parallel_fill" in text
        assert "1 transforms" in capsys.readouterr().out

    def test_transform_dry_run(self, legacy_file, capsys):
        assert main(["transform", str(legacy_file), "--dry-run"]) == 0
        assert "parallelized fill loop" in capsys.readouterr().out

    def test_default_output_suffix(self, legacy_file, capsys):
        assert main(["transform", str(legacy_file)]) == 0
        assert legacy_file.with_suffix(".parallel.py").exists()


class TestPersistenceFlags:
    def test_save_then_load(self, legacy_file, tmp_path, capsys):
        archive = tmp_path / "cap.jsonl"
        assert main(
            ["analyze", str(legacy_file), "--entry", "main", "--save", str(archive)]
        ) == 0
        assert archive.exists()
        capsys.readouterr()
        assert main(["analyze", "--load", str(archive)]) == 0
        out = capsys.readouterr().out
        assert "archived profiles loaded" in out
        assert "Long-Insert" in out


class TestCompareCommand:
    def test_compare_archives(self, tmp_path, capsys):
        import textwrap

        queueish = tmp_path / "queueish.py"
        queueish.write_text(
            textwrap.dedent(
                """
                def main():
                    jobs = []
                    for i in range(90):
                        jobs.append(i)
                    while jobs:
                        jobs.pop(0)
                """
            )
        )
        fixed = tmp_path / "fixed.py"
        fixed.write_text("def main():\n    jobs = []\n    jobs.append(1)\n")
        before = tmp_path / "before.jsonl"
        after = tmp_path / "after.jsonl"
        assert main(["analyze", str(queueish), "--entry", "main", "--save", str(before)]) == 0
        assert main(["analyze", str(fixed), "--entry", "main", "--save", str(after)]) == 0
        capsys.readouterr()
        assert main(["compare", str(before), str(after)]) == 0
        out = capsys.readouterr().out
        assert "resolved: 1" in out
        assert "Implement-Queue" in out

    def test_compare_flags_new_smells(self, tmp_path, capsys):
        clean = tmp_path / "clean.py"
        clean.write_text("def main():\n    jobs = []\n    jobs.append(1)\n")
        dirty = tmp_path / "dirty.py"
        dirty.write_text(
            "def main():\n    jobs = []\n"
            "    for i in range(300):\n        jobs.append(i)\n"
        )
        a = tmp_path / "a.jsonl"
        b = tmp_path / "b.jsonl"
        main(["analyze", str(clean), "--entry", "main", "--save", str(a)])
        main(["analyze", str(dirty), "--entry", "main", "--save", str(b)])
        capsys.readouterr()
        assert main(["compare", str(a), str(b)]) == 1  # new smell -> nonzero
        assert "introduced: 1" in capsys.readouterr().out


class TestQualityCommand:
    def test_quality_passes_at_paper_thresholds(self, capsys):
        assert main(["quality"]) == 0
        out = capsys.readouterr().out
        assert "macro-F1" in out

    def test_quality_gate_can_fail(self, capsys):
        # An impossible bar: macro-F1 cannot exceed 1.
        assert main(["quality", "--min-f1", "1.01"]) == 1


class TestSessionsErrorPaths:
    def test_daemon_down_is_reported_not_raised(self, capsys):
        # Grab a port that nothing listens on.
        import socket

        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        assert main(["sessions", f"127.0.0.1:{port}"]) == 1
        err = capsys.readouterr().err
        assert "cannot reach daemon" in err

    def test_stale_unix_socket_file(self, tmp_path, capsys):
        # A daemon that died uncleanly leaves the socket file behind;
        # connecting to it must produce a diagnostic, not a traceback.
        from repro.service import ProfilingDaemon

        path = tmp_path / "stale.sock"
        daemon = ProfilingDaemon(unix_socket=path)
        address = daemon.address
        daemon.close()
        path.touch()  # simulate the leftover file
        assert main(["sessions", address]) == 1
        assert "cannot reach daemon" in capsys.readouterr().err

    def test_malformed_address(self, capsys):
        assert main(["sessions", "not-an-address"]) == 1
        err = capsys.readouterr().err
        assert "invalid daemon address" in err
        assert "HOST:PORT" in err

    def test_sessions_against_live_daemon(self, capsys):
        from repro.service import ProfilingDaemon

        with ProfilingDaemon(port=0) as daemon:
            assert main(["sessions", daemon.address]) == 0
            assert "no sessions" in capsys.readouterr().out


class TestAnalyzeRemoteErrorPaths:
    def test_remote_daemon_down(self, legacy_file, capsys):
        import socket

        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        rc = main(["analyze", str(legacy_file), "--remote", f"127.0.0.1:{port}"])
        assert rc == 2
        assert "cannot reach profiling daemon" in capsys.readouterr().err

    def test_remote_malformed_address(self, legacy_file, capsys):
        assert main(["analyze", str(legacy_file), "--remote", "nonsense"]) == 2
        assert "HOST:PORT" in capsys.readouterr().err

    def test_remote_and_spill_conflict(self, legacy_file, tmp_path, capsys):
        rc = main(
            [
                "analyze",
                str(legacy_file),
                "--channel",
                "batch",
                "--remote",
                "127.0.0.1:1",
                "--spill",
                str(tmp_path / "x.spill"),
            ]
        )
        assert rc == 2
        assert "mutually exclusive" in capsys.readouterr().err


class TestMalformedHello:
    def test_non_string_session_id_gets_error_frame(self):
        import socket as socket_mod

        from repro.service import MessageType, ProfilingDaemon
        from repro.service.protocol import decode_json, encode_json, recv_frame

        with ProfilingDaemon(port=0) as daemon:
            sock = socket_mod.create_connection((daemon.host, daemon.port), timeout=5)
            try:
                sock.sendall(encode_json(MessageType.HELLO, {"session": 123}))
                frame = recv_frame(sock)
                assert frame is not None
                mtype, payload = frame
                assert mtype == MessageType.ERROR
                assert "must be a string" in decode_json(payload)["error"]
            finally:
                sock.close()


class TestSelftestCommand:
    def test_selftest_passes_and_reports(self, capsys):
        rc = main(["selftest", "--trials", "3", "--faults", "duplicate,reset"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "selftest: 3 trials, 0 failures" in out

    def test_selftest_without_faults(self, capsys):
        assert main(["selftest", "--trials", "2", "--faults", "none"]) == 0
        assert "0 faults injected" in capsys.readouterr().out

    def test_selftest_rejects_unknown_fault_kind(self, capsys):
        assert main(["selftest", "--trials", "1", "--faults", "gremlin"]) == 2
        assert "unknown fault kind" in capsys.readouterr().err


class TestWhatIfCommand:
    def test_whatif_on_saved_archive(self, legacy_file, tmp_path, capsys):
        archive = tmp_path / "run.jsonl"
        assert main(
            ["analyze", str(legacy_file), "--entry", "main", "--save", str(archive)]
        ) == 0
        capsys.readouterr()
        assert main(["whatif", str(archive), "--cores", "4"]) == 0
        out = capsys.readouterr().out
        assert "What-if predictions" in out
        assert "pred" in out  # the ranked table header

    def test_whatif_json_carries_predictions(self, legacy_file, tmp_path, capsys):
        import json

        archive = tmp_path / "run.jsonl"
        main(["analyze", str(legacy_file), "--entry", "main", "--save", str(archive)])
        capsys.readouterr()
        assert main(["whatif", str(archive), "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["use_cases"], "expected the 300-append workload to flag"
        speeds = [u["predicted_speedup"] for u in doc["use_cases"]]
        assert all(s is not None for s in speeds)
        assert speeds == sorted(speeds, reverse=True)

    def test_whatif_without_input_is_an_error(self, capsys):
        assert main(["whatif"]) == 2
        assert "trace file or --address" in capsys.readouterr().err

    def test_whatif_missing_trace(self, tmp_path, capsys):
        assert main(["whatif", str(tmp_path / "nope.jsonl")]) == 2
        assert "no such trace" in capsys.readouterr().err

    def test_whatif_garbage_input(self, tmp_path, capsys):
        junk = tmp_path / "junk.bin"
        junk.write_bytes(b"\x00\xff\x13\x37 not a trace \x80\x81")
        assert main(["whatif", str(junk)]) == 2
        assert "not a spill file or profile archive" in capsys.readouterr().err

    def test_whatif_daemon_down(self, capsys):
        import socket

        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        assert main(["whatif", "--address", f"127.0.0.1:{port}"]) == 2
        assert "cannot snapshot" in capsys.readouterr().err

    def test_whatif_no_sessions_on_live_daemon(self, capsys):
        from repro.service import ProfilingDaemon

        with ProfilingDaemon(port=0) as daemon:
            assert main(["whatif", "--address", daemon.address]) == 1
            assert "no snapshot" in capsys.readouterr().err

    def test_whatif_quiet_on_unflagged_trace(self, tmp_path, capsys):
        quiet = tmp_path / "quiet.py"
        quiet.write_text("def main():\n    xs = []\n    xs.append(1)\n")
        archive = tmp_path / "quiet.jsonl"
        main(["analyze", str(quiet), "--entry", "main", "--save", str(archive)])
        capsys.readouterr()
        assert main(["whatif", str(archive)]) == 0
        assert "no use cases flagged" in capsys.readouterr().out

    def test_whatif_malformed_address(self, capsys):
        assert main(["whatif", "--address", "not-an-address"]) == 2
        assert "cannot snapshot" in capsys.readouterr().err
