"""Failure-injection and stress tests for the collection substrate.

The recording path runs inside someone else's program; it must fail
loudly on misuse (recording after the terminal drain), stay exact under
thread stress, and never corrupt profiles when sessions nest or
interleave.
"""

from __future__ import annotations

import threading

import pytest

from repro.events import (
    AccessKind,
    AsyncChannel,
    EventCollector,
    OperationKind,
    StructureKind,
    collecting,
    pop_collector,
    push_collector,
)
from repro.structures import TrackedList


class TestLifecycleMisuse:
    def test_record_after_finish_raises(self):
        collector = EventCollector()
        iid = collector.register_instance(StructureKind.LIST)
        collector.finish()
        with pytest.raises(RuntimeError):
            collector.record(iid, OperationKind.READ, AccessKind.READ, 0, 1)

    def test_structure_outliving_its_session(self):
        with collecting():
            xs = TrackedList([1, 2])
        # The session is finished; further tracked operations must fail
        # loudly, not silently drop events.
        with pytest.raises(RuntimeError):
            xs.append(3)
        # Mutate-then-record semantics: the element landed before the
        # recording failed (contents stay consistent and readable).
        assert xs.raw() == [1, 2, 3]

    def test_assemble_after_finish_is_stable(self):
        collector = EventCollector()
        iid = collector.register_instance(StructureKind.LIST)
        collector.record(iid, OperationKind.READ, AccessKind.READ, 0, 1)
        collector.finish()
        before = len(collector.assemble()[iid])
        after = len(collector.assemble()[iid])
        assert before == after == 1

    def test_unregistered_instance_events_dropped(self):
        """Events for unknown instance ids (e.g. a stale id from another
        session) are discarded at assembly, not crashing it."""
        collector = EventCollector()
        collector.record(999, OperationKind.READ, AccessKind.READ, 0, 1)
        assert collector.finish() == {}

    def test_pop_without_push_is_callers_bug(self):
        push_collector(EventCollector())
        pop_collector()
        with pytest.raises(IndexError):
            pop_collector()


class TestThreadStress:
    @pytest.mark.parametrize("channel_factory", [None, AsyncChannel])
    def test_concurrent_producers_exact_counts(self, channel_factory):
        collector = EventCollector(
            channel=channel_factory() if channel_factory else None
        )
        ids = [
            collector.register_instance(StructureKind.LIST) for _ in range(4)
        ]
        per_thread = 2_000
        threads = 4

        def worker(tid: int) -> None:
            iid = ids[tid]
            for i in range(per_thread):
                collector.record(
                    iid, OperationKind.INSERT, AccessKind.WRITE, i, i + 1
                )

        workers = [
            threading.Thread(target=worker, args=(t,)) for t in range(threads)
        ]
        for w in workers:
            w.start()
        for w in workers:
            w.join()
        profiles = collector.finish()
        for iid in ids:
            profile = profiles[iid]
            assert len(profile) == per_thread
            # Per-instance event order is each producer's program order.
            assert list(profile.positions) == list(range(per_thread))

    def test_global_seq_strictly_increasing(self):
        collector = EventCollector()
        ids = [collector.register_instance(StructureKind.LIST) for _ in range(3)]

        def worker(iid):
            for i in range(500):
                collector.record(iid, OperationKind.READ, AccessKind.READ, i, 501)

        threads = [threading.Thread(target=worker, args=(iid,)) for iid in ids]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        profiles = collector.finish()
        seqs = sorted(
            e.seq for p in profiles.values() for e in p
        )
        assert seqs == list(range(1500))

    def test_tracked_structures_from_threads(self):
        with collecting() as session:
            done = threading.Barrier(3)

            def make_and_fill(k):
                xs = TrackedList(label=f"t{k}")
                for i in range(200):
                    xs.append(i)
                done.wait()

            threads = [
                threading.Thread(target=make_and_fill, args=(k,))
                for k in range(3)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        assert session.instance_count == 3
        for profile in session.nonempty_profiles():
            assert profile.count(OperationKind.INSERT) == 200


class TestSessionNesting:
    def test_inner_session_does_not_steal_outer_structures(self):
        with collecting() as outer:
            xs = TrackedList(label="outer")
            xs.append(1)
            with collecting() as inner:
                ys = TrackedList(label="inner")
                ys.append(2)
            # Structures bind to the collector active at construction.
            xs.append(3)
        assert {p.label for p in outer.nonempty_profiles()} == {"outer"}
        assert {p.label for p in inner.nonempty_profiles()} == {"inner"}
        assert len(outer.profiles_by_label()["outer"]) == 3  # init? no: 2 inserts + ...

    def test_interleaved_sessions_isolated(self):
        first = EventCollector()
        second = EventCollector()
        push_collector(first)
        a = TrackedList(label="a")
        push_collector(second)
        b = TrackedList(label="b")
        a.append(1)  # records into *first* (bound at construction)
        b.append(2)
        pop_collector()
        pop_collector()
        assert len(first.finish()) == 1
        assert len(second.finish()) == 1
        assert first.event_count > 0 and second.event_count > 0
