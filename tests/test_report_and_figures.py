"""Unit tests for the reproduction-report builder and Figure 1 SVG."""

from __future__ import annotations

import xml.etree.ElementTree as ET

import pytest

from repro.cli import main
from repro.eval import build_report
from repro.study import run_occurrence_study
from repro.study.figures import figure1_svg, save_figure1


@pytest.fixture(scope="module")
def study():
    return run_occurrence_study(loc_scale=0.02)


class TestFigure1Svg:
    def test_valid_xml(self, study):
        root = ET.fromstring(figure1_svg(study))
        assert root.tag.endswith("svg")

    def test_all_programs_labelled(self, study):
        svg = figure1_svg(study)
        for name in ("gpdotnet", "dotspatial", "7zip", "ManicDigger2011"):
            assert name in svg

    def test_legend_totals(self, study):
        svg = figure1_svg(study)
        assert "Σ:1275" in svg  # list total
        assert "Σ:324" in svg  # dictionary total
        assert "Rest" in svg

    def test_save(self, study, tmp_path):
        path = save_figure1(study, tmp_path / "fig1.svg")
        assert path.read_text().startswith("<svg")


class TestReportBuilder:
    @pytest.fixture(scope="class")
    def report(self):
        return build_report(scale=0.08, loc_scale=0.02, measure_slowdown=False)

    def test_headline_ok(self, report):
        assert report.headline_ok
        assert report.evaluation.total_instances == 104
        assert report.ordering_holds

    def test_markdown_sections(self, report):
        text = report.markdown
        for heading in (
            "# DSspy reproduction report",
            "## Headline",
            "## Empirical study",
            "## Evaluation",
            "Table I",
            "Table II",
            "Table III",
            "Table IV",
            "Table VI",
            "Table VII",
        ):
            assert heading in text, heading

    def test_paper_reference_values_present(self, report):
        text = report.markdown
        assert "76.92%" in text
        assert "66.67%" in text

    def test_cli_report_command(self, tmp_path, capsys):
        out = tmp_path / "R.md"
        code = main(
            ["report", "-o", str(out), "--scale", "0.08", "--no-slowdown"]
        )
        assert code == 0
        assert out.exists()
        assert "headline reproduction OK: True" in capsys.readouterr().out
