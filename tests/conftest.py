"""Shared fixtures: collector isolation and profile builders."""

from __future__ import annotations

import pytest

from repro.events import (
    AccessEvent,
    AccessKind,
    EventCollector,
    OperationKind,
    RuntimeProfile,
    StructureKind,
    reset_ambient,
)


@pytest.fixture(autouse=True)
def _isolated_ambient_collector():
    """Each test gets a fresh ambient collector so structures created
    without an explicit session never leak events across tests."""
    reset_ambient()
    yield
    reset_ambient()


@pytest.fixture
def collector() -> EventCollector:
    return EventCollector()


def make_event(
    seq: int,
    op: OperationKind,
    position: int | None,
    size: int,
    kind: AccessKind | None = None,
    thread_id: int = 0,
    instance_id: int = 0,
) -> AccessEvent:
    """Hand-rolled event with the kind inferred from the op."""
    if kind is None:
        kind = AccessKind.READ if op.is_read_like else AccessKind.WRITE
    return AccessEvent(
        seq=seq,
        kind=kind,
        op=op,
        position=position,
        size=size,
        thread_id=thread_id,
        instance_id=instance_id,
    )


def make_profile(
    specs: list[tuple[OperationKind, int | None, int]],
    kind: StructureKind = StructureKind.LIST,
    thread_id: int = 0,
) -> RuntimeProfile:
    """Profile from (op, position, size) triples in order."""
    events = [
        make_event(i, op, pos, size, thread_id=thread_id)
        for i, (op, pos, size) in enumerate(specs)
    ]
    return RuntimeProfile.from_events(events, kind=kind)
