"""Unit tests for the precision/recall evaluation (beyond-paper)."""

from __future__ import annotations

import dataclasses

import pytest

from repro.eval import build_labeled_corpus, evaluate_detection_quality
from repro.usecases import Thresholds, UseCaseEngine, UseCaseKind
from repro.usecases.rules import PARALLEL_RULES


@pytest.fixture(scope="module")
def quality():
    return evaluate_detection_quality()


class TestLabeledCorpus:
    def test_labels_cover_all_profiles(self):
        profiles, labels = build_labeled_corpus(2, 1)
        assert {p.instance_id for p in profiles} == set(labels)

    def test_positives_per_kind(self):
        _, labels = build_labeled_corpus(3, 1, include_boundary=False)
        for kind in UseCaseKind.parallel_kinds():
            assert sum(1 for t in labels.values() if t is kind) == 3

    def test_negatives_count(self):
        _, labels = build_labeled_corpus(1, 2, include_boundary=False)
        assert sum(1 for t in labels.values() if t is None) == 20  # 10 makers * 2


class TestPaperThresholdQuality:
    def test_perfect_on_clean_and_boundary(self, quality):
        """The published thresholds separate all positives (including
        just-over-threshold boundary cases) from all negatives
        (including just-under ones)."""
        assert quality.macro_f1 == pytest.approx(1.0)
        assert quality.negative_specificity == pytest.approx(1.0)

    def test_per_kind_scores(self, quality):
        for kind in UseCaseKind.parallel_kinds():
            score = quality.score_for(kind)
            assert score.precision == 1.0, kind
            assert score.recall == 1.0, kind

    def test_score_lookup_unknown(self, quality):
        with pytest.raises(KeyError):
            quality.score_for(UseCaseKind.WRITE_WITHOUT_READ)

    def test_describe(self, quality):
        text = quality.describe()
        assert "macro-F1" in text
        assert "Long-Insert" in text


class TestDetunedThresholds:
    def test_raising_thresholds_hurts_recall(self):
        detuned = UseCaseEngine(
            thresholds=dataclasses.replace(
                Thresholds(), li_long_phase=200, flr_min_patterns=20
            ),
            rules=PARALLEL_RULES,
        )
        quality = evaluate_detection_quality(engine=detuned)
        assert quality.macro_f1 < 0.9
        assert quality.score_for(UseCaseKind.LONG_INSERT).recall < 1.0
        # Specificity stays perfect: raising thresholds never adds FPs.
        assert quality.negative_specificity == pytest.approx(1.0)

    def test_lowering_thresholds_hurts_specificity(self):
        loose = UseCaseEngine(
            thresholds=Thresholds().scaled(0.05),
            rules=PARALLEL_RULES,
        )
        quality = evaluate_detection_quality(engine=loose)
        assert quality.negative_specificity < 1.0

    def test_f1_zero_case(self):
        from repro.eval.detection_quality import KindScore

        score = KindScore(
            kind=UseCaseKind.LONG_INSERT,
            true_positives=0,
            false_positives=0,
            false_negatives=5,
        )
        assert score.precision == 1.0  # nothing flagged
        assert score.recall == 0.0
        assert score.f1 == 0.0
