"""Process-lifecycle safety: fork under load and bounded exit drain.

Each scenario runs a real subprocess that wires a tracked workload to a
live (or deliberately crashed) daemon through a ``RemoteChannel``,
installs the runtime's fork/exit safety, and then ``os.fork()``s while
a producer thread is actively recording.  The contract under test:

* the child never touches the inherited daemon socket (its first write
  would corrupt the parent's session) — it either self-disables or
  opens a fresh session, per ``fork_policy``;
* locks and buffers inherited mid-operation are re-initialised, so the
  child can keep recording without deadlocking;
* both processes exit 0 through the normal ``atexit`` path, with the
  exit drain bounded by the guard deadline even when the daemon is
  gone.

This is the ``fork-under-load`` entry of
:data:`repro.testing.CLIENT_FAULT_KINDS`.
"""

from __future__ import annotations

import os
import subprocess
import sys
import time
from pathlib import Path

import pytest

pytestmark = pytest.mark.skipif(
    not hasattr(os, "fork"), reason="os.fork is POSIX-only"
)

SRC = Path(__file__).resolve().parents[1] / "src"

SCRIPT = r"""
import os
import sys
import threading
import time

from repro import runtime
from repro.events import EventCollector, push_collector
from repro.service import ProfilingDaemon, RemoteChannel
from repro.structures import TrackedList

policy = os.environ["FORK_POLICY"]
crash = os.environ["DAEMON_CRASH"] == "1"

daemon = ProfilingDaemon(port=0)
guard = runtime.install(budget=100, fork_policy=policy, exit_deadline=3.0)
channel = RemoteChannel(daemon.address, heartbeat_interval=0.2, give_up_after=1.0)
guard.watch_channel(channel)
collector = EventCollector(channel=channel)
push_collector(collector)

xs = TrackedList(collector=collector, label="parent")
for i in range(500):
    xs.append(i)

if crash:
    daemon.crash()
    for i in range(200):  # keep recording against the dead daemon
        xs.append(i)

# Fork *under load*: a producer thread is appending at the moment of the
# fork, so the child inherits channel locks/buffers in arbitrary state.
stop = threading.Event()


def producer():
    ys = TrackedList(collector=collector, label="producer")
    while not stop.is_set():
        ys.append(1)


threading.Thread(target=producer, daemon=True).start()
time.sleep(0.05)

sys.stdout.flush()
pid = os.fork()
if pid == 0:
    # Child: after-fork handler already ran.  Recording must be safe and
    # exit must be clean (atexit drain, bounded by the guard deadline).
    zs = TrackedList(collector=collector, label="child")
    for i in range(100):
        zs.append(i)
    assert zs.raw() == list(range(100)), zs.raw()
    print("CHILD-OK", flush=True)
    sys.exit(0)

stop.set()
_, status = os.waitpid(pid, 0)
assert os.WIFEXITED(status), f"child did not exit normally: status={status}"
assert os.WEXITSTATUS(status) == 0, f"child exit code {os.WEXITSTATUS(status)}"

for i in range(100):  # parent keeps working after the fork
    xs.append(i)
print(f"SESSIONS={len(daemon.sessions)}", flush=True)
print("PARENT-OK", flush=True)
if not crash:
    daemon.close()
"""


def _run_scenario(policy: str, crash: bool) -> tuple[subprocess.CompletedProcess, float]:
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [str(SRC)] + [p for p in env.get("PYTHONPATH", "").split(os.pathsep) if p]
    )
    env["FORK_POLICY"] = policy
    env["DAEMON_CRASH"] = "1" if crash else "0"
    start = time.monotonic()
    proc = subprocess.run(
        [sys.executable, "-c", SCRIPT],
        env=env,
        capture_output=True,
        text=True,
        timeout=120,
    )
    return proc, time.monotonic() - start


@pytest.mark.parametrize("crash", [False, True], ids=["daemon-up", "daemon-crashed"])
@pytest.mark.parametrize("policy", ["disable", "resession"])
def test_fork_under_load_exits_cleanly(policy, crash):
    proc, elapsed = _run_scenario(policy, crash)
    assert proc.returncode == 0, (proc.stdout, proc.stderr)
    assert "CHILD-OK" in proc.stdout, (proc.stdout, proc.stderr)
    assert "PARENT-OK" in proc.stdout, (proc.stdout, proc.stderr)
    # Both drains were bounded: two 3 s deadlines plus slack, never a
    # hang on a dead daemon or an inherited lock.
    assert elapsed < 60, f"scenario took {elapsed:.1f}s"


def test_resession_child_opens_a_fresh_daemon_session():
    """With the daemon up and ``fork_policy='resession'``, the child must
    appear at the daemon as its own session rather than writing into the
    parent's (which would interleave two processes' frames on one
    socket)."""
    proc, _ = _run_scenario("resession", crash=False)
    assert proc.returncode == 0, (proc.stdout, proc.stderr)
    sessions = [
        int(line.split("=", 1)[1])
        for line in proc.stdout.splitlines()
        if line.startswith("SESSIONS=")
    ]
    assert sessions, proc.stdout
    assert sessions[0] >= 2, f"expected parent + child sessions, saw {sessions[0]}"
