"""Unit tests for per-thread lane rendering."""

from __future__ import annotations

from repro.events import OperationKind, RuntimeProfile
from repro.viz import render_thread_lanes, thread_interleaving_ratio

from .conftest import make_event

OP = OperationKind


def interleaved_profile(n_per_thread=20, threads=2):
    events = []
    seq = 0
    for i in range(n_per_thread):
        for t in range(threads):
            events.append(make_event(seq, OP.READ, i, 50, thread_id=t))
            seq += 1
    return RuntimeProfile.from_events(events)


def phased_profile(n_per_thread=20):
    events = []
    seq = 0
    for t in range(2):
        for i in range(n_per_thread):
            events.append(make_event(seq, OP.WRITE, i, 50, thread_id=t))
            seq += 1
    return RuntimeProfile.from_events(events)


class TestRenderThreadLanes:
    def test_one_lane_per_thread(self):
        text = render_thread_lanes(interleaved_profile(threads=3))
        assert text.count("t0") == 1
        assert "t1" in text and "t2" in text

    def test_shares_sum_to_total(self):
        text = render_thread_lanes(interleaved_profile(threads=2))
        assert "50%" in text

    def test_empty_profile(self):
        assert render_thread_lanes(RuntimeProfile(0)) == "(empty profile)"

    def test_glyphs(self):
        events = [
            make_event(0, OP.READ, 0, 5, thread_id=0),
            make_event(1, OP.WRITE, 1, 5, thread_id=1),
            make_event(2, OP.CLEAR, None, 0, thread_id=0),
        ]
        text = render_thread_lanes(RuntimeProfile.from_events(events))
        assert "r" in text and "#" in text and "|" in text

    def test_single_thread(self):
        events = [make_event(i, OP.READ, i, 10, thread_id=0) for i in range(5)]
        text = render_thread_lanes(RuntimeProfile.from_events(events))
        assert "1 threads" in text
        assert "100%" in text


class TestInterleavingRatio:
    def test_fully_interleaved(self):
        ratio = thread_interleaving_ratio(interleaved_profile())
        assert ratio > 0.9

    def test_phased(self):
        ratio = thread_interleaving_ratio(phased_profile())
        assert ratio < 0.1

    def test_trivial_profiles(self):
        assert thread_interleaving_ratio(RuntimeProfile(0)) == 0.0
        single = RuntimeProfile.from_events(
            [make_event(0, OP.READ, 0, 1)]
        )
        assert thread_interleaving_ratio(single) == 0.0
