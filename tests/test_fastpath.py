"""Encode-at-record fast path: engagement, equivalence, backpressure.

The differential core of this module is byte identity: the fast
encoder (record kernel → packed per-thread buffers) and the legacy
encoder (tuple pipeline → ``pack_record`` at spill/wire time) must
produce the *identical* byte stream for the identical workload — over
every tracked structure's full method surface and over all seven
Table V evaluation workloads.  Anything short of equality means the
fast path changed what the analyzer sees, which no speedup justifies.
"""

from __future__ import annotations

import pytest

from repro.events import (
    BatchingChannel,
    Burst,
    EventCollector,
    PackedBatchingChannel,
    collecting,
)
from repro.events.fastpath import KERNEL, PyRecorder, make_recorder
from repro.events.spill import RECORD_SIZE, pack_record, unpack_records
from repro.workloads import EVALUATION_WORKLOADS

from .test_firewall_sweep import STRUCTURES, run_script


def _legacy_bytes(run) -> bytes:
    """Capture ``run(collector)`` through the legacy tuple pipeline and
    encode the drained stream the way spill/wire would."""
    channel = BatchingChannel()
    collector = EventCollector(channel=channel, fastpath="off")
    run(collector)
    return b"".join(pack_record(raw) for raw in channel.drain())


def _fast_bytes(run) -> tuple[bytes, EventCollector]:
    channel = PackedBatchingChannel()
    collector = EventCollector(channel=channel)
    run(collector)
    return bytes(channel.drain_packed()), collector


class TestEngagement:
    def test_engages_on_packed_channel(self):
        collector = EventCollector(channel=PackedBatchingChannel())
        assert collector.fastpath == KERNEL
        assert collector.record is collector._recorder

    def test_not_on_plain_batching_channel(self):
        collector = EventCollector(channel=BatchingChannel())
        assert collector.fastpath is None

    def test_not_with_sampling(self):
        collector = EventCollector(
            channel=PackedBatchingChannel(), sampling=Burst(100, 10)
        )
        assert collector.fastpath is None

    def test_not_with_wall_time(self):
        collector = EventCollector(
            channel=PackedBatchingChannel(), capture_wall_time=True
        )
        assert collector.fastpath is None

    def test_off_forces_legacy_path(self):
        collector = EventCollector(channel=PackedBatchingChannel(), fastpath="off")
        assert collector.fastpath is None
        assert collector.record.__func__ is EventCollector.record

    def test_rejects_unknown_mode(self):
        with pytest.raises(ValueError):
            EventCollector(channel=PackedBatchingChannel(), fastpath="maybe")


class TestPackedChannelProtocol:
    def test_tuple_producers_round_trip(self):
        channel = PackedBatchingChannel()
        produce = channel.producer()
        raws = [(i, 1, 0, i % 7, 50, 0, None) for i in range(500)]
        for raw in raws:
            produce(raw)
        assert channel.drain() == raws

    def test_drain_packed_then_drain_agree(self):
        channel = PackedBatchingChannel()
        produce = channel.producer()
        raws = [(i, 2, 1, None, 9, 0, None) for i in range(100)]
        for raw in raws:
            produce(raw)
        packed = bytes(channel.drain_packed())
        assert len(packed) == 100 * RECORD_SIZE
        assert unpack_records(packed) == raws
        assert channel.drain() == raws  # decode after the packed drain

    def test_drain_then_drain_packed_agree(self):
        channel = PackedBatchingChannel()
        produce = channel.producer()
        raws = [(3, 1, 0, i, 100, 0, None) for i in range(64)]
        for raw in raws:
            produce(raw)
        assert channel.drain() == raws
        assert unpack_records(bytes(channel.drain_packed())) == raws

    def test_spill_streams_packed_records(self, tmp_path):
        spill = tmp_path / "events.bin"
        channel = PackedBatchingChannel(spill=spill)
        produce = channel.producer()
        raws = [(1, 1, 0, i, 10, 0, None) for i in range(2000)]
        for raw in raws:
            produce(raw)
        assert channel.drain() == raws
        assert unpack_records(bytes(channel.drain_packed())) == raws

    def test_drop_policy_accounts_overflow(self):
        channel = PackedBatchingChannel(policy="drop", max_buffered=100)
        produce = channel.producer()
        for i in range(1000):
            produce((0, 1, 0, i, 10, 0, None))
        drained = channel.drain()
        assert len(drained) == 100
        assert channel.dropped == 900

    def test_kernel_invalidated_when_gate_closes(self):
        channel = PackedBatchingChannel(max_buffered=50, block_timeout=0.2)
        collector = EventCollector(channel=channel)
        record = collector.record
        for i in range(200):
            record(0, 1, 0, i, 10)
        # Force a harvest: the drainer sees the bound overrun, closes
        # the gate, and invalidates every kernel — so the *next* record
        # re-enters bind, where the closed gate blocks it until timeout.
        channel.snapshot()
        assert not channel._open[0]
        with pytest.raises(RuntimeError, match="backpressure"):
            record(0, 1, 0, 0, 10)
        channel.fail_open()
        # The gated record raised in bind, before packing anything.
        assert len(channel.drain()) == 200


class TestByteIdentity:
    @pytest.mark.parametrize("kind", sorted(STRUCTURES), ids=str)
    def test_structure_method_surface(self, kind):
        make_tracked, _make_plain, ops, _state_of = STRUCTURES[kind]

        def run(collector):
            run_script(make_tracked(collector), ops, "tracked")

        legacy = _legacy_bytes(run)
        fast, collector = _fast_bytes(run)
        assert collector.fastpath == KERNEL
        assert len(legacy) % RECORD_SIZE == 0 and len(legacy) > 0
        assert fast == legacy

    @pytest.mark.parametrize("workload", EVALUATION_WORKLOADS, ids=lambda w: w.name)
    def test_evaluation_workloads(self, workload):
        def run_legacy(_collector):
            workload.run_tracked(scale=0.05)

        channel = BatchingChannel()
        with collecting(channel=channel, fastpath="off") as legacy_session:
            workload.run_tracked(scale=0.05)
        assert legacy_session.fastpath is None
        legacy = b"".join(pack_record(raw) for raw in channel.drain())

        fast_channel = PackedBatchingChannel()
        with collecting(channel=fast_channel) as fast_session:
            workload.run_tracked(scale=0.05)
        assert fast_session.fastpath == KERNEL
        fast = bytes(fast_channel.drain_packed())

        assert len(legacy) % RECORD_SIZE == 0 and len(legacy) > 0
        assert fast == legacy

    def test_collector_profiles_identical(self):
        """Post-mortem assembly sees the same events either way."""

        def run(collector):
            make_tracked, _p, ops, _s = STRUCTURES["list"]
            run_script(make_tracked(collector), ops, "tracked")

        legacy_channel = BatchingChannel()
        legacy_collector = EventCollector(channel=legacy_channel, fastpath="off")
        run(legacy_collector)
        fast_channel = PackedBatchingChannel()
        fast_collector = EventCollector(channel=fast_channel)
        run(fast_collector)

        legacy_events = [
            (e.instance_id, int(e.op), int(e.kind), e.position, e.size)
            for p in legacy_collector.finish().values()
            for e in p
        ]
        fast_events = [
            (e.instance_id, int(e.op), int(e.kind), e.position, e.size)
            for p in fast_collector.finish().values()
            for e in p
        ]
        assert fast_events == legacy_events


class TestPyRecorderKernel:
    """The fallback kernel must behave identically to the C one; these
    run it explicitly so pure-python builds and C builds test the same
    contract."""

    def test_packs_records_through_bind(self):
        buf = bytearray()
        recorder = PyRecorder(lambda: (7, buf))
        recorder(1, 2, 1, 5, 100)
        recorder(1, 2, 1, None, 100)
        raws = unpack_records(bytes(buf))
        assert raws == [(1, 2, 1, 5, 100, 7, None), (1, 2, 1, None, 100, 7, None)]

    def test_invalidate_forces_rebind(self):
        binds = []
        buf = bytearray()

        def bind():
            binds.append(1)
            return (0, buf)

        recorder = PyRecorder(bind)
        recorder(0, 1, 0, 1, 10)
        recorder(0, 1, 0, 2, 10)
        assert len(binds) == 1
        recorder.invalidate()
        recorder(0, 1, 0, 3, 10)
        assert len(binds) == 2
        assert len(buf) == 3 * RECORD_SIZE

    def test_make_recorder_matches_pyrecorder_bytes(self):
        buf_a, buf_b = bytearray(), bytearray()
        fast = make_recorder(lambda: (3, buf_a))
        pure = PyRecorder(lambda: (3, buf_b))
        for i in range(50):
            fast(9, 1, 0, i, 64)
            pure(9, 1, 0, i, 64)
        fast(9, 3, 1, None, 64)
        pure(9, 3, 1, None, 64)
        assert bytes(buf_a) == bytes(buf_b)
