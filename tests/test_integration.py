"""Integration tests: whole-pipeline scenarios across modules.

These exercise the seams unit tests don't: multithreaded capture →
per-thread detection, selective profiling, capture → persist → mine,
detect → auto-transform, and the async channel under the full pipeline.
"""

from __future__ import annotations

import textwrap
import threading

from repro.events import collecting, read_profiles, save_collector
from repro.instrument import run_instrumented, transform_source
from repro.patterns import PatternType, detect
from repro.structures import TrackedList, TrackedQueue
from repro.usecases import UseCaseEngine, UseCaseKind
from repro.viz import render_thread_lanes, thread_interleaving_ratio


class TestMultithreadedCapture:
    """The paper: 'We want to be able to support single- and
    multithreaded code so we are aware of access events that occur in
    parallel' (§IV)."""

    def _two_thread_profile(self):
        with collecting() as session:
            xs = TrackedList(range(64), label="shared")
            barrier = threading.Barrier(2)

            def forward():
                barrier.wait()
                for _ in range(3):
                    for i in range(len(xs)):
                        _ = xs[i]

            def backward():
                barrier.wait()
                for _ in range(3):
                    for i in range(len(xs) - 1, -1, -1):
                        _ = xs[i]

            threads = [
                threading.Thread(target=forward),
                threading.Thread(target=backward),
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        return session.profiles_by_label()["shared"]

    def test_per_thread_patterns_recovered(self):
        profile = self._two_thread_profile()
        assert profile.is_multithreaded
        analysis = detect(profile)
        directions = {
            p.thread_id: set()
            for p in analysis.patterns
            if p.pattern_type is not PatternType.UNCLASSIFIED
        }
        for p in analysis.patterns:
            if p.pattern_type in (
                PatternType.READ_FORWARD,
                PatternType.READ_BACKWARD,
            ):
                directions[p.thread_id].add(p.pattern_type)
        # Each worker thread shows a single, consistent scan direction.
        per_thread = [d for d in directions.values() if d]
        assert {PatternType.READ_FORWARD} in per_thread
        assert {PatternType.READ_BACKWARD} in per_thread

    def test_thread_lane_rendering(self):
        profile = self._two_thread_profile()
        text = render_thread_lanes(profile, width=60)
        assert "threads" in text
        assert text.count("|") >= 4  # at least two lanes
        assert 0.0 <= thread_interleaving_ratio(profile) <= 1.0

    def test_split_by_thread_totals(self):
        profile = self._two_thread_profile()
        parts = profile.split_by_thread()
        assert sum(len(p) for p in parts.values()) == len(profile)


class TestSelectiveProfiling:
    """The paper's second usage mode: 'An engineer can use DSspy as a
    selective profiler that only analyzes instances that he manually
    instrumented before' (§IV)."""

    def test_only_wrapped_instances_profiled(self):
        with collecting() as session:
            hot = TrackedList(label="suspect")
            cold = list(range(1000))  # plain: invisible to DSspy
            for i in range(300):
                hot.append(cold[i % 1000])
        assert session.instance_count == 1
        report = UseCaseEngine().analyze_collector(session)
        assert {u.kind for u in report.use_cases} == {UseCaseKind.LONG_INSERT}


class TestCaptureToArchiveToMine:
    def test_full_decoupled_workflow(self, tmp_path):
        # Capture on "machine A" ...
        source = textwrap.dedent(
            """
            def main():
                log = []
                for i in range(400):
                    log.append(i)
                hits = 0
                for _ in range(15):
                    for i in range(len(log)):
                        if log[i] % 7 == 0:
                            hits += 1
                return hits
            """
        )
        run = run_instrumented(source, entry="main")
        archive = save_collector(run.collector, tmp_path / "capture.jsonl")

        # ... mine on "machine B" from the archive alone.
        profiles = read_profiles(archive)
        report = UseCaseEngine().analyze(profiles)
        kinds = {u.kind for u in report.use_cases}
        assert UseCaseKind.FREQUENT_LONG_READ in kinds
        site = report.use_cases[0].site
        assert site is not None and site.function == "main"


class TestDetectThenTransform:
    def test_li_detection_drives_the_transform(self):
        """End of the paper's loop: DSspy flags a Long-Insert, the
        autotransformer parallelizes exactly that loop, results agree."""
        source = textwrap.dedent(
            """
            def build():
                samples = []
                for i in range(500):
                    samples.append(i * 3 + 1)
                return samples
            """
        )
        # 1. DSspy finds the Long-Insert.
        run = run_instrumented(source, entry="build")
        report = UseCaseEngine().analyze(run.profiles)
        assert any(
            u.kind is UseCaseKind.LONG_INSERT for u in report.use_cases
        )

        # 2. The transform rewrites the flagged loop.
        transformed, transform_report = transform_source(source)
        assert transform_report.count == 1

        # 3. The parallel version computes the same list.
        namespace: dict = {}
        exec(compile(transformed, "<t>", "exec"), namespace)
        assert namespace["build"]() == run.result


class TestAsyncPipeline:
    def test_async_channel_end_to_end(self):
        from repro.events import AsyncChannel, EventCollector, push_collector, pop_collector

        collector = EventCollector(channel=AsyncChannel())
        push_collector(collector)
        try:
            xs = TrackedList(label="async")
            for i in range(2000):
                xs.append(i)
        finally:
            pop_collector()
        collector.finish()
        report = UseCaseEngine().analyze_collector(collector)
        assert {u.kind for u in report.use_cases} == {UseCaseKind.LONG_INSERT}
        profile = collector.profiles_by_label()["async"]
        assert list(profile.seqs) == list(range(len(profile)))


class TestQueueMigration:
    def test_recommendation_round_trip(self):
        """Implement-Queue fires on the list; after migrating to the
        real queue type, the diagnosis disappears."""
        engine = UseCaseEngine()
        with collecting():
            as_list = TrackedList()
            for i in range(120):
                as_list.append(i)
            drained = []
            while len(as_list):
                drained.append(as_list.pop(0))
            before = engine.analyze_profile(as_list.profile())
        assert any(u.kind is UseCaseKind.IMPLEMENT_QUEUE for u in before)
        assert drained == list(range(120))

        with collecting():
            as_queue = TrackedQueue()
            for i in range(120):
                as_queue.enqueue(i)
            drained2 = []
            while len(as_queue):
                drained2.append(as_queue.dequeue())
            after = engine.analyze_profile(as_queue.profile())
        assert not any(u.kind is UseCaseKind.IMPLEMENT_QUEUE for u in after)
        assert drained2 == drained
