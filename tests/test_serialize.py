"""Unit tests for profile persistence (JSON-lines round trips)."""

from __future__ import annotations

import io

import pytest

from repro.events import (
    AllocationSite,
    OperationKind,
    StructureKind,
    collecting,
    dump_profiles,
    load_profiles,
    read_profiles,
    save_collector,
    save_profiles,
)
from repro.structures import TrackedList
from repro.usecases import UseCaseEngine, UseCaseKind

from .conftest import make_profile

OP = OperationKind


def roundtrip(profiles):
    buffer = io.StringIO()
    dump_profiles(profiles, buffer)
    buffer.seek(0)
    return list(load_profiles(buffer))


class TestRoundTrip:
    def test_events_preserved(self):
        original = make_profile(
            [(OP.INSERT, i, i + 1) for i in range(50)]
            + [(OP.CLEAR, None, 0)]
        )
        (loaded,) = roundtrip([original])
        assert len(loaded) == len(original)
        for a, b in zip(original, loaded):
            assert (a.seq, a.op, a.kind, a.position, a.size, a.thread_id) == (
                b.seq, b.op, b.kind, b.position, b.size, b.thread_id
            )

    def test_metadata_preserved(self):
        profile = make_profile([(OP.READ, 0, 1)], kind=StructureKind.ARRAY)
        profile.label = "my_array"
        profile.site = AllocationSite("app.py", 42, "build", "arr")
        (loaded,) = roundtrip([profile])
        assert loaded.kind is StructureKind.ARRAY
        assert loaded.label == "my_array"
        assert loaded.site.filename == "app.py"
        assert loaded.site.lineno == 42
        assert loaded.site.variable == "arr"

    def test_multiple_profiles(self):
        profiles = [
            make_profile([(OP.READ, 0, 1)] * n) for n in (1, 5, 0, 3)
        ]
        loaded = roundtrip(profiles)
        assert [len(p) for p in loaded] == [1, 5, 0, 3]

    def test_empty_stream(self):
        assert roundtrip([]) == []

    def test_file_roundtrip(self, tmp_path):
        profiles = [make_profile([(OP.INSERT, i, i + 1) for i in range(10)])]
        path = save_profiles(profiles, tmp_path / "capture.jsonl")
        loaded = read_profiles(path)
        assert len(loaded) == 1 and len(loaded[0]) == 10

    def test_save_collector(self, tmp_path):
        with collecting() as session:
            xs = TrackedList(label="xs")
            xs.append(1)
        path = save_collector(session, tmp_path / "session.jsonl")
        (loaded,) = read_profiles(path)
        assert loaded.label == "xs"


class TestErrors:
    def test_event_before_header(self):
        with pytest.raises(ValueError, match="before any header"):
            list(load_profiles(io.StringIO("[0, 0, 0, 0, 1, 0]\n")))

    def test_unsupported_version(self):
        header = '{"type": "profile", "version": 99, "instance_id": 0, "kind": "list", "events": 0}'
        with pytest.raises(ValueError, match="version"):
            list(load_profiles(io.StringIO(header + "\n")))

    def test_truncated_profile(self):
        header = '{"type": "profile", "version": 1, "instance_id": 0, "kind": "list", "events": 2}'
        body = "[0, 0, 0, 0, 1, 0]"
        with pytest.raises(ValueError, match="truncated"):
            list(load_profiles(io.StringIO(header + "\n" + body + "\n")))

    def test_excess_events(self):
        header = '{"type": "profile", "version": 1, "instance_id": 0, "kind": "list", "events": 0}'
        body = "[0, 0, 0, 0, 1, 0]"
        with pytest.raises(ValueError, match="more events"):
            list(load_profiles(io.StringIO(header + "\n" + body + "\n")))

    def test_blank_lines_skipped(self):
        profiles = [make_profile([(OP.READ, 0, 1)])]
        buffer = io.StringIO()
        dump_profiles(profiles, buffer)
        padded = "\n" + buffer.getvalue().replace("\n", "\n\n")
        assert len(list(load_profiles(io.StringIO(padded)))) == 1


class TestPostMortemAnalysis:
    def test_loaded_profiles_analyze_identically(self, tmp_path):
        """The decoupled workflow: capture → save → load → mine."""
        with collecting() as session:
            xs = TrackedList(label="hot")
            for i in range(300):
                xs.append(i)
        path = save_collector(session, tmp_path / "cap.jsonl")

        live_report = UseCaseEngine().analyze(session.profiles())
        loaded_report = UseCaseEngine().analyze(read_profiles(path))
        assert [u.kind for u in live_report.use_cases] == [
            u.kind for u in loaded_report.use_cases
        ]
        assert UseCaseKind.LONG_INSERT in {
            u.kind for u in loaded_report.use_cases
        }


class TestMerge:
    def test_merge_renumbers_instances(self):
        from repro.events import merge_profiles

        group_a = [make_profile([(OP.READ, 0, 1)]), make_profile([(OP.READ, 1, 2)])]
        group_b = [make_profile([(OP.WRITE, 0, 1)])]
        merged = merge_profiles([group_a, group_b])
        assert [p.instance_id for p in merged] == [0, 1, 2]
        for profile in merged:
            for event in profile:
                assert event.instance_id == profile.instance_id

    def test_merge_offsets_threads(self):
        from repro.events import RuntimeProfile, merge_profiles
        from .conftest import make_event

        a = RuntimeProfile.from_events(
            [make_event(0, OP.READ, 0, 1, thread_id=0),
             make_event(1, OP.READ, 0, 1, thread_id=1)]
        )
        b = RuntimeProfile.from_events(
            [make_event(0, OP.READ, 0, 1, thread_id=0)]
        )
        merged = merge_profiles([[a], [b]])
        assert merged[0].thread_ids == [0, 1]
        assert merged[1].thread_ids == [2]  # offset past group A's threads

    def test_merge_archives(self, tmp_path):
        from repro.events import merge_archives

        for k in range(2):
            save_profiles(
                [make_profile([(OP.INSERT, i, i + 1) for i in range(5)])],
                tmp_path / f"cap{k}.jsonl",
            )
        merged = merge_archives([tmp_path / "cap0.jsonl", tmp_path / "cap1.jsonl"])
        assert len(merged) == 2
        assert {p.instance_id for p in merged} == {0, 1}

    def test_merged_profiles_analyzable(self):
        from repro.events import merge_profiles
        from repro.usecases import UseCaseEngine

        hot = make_profile([(OP.INSERT, i, i + 1) for i in range(300)])
        cold = make_profile([(OP.READ, 0, 5)])
        merged = merge_profiles([[hot], [cold]])
        report = UseCaseEngine().analyze(merged)
        assert report.instances_analyzed == 2
        assert report.instances_flagged == 1
