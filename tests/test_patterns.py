"""Unit tests for pattern segmentation, classification and regularity."""

from __future__ import annotations

import pytest

from repro.events import OperationKind, collecting
from repro.patterns import (
    DetectorConfig,
    PatternType,
    RegularityClassifier,
    RegularityConfig,
    detect,
    segment,
)
from repro.structures import TrackedList

from .conftest import make_event, make_profile

OP = OperationKind


class TestSegmentation:
    def test_single_forward_read_run(self):
        profile = make_profile([(OP.READ, i, 10) for i in range(10)])
        runs = segment(profile)
        assert len(runs) == 1
        run = runs[0]
        assert run.category == "read"
        assert run.direction == 1
        assert run.length == 10
        assert run.first_position == 0 and run.last_position == 9

    def test_direction_change_splits(self):
        specs = [(OP.READ, i, 10) for i in range(5)] + [
            (OP.READ, i, 10) for i in range(4, -1, -1)
        ]
        runs = segment(make_profile(specs))
        assert len(runs) == 2
        assert runs[0].direction == 1
        assert runs[1].direction == -1

    def test_category_change_splits(self):
        specs = [(OP.INSERT, i, i + 1) for i in range(5)] + [
            (OP.READ, i, 5) for i in range(5)
        ]
        runs = segment(make_profile(specs))
        assert [r.category for r in runs] == ["insert", "read"]

    def test_gap_splits(self):
        specs = [(OP.READ, 0, 100), (OP.READ, 1, 100), (OP.READ, 50, 100)]
        runs = segment(make_profile(specs))
        assert [r.length for r in runs] == [2, 1]

    def test_max_gap_parameter(self):
        specs = [(OP.READ, 0, 100), (OP.READ, 2, 100), (OP.READ, 4, 100)]
        assert len(segment(make_profile(specs), max_gap=1)) == 3
        assert len(segment(make_profile(specs), max_gap=2)) == 1

    def test_breakers_end_runs(self):
        specs = (
            [(OP.INSERT, i, i + 1) for i in range(3)]
            + [(OP.CLEAR, None, 0)]
            + [(OP.INSERT, i, i + 1) for i in range(3)]
        )
        runs = segment(make_profile(specs))
        assert [r.length for r in runs] == [3, 3]

    def test_forall_is_transparent(self):
        specs = (
            [(OP.FORALL, None, 5)]
            + [(OP.READ, i, 5) for i in range(5)]
        )
        runs = segment(make_profile(specs))
        assert len(runs) == 1
        assert runs[0].length == 5

    def test_search_breaks_but_is_not_a_run(self):
        specs = (
            [(OP.READ, 0, 5), (OP.READ, 1, 5)]
            + [(OP.SEARCH, 3, 5)]
            + [(OP.READ, 2, 5), (OP.READ, 3, 5)]
        )
        runs = segment(make_profile(specs))
        assert [r.category for r in runs] == ["read", "read"]

    def test_threads_segment_independently(self):
        events = []
        seq = 0
        for i in range(6):
            events.append(make_event(seq, OP.READ, i, 10, thread_id=0))
            seq += 1
            events.append(make_event(seq, OP.READ, 9 - i, 10, thread_id=1))
            seq += 1
        from repro.events import RuntimeProfile

        profile = RuntimeProfile.from_events(events)
        runs = segment(profile)
        assert len(runs) == 2
        directions = {r.thread_id: r.direction for r in runs}
        assert directions == {0: 1, 1: -1}

    def test_stationary_run(self):
        runs = segment(make_profile([(OP.READ, 3, 10)] * 4))
        assert len(runs) == 1
        assert runs[0].direction == 0
        assert runs[0].distinct_positions == 1

    def test_empty_profile(self):
        assert segment(make_profile([])) == []


class TestClassification:
    def detect_types(self, specs, **cfg):
        analysis = detect(make_profile(specs), DetectorConfig(**cfg) if cfg else None)
        return [p.pattern_type for p in analysis.patterns]

    def test_read_forward(self):
        assert self.detect_types([(OP.READ, i, 5) for i in range(5)]) == [
            PatternType.READ_FORWARD
        ]

    def test_read_backward(self):
        assert self.detect_types(
            [(OP.READ, i, 5) for i in range(4, -1, -1)]
        ) == [PatternType.READ_BACKWARD]

    def test_write_forward_backward(self):
        assert self.detect_types([(OP.WRITE, i, 5) for i in range(5)]) == [
            PatternType.WRITE_FORWARD
        ]
        assert self.detect_types(
            [(OP.WRITE, i, 5) for i in range(4, -1, -1)]
        ) == [PatternType.WRITE_BACKWARD]

    def test_insert_back_via_append(self):
        # Appends: position == size-1 at each event.
        assert self.detect_types(
            [(OP.INSERT, i, i + 1) for i in range(5)]
        ) == [PatternType.INSERT_BACK]

    def test_insert_front(self):
        assert self.detect_types(
            [(OP.INSERT, 0, i + 1) for i in range(5)]
        ) == [PatternType.INSERT_FRONT]

    def test_delete_back_via_pop(self):
        # pop(): position == old size-1, recorded size is post-delete.
        assert self.detect_types(
            [(OP.DELETE, i, i) for i in range(4, -1, -1)]
        ) == [PatternType.DELETE_BACK]

    def test_delete_front(self):
        assert self.detect_types(
            [(OP.DELETE, 0, 5 - i - 1) for i in range(5)]
        ) == [PatternType.DELETE_FRONT]

    def test_stationary_read_unclassified(self):
        assert self.detect_types([(OP.READ, 3, 10)] * 4) == [
            PatternType.UNCLASSIFIED
        ]

    def test_unclassified_filtered_when_configured(self):
        assert (
            self.detect_types([(OP.READ, 3, 10)] * 4, keep_unclassified=False)
            == []
        )

    def test_min_run_length_filters_singletons(self):
        specs = [(OP.READ, 0, 5), (OP.WRITE, 1, 5)]  # two length-1 runs
        assert self.detect_types(specs) == []

    def test_coverage_computation(self):
        analysis = detect(make_profile([(OP.READ, i, 10) for i in range(5)]))
        pattern = analysis.patterns[0]
        assert pattern.coverage == pytest.approx(0.5)
        assert pattern.distinct_positions == 5

    def test_pattern_describe(self):
        analysis = detect(make_profile([(OP.READ, i, 5) for i in range(5)]))
        assert "Read-Forward" in analysis.patterns[0].describe()


class TestPatternAnalysis:
    def test_histogram_and_counts(self):
        specs = (
            [(OP.INSERT, i, i + 1) for i in range(5)]
            + [(OP.READ, i, 5) for i in range(5)]
            + [(OP.CLEAR, None, 0)]
            + [(OP.INSERT, i, i + 1) for i in range(5)]
        )
        analysis = detect(make_profile(specs))
        assert analysis.count(PatternType.INSERT_BACK) == 2
        assert analysis.count(PatternType.READ_FORWARD) == 1
        hist = analysis.histogram()
        assert hist[PatternType.INSERT_BACK] == 2

    def test_fraction_in(self):
        specs = [(OP.INSERT, i, i + 1) for i in range(10)] + [
            (OP.READ, i, 10) for i in range(10)
        ]
        analysis = detect(make_profile(specs))
        assert analysis.fraction_in(
            lambda p: p.pattern_type.is_insert
        ) == pytest.approx(0.5)

    def test_patterns_cover_disjoint_events(self):
        specs = (
            [(OP.INSERT, i, i + 1) for i in range(50)]
            + [(OP.READ, i, 50) for i in range(50)]
            + [(OP.READ, i, 50) for i in range(49, -1, -1)]
        )
        analysis = detect(make_profile(specs))
        total = sum(p.length for p in analysis.patterns)
        assert total <= len(analysis.profile)
        spans = sorted((p.start, p.stop) for p in analysis.patterns)
        for (s1, e1), (s2, e2) in zip(spans, spans[1:]):
            assert e1 <= s2 + 1  # boundary event may start the next run


class TestDetectorOnRealStructures:
    def test_fill_then_scan(self):
        with collecting():
            xs = TrackedList()
            for i in range(100):
                xs.append(i)
            for _ in range(3):
                list(xs)
            analysis = detect(xs.profile())
        assert analysis.count(PatternType.INSERT_BACK) == 1
        assert analysis.count(PatternType.READ_FORWARD) == 3

    def test_pop_loop_is_delete_back(self):
        with collecting():
            xs = TrackedList(range(20))
            while len(xs):
                xs.pop()
            analysis = detect(xs.profile())
        assert analysis.count(PatternType.DELETE_BACK) == 1

    def test_queue_usage_patterns(self):
        with collecting():
            xs = TrackedList()
            for i in range(20):
                xs.append(i)
            while len(xs):
                xs.pop(0)
            analysis = detect(xs.profile())
        assert analysis.count(PatternType.INSERT_BACK) == 1
        assert analysis.count(PatternType.DELETE_FRONT) == 1

    def test_reverse_fill_is_insert_front(self):
        with collecting():
            xs = TrackedList()
            for i in range(20):
                xs.insert(0, i)
            analysis = detect(xs.profile())
        assert analysis.count(PatternType.INSERT_FRONT) == 1


class TestRegularity:
    def test_repeated_pattern_is_regular(self):
        specs = []
        for _ in range(5):
            specs += [(OP.READ, i, 10) for i in range(10)]
            specs += [(OP.READ, 5, 10)] * 1  # breaker-ish stationary event
        verdict = RegularityClassifier().classify(make_profile(specs))
        assert verdict.is_regular
        assert PatternType.READ_FORWARD in verdict.recurring_types

    def test_dominant_single_pattern_is_regular(self):
        specs = [(OP.INSERT, i, i + 1) for i in range(100)] + [
            (OP.READ, 0, 100)
        ]
        verdict = RegularityClassifier().classify(make_profile(specs))
        assert verdict.is_regular
        assert verdict.dominant_type is PatternType.INSERT_BACK

    def test_random_accesses_not_regular(self):
        import random

        rng = random.Random(42)
        specs = []
        last = 50
        for _ in range(200):
            # jump around with gaps > 1 so no runs form
            nxt = (last + rng.randrange(5, 40)) % 100
            specs.append((OP.READ, nxt, 100))
            last = nxt
        verdict = RegularityClassifier().classify(make_profile(specs))
        assert not verdict.is_regular

    def test_short_profile_not_regular(self):
        specs = [(OP.READ, i, 3) for i in range(3)]
        verdict = RegularityClassifier(
            RegularityConfig(min_events=10)
        ).classify(make_profile(specs))
        assert not verdict.is_regular

    def test_count_regular(self):
        regular = make_profile(
            [(OP.INSERT, i, i + 1) for i in range(100)]
        )
        irregular = make_profile([(OP.READ, (i * 37) % 90, 100) for i in range(50)])
        classifier = RegularityClassifier()
        assert classifier.count_regular([regular, irregular]) == 1

    def test_describe(self):
        verdict = RegularityClassifier().classify(
            make_profile([(OP.INSERT, i, i + 1) for i in range(100)])
        )
        assert "regularity" in verdict.describe()
