"""`dsspy fsck`: the offline deep-verifier must tell the truth about a
state directory (read-only by default), and `--repair` must quarantine
damage — never delete it — and rebuild a checkpoint that matches what
a journal replay from scratch produces.
"""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

from repro.service.durability import (
    CHECKPOINT_VERSION,
    SessionJournal,
    engine_to_dict,
    recover_session_dir,
)
from repro.service.fsck import QUARANTINE_DIRNAME, fsck_session_dir, fsck_state_dir
from repro.service.router import shard_for
from repro.service.fleet import shard_dir_name

REPO = Path(__file__).resolve().parent.parent


def _raws(n: int, base: int = 0) -> list:
    return [(1, 0, 0, (base + i) % 4, 4, 0, None) for i in range(n)]


def _fabricate(directory: Path, *, windows: int = 3, per_window: int = 4,
               segment_max: int = 1 << 22, fin: bool = False) -> int:
    """An on-disk journaled session; returns the event count."""
    with SessionJournal(directory, segment_max_bytes=segment_max) as journal:
        journal.append_register(
            [{"id": 1, "kind": "list", "site": None, "label": "t"}]
        )
        for w in range(windows):
            journal.append_events(w * per_window, _raws(per_window, w * per_window))
        if fin:
            journal.append_fin()
    return windows * per_window


def _write_checkpoint(directory: Path) -> dict:
    """A valid checkpoint derived the same way the daemon derives one."""
    recovered = recover_session_dir(directory)
    state = {
        "version": CHECKPOINT_VERSION,
        "session": directory.name,
        "received": recovered.received,
        "applied": recovered.applied,
        "duplicates": recovered.duplicates,
        "engine": engine_to_dict(recovered.engine),
    }
    (directory / "checkpoint.json").write_text(
        json.dumps(state, separators=(",", ":"))
    )
    return state


class TestCleanSessions:
    def test_clean_journal_passes(self, tmp_path):
        events = _fabricate(tmp_path / "s")
        report = fsck_session_dir(tmp_path / "s")
        assert report["ok"]
        assert report["problems"] == []
        assert report["received"] == events
        assert not report["finished"]

    def test_finished_session_reports_fin(self, tmp_path):
        _fabricate(tmp_path / "s", fin=True)
        assert fsck_session_dir(tmp_path / "s")["finished"]

    def test_valid_checkpoint_recognized(self, tmp_path):
        events = _fabricate(tmp_path / "s")
        _write_checkpoint(tmp_path / "s")
        report = fsck_session_dir(tmp_path / "s")
        assert report["ok"]
        assert report["checkpoint"] == {
            "present": True, "valid": True, "received": events, "applied": events,
            "version": CHECKPOINT_VERSION,
        }

    def test_repair_on_clean_directory_changes_nothing(self, tmp_path):
        _fabricate(tmp_path / "s")
        before = sorted(p.name for p in (tmp_path / "s").iterdir())
        report = fsck_session_dir(tmp_path / "s", repair=True)
        assert report["ok"] and not report["repaired"] and not report["quarantined"]
        assert sorted(p.name for p in (tmp_path / "s").iterdir()) == before


class TestTornTail:
    def test_detected_read_only_then_truncated_by_repair(self, tmp_path):
        events = _fabricate(tmp_path / "s")
        segment = sorted((tmp_path / "s").glob("journal-*.wal"))[-1]
        with segment.open("ab") as fh:
            fh.write(b"\x02\x99\x00\x00")  # header torn mid-crash
        report = fsck_session_dir(tmp_path / "s")
        assert not report["ok"]
        assert any("torn tail" in p for p in report["problems"])

        repaired = fsck_session_dir(tmp_path / "s", repair=True)
        assert repaired["ok"]
        assert any("truncated torn tail" in r for r in repaired["repaired"])
        # Post-repair the directory is genuinely clean again.
        assert fsck_session_dir(tmp_path / "s")["ok"]
        assert recover_session_dir(tmp_path / "s").received == events


class TestBitFlips:
    def _flip(self, path: Path, offset: int) -> None:
        data = bytearray(path.read_bytes())
        data[offset] ^= 0xFF
        path.write_bytes(bytes(data))

    def test_mid_journal_flip_is_not_mistaken_for_a_crash_tail(self, tmp_path):
        # Small segments force a multi-segment journal; damage an early
        # segment so intact newer segments exist after it.
        _fabricate(tmp_path / "s", windows=8, segment_max=256)
        segments = sorted((tmp_path / "s").glob("journal-*.wal"))
        assert len(segments) >= 3
        self._flip(segments[0], segments[0].stat().st_size // 2)
        report = fsck_session_dir(tmp_path / "s")
        assert not report["ok"]
        assert any("not a crash tail" in p for p in report["problems"])

    def test_repair_quarantines_damage_and_every_later_segment(self, tmp_path):
        _fabricate(tmp_path / "s", windows=8, segment_max=256)
        session = tmp_path / "s"
        segments = sorted(session.glob("journal-*.wal"))
        victim_bytes = {s.name: s.read_bytes() for s in segments}
        damaged = segments[1]
        self._flip(damaged, damaged.stat().st_size - 10)

        report = fsck_session_dir(session, repair=True)
        assert report["ok"]
        # The damaged segment and everything after it moved aside —
        # replaying past broken continuity would fabricate history.
        expected_gone = [s.name for s in segments[1:]]
        assert sorted(report["quarantined"]) == sorted(expected_gone)
        qdir = session / QUARANTINE_DIRNAME
        for name in expected_gone:
            assert (qdir / name).exists()
        # Quarantine moves, never deletes: the intact later segments
        # are byte-identical, the damaged one carries its flip.
        assert (qdir / segments[2].name).read_bytes() == victim_bytes[segments[2].name]
        assert (qdir / damaged.name).read_bytes() != victim_bytes[damaged.name]
        # The rebuilt checkpoint matches an independent replay of what
        # survived (the acceptance criterion).
        ckpt = json.loads((session / "checkpoint.json").read_text())
        replay = recover_session_dir(session)
        assert ckpt["received"] == replay.received
        assert ckpt["applied"] == replay.applied
        assert ckpt["engine"] == engine_to_dict(replay.engine)
        assert fsck_session_dir(session)["ok"]

    def test_bit_flipped_checkpoint_quarantined_and_rebuilt(self, tmp_path):
        events = _fabricate(tmp_path / "s")
        _write_checkpoint(tmp_path / "s")
        ckpt_path = tmp_path / "s" / "checkpoint.json"
        self._flip(ckpt_path, 0)

        report = fsck_session_dir(tmp_path / "s")
        assert not report["ok"]
        assert any("checkpoint unreadable" in p for p in report["problems"])

        repaired = fsck_session_dir(tmp_path / "s", repair=True)
        assert repaired["ok"]
        assert "checkpoint.json" in repaired["quarantined"]
        assert (tmp_path / "s" / QUARANTINE_DIRNAME / "checkpoint.json").exists()
        rebuilt = json.loads(ckpt_path.read_text())
        assert rebuilt["received"] == events
        replay = recover_session_dir(tmp_path / "s")
        assert rebuilt["engine"] == engine_to_dict(replay.engine)

    def test_checkpoint_naming_wrong_session_is_flagged(self, tmp_path):
        _fabricate(tmp_path / "s")
        state = _write_checkpoint(tmp_path / "s")
        state["session"] = "somebody-else"
        (tmp_path / "s" / "checkpoint.json").write_text(json.dumps(state))
        report = fsck_session_dir(tmp_path / "s")
        assert not report["ok"]
        assert any("names session" in p for p in report["problems"])


class TestCursorContinuity:
    def test_gap_between_windows_is_silent_loss(self, tmp_path):
        with SessionJournal(tmp_path / "s") as journal:
            journal.append_events(0, _raws(4))
            journal.append_events(8, _raws(2, 8))  # events 4..8 on no disk
        report = fsck_session_dir(tmp_path / "s")
        assert not report["ok"]
        assert any("cursor gap" in p for p in report["problems"])

    def test_overlap_is_fine(self, tmp_path):
        with SessionJournal(tmp_path / "s") as journal:
            journal.append_events(0, _raws(4))
            journal.append_events(2, _raws(4, 2))  # retransmit overlap
        assert fsck_session_dir(tmp_path / "s")["ok"]

    def test_journal_starting_past_zero_needs_a_checkpoint(self, tmp_path):
        with SessionJournal(tmp_path / "s") as journal:
            journal.append_events(0, _raws(4))
        # Simulate checkpoint-then-prune where the checkpoint vanished.
        with SessionJournal(tmp_path / "t") as journal:
            journal.append_events(4, _raws(4, 4))
        assert fsck_session_dir(tmp_path / "s")["ok"]
        report = fsck_session_dir(tmp_path / "t")
        assert not report["ok"]
        assert any("no checkpoint" in p for p in report["problems"])


class TestStateDirLayouts:
    def test_daemon_layout_checks_every_session(self, tmp_path):
        _fabricate(tmp_path / "sess-a")
        _fabricate(tmp_path / "sess-b")
        report = fsck_state_dir(tmp_path)
        assert report["ok"]
        assert report["checked"] == 2
        assert report["with_problems"] == 0

    def test_bare_session_directory_accepted(self, tmp_path):
        _fabricate(tmp_path / "s")
        report = fsck_state_dir(tmp_path / "s")
        assert report["ok"] and report["checked"] == 1

    def test_misplaced_fleet_session_flagged(self, tmp_path):
        sid = "sess-x"
        wrong = 1 - shard_for(sid, 2)
        _fabricate(tmp_path / shard_dir_name(wrong) / sid)
        _fabricate(tmp_path / shard_dir_name(1 - wrong) / "placeholder-keep")
        report = fsck_state_dir(tmp_path)
        entry = next(s for s in report["sessions"] if s["session"] == sid)
        assert any("hashes to" in p for p in entry["problems"])
        assert not report["ok"]

    def test_shards_override_controls_ownership_width(self, tmp_path):
        sid = "sess-x"
        home = shard_for(sid, 4)
        _fabricate(tmp_path / shard_dir_name(home) / sid)
        assert fsck_state_dir(tmp_path, shards=4)["ok"]

    def test_missing_root_is_a_problem_not_a_crash(self, tmp_path):
        report = fsck_state_dir(tmp_path / "nope")
        assert not report["ok"]
        assert any("not a directory" in p for p in report["problems"])


class TestCli:
    def _run(self, *argv):
        return subprocess.run(
            [sys.executable, "-m", "repro.cli", "fsck", *argv],
            capture_output=True, text=True, cwd=REPO,
            env={"PYTHONPATH": str(REPO / "src"), "PATH": "/usr/bin:/bin"},
        )

    def test_clean_dir_exits_zero_with_json_report(self, tmp_path):
        _fabricate(tmp_path / "s")
        proc = self._run(str(tmp_path))
        assert proc.returncode == 0, proc.stderr
        report = json.loads(proc.stdout)  # stdout is machine-readable
        assert report["ok"] and report["checked"] == 1
        assert "1 session(s)" in proc.stderr

    def test_corruption_exits_one_and_names_the_problem(self, tmp_path):
        _fabricate(tmp_path / "s")
        segment = next((tmp_path / "s").glob("journal-*.wal"))
        with segment.open("ab") as fh:
            fh.write(b"\x02")
        proc = self._run(str(tmp_path))
        assert proc.returncode == 1
        assert "NOT CLEAN" in proc.stderr
        assert "torn tail" in proc.stderr

    def test_repair_flag_fixes_then_exits_zero(self, tmp_path):
        _fabricate(tmp_path / "s")
        segment = next((tmp_path / "s").glob("journal-*.wal"))
        with segment.open("ab") as fh:
            fh.write(b"\x02")
        proc = self._run(str(tmp_path), "--repair")
        assert proc.returncode == 0, proc.stderr
        assert json.loads(proc.stdout)["repair"] is True
        assert self._run(str(tmp_path)).returncode == 0
