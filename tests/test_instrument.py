"""Unit tests for static analysis, rewriting and instrumented runs."""

from __future__ import annotations

import textwrap

import pytest

from repro.events import StructureKind
from repro.instrument import (
    RewriteConfig,
    count_by_kind,
    count_loc,
    find_sites,
    measure_slowdown,
    rewrite_source,
    run_instrumented,
    scan_program,
)

SAMPLE = textwrap.dedent(
    """
    import collections

    class Engine:
        def __init__(self):
            self.items = []
            self.cache = {}

    def build(n):
        values = [i for i in range(n)]
        buffer = [0] * n
        lookup = dict(a=1)
        seen = set()
        dq = collections.deque()
        return values, buffer, lookup, seen, dq
    """
)


class TestStaticAnalysis:
    def test_finds_all_site_kinds(self):
        sites = find_sites(SAMPLE)
        counts = count_by_kind(sites)
        assert counts[StructureKind.LIST] == 2  # [] literal + listcomp
        assert counts[StructureKind.DICTIONARY] == 2  # {} + dict()
        assert counts[StructureKind.ARRAY] == 1  # [0] * n
        assert counts[StructureKind.HASH_SET] == 1
        assert counts[StructureKind.QUEUE] == 1

    def test_variable_and_function_captured(self):
        sites = find_sites(SAMPLE)
        by_var = {s.variable: s for s in sites if s.variable}
        assert by_var["items"].function == "Engine.__init__"
        assert by_var["values"].function == "build"
        assert by_var["buffer"].kind is StructureKind.ARRAY

    def test_attribute_assignment_variable(self):
        sites = find_sites("self.rows = []")
        assert sites[0].variable == "rows"

    def test_fixed_size_alloc_not_double_counted(self):
        sites = find_sites("xs = [None] * 10")
        assert [s.kind for s in sites] == [StructureKind.ARRAY]

    def test_reversed_mult_order(self):
        sites = find_sites("xs = 10 * [0]")
        assert [s.kind for s in sites] == [StructureKind.ARRAY]

    def test_tracked_classes_count_as_species(self):
        sites = find_sites("xs = TrackedList()\nd = TrackedDict()")
        kinds = [s.kind for s in sites]
        assert kinds == [StructureKind.LIST, StructureKind.DICTIONARY]

    def test_sites_sorted_by_line(self):
        sites = find_sites(SAMPLE)
        linenos = [s.lineno for s in sites]
        assert linenos == sorted(linenos)

    def test_describe(self):
        (site,) = find_sites("xs = []", filename="prog.py")
        assert "prog.py:1" in site.describe()


class TestRewriter:
    def test_list_literal_rewritten(self):
        result = rewrite_source("xs = [1, 2]")
        assert "_dsspy_TrackedList([1, 2], label='xs')" in result.source
        assert result.rewrites == 1

    def test_fixed_size_alloc_rewritten_to_array(self):
        result = rewrite_source("buf = [0] * 32")
        assert "_dsspy_TrackedArray(32, fill=0, label='buf')" in result.source

    def test_list_call_wrapped(self):
        result = rewrite_source("xs = list(range(3))")
        assert "_dsspy_TrackedList(list(range(3))" in result.source

    def test_listcomp_rewritten(self):
        result = rewrite_source("xs = [i for i in range(3)]")
        assert "_dsspy_TrackedList(" in result.source

    def test_dicts_not_rewritten_by_default(self):
        result = rewrite_source("d = {'a': 1}")
        assert "_dsspy_TrackedDict(" not in result.source
        assert result.rewrites == 0

    def test_dicts_rewritten_when_enabled(self):
        result = rewrite_source(
            "d = {'a': 1}", config=RewriteConfig(dicts=True)
        )
        assert "_dsspy_TrackedDict({'a': 1}, label='d')" in result.source

    def test_call_arguments_left_alone(self):
        result = rewrite_source("print([1, 2, 3])")
        assert "_dsspy_TrackedList(" not in result.source

    def test_import_header_after_docstring(self):
        result = rewrite_source('"""Doc."""\nxs = []')
        lines = result.source.splitlines()
        assert lines[0] == '"""Doc."""'
        assert "from repro.structures import" in lines[1]

    def test_instrumented_source_is_valid_python(self):
        result = rewrite_source(SAMPLE)
        compile(result.source, "<test>", "exec")

    def test_annassign_rewritten(self):
        result = rewrite_source("xs: list = []")
        assert "_dsspy_TrackedList([], label='xs')" in result.source


class TestRunner:
    def test_run_instrumented_collects_profiles(self):
        source = textwrap.dedent(
            """
            def main(n):
                xs = []
                for i in range(n):
                    xs.append(i)
                return sum(v for v in xs)
            """
        )
        run = run_instrumented(source, entry="main", args=(50,))
        assert run.result == sum(range(50))
        assert run.collector.instance_count == 1
        profile = run.profiles[0]
        assert profile.label == "xs"
        assert len(profile) > 50

    def test_instrumented_behaviour_matches_plain(self):
        source = textwrap.dedent(
            """
            def main():
                xs = [5, 3, 1]
                xs.sort()
                xs.insert(0, 0)
                buf = [0] * 4
                buf[2] = 9
                return xs + [buf[2]]
            """
        )
        namespace: dict = {}
        exec(compile(source, "<plain>", "exec"), namespace)
        expected = namespace["main"]()
        run = run_instrumented(source, entry="main")
        assert run.result == expected

    def test_module_level_code_runs(self):
        run = run_instrumented("xs = [1]\nxs.append(2)\ntotal = sum(xs.raw())")
        assert run.collector.instance_count == 1

    def test_measure_slowdown_positive(self):
        source = textwrap.dedent(
            """
            def main():
                xs = []
                for i in range(2000):
                    xs.append(i)
                return len(xs)
            main()
            """
        )
        result = measure_slowdown(source, repeats=2)
        assert result.instrumented_seconds > 0
        assert result.factor > 1.0


class TestCorpus:
    def test_count_loc(self):
        assert count_loc("a = 1\n\n# comment\nb = 2\n") == 2

    def test_scan_program_directory(self, tmp_path):
        (tmp_path / "a.py").write_text("xs = []\nd = {}\n")
        (tmp_path / "b.py").write_text("buf = [0] * 4\n")
        stats = scan_program(tmp_path, name="demo", domain="Test")
        assert stats.name == "demo"
        assert stats.loc == 3
        assert stats.dynamic_instances == 2  # list + dict
        assert stats.array_instances == 1
        assert stats.count(StructureKind.LIST) == 1

    def test_scan_single_file(self, tmp_path):
        f = tmp_path / "solo.py"
        f.write_text("xs = [1]\n")
        stats = scan_program(f)
        assert stats.dynamic_instances == 1

    def test_corpus_aggregation(self, tmp_path):
        for name, body in [("p1", "xs = []\n"), ("p2", "d = {}\nys = []\n")]:
            d = tmp_path / name
            d.mkdir()
            (d / "main.py").write_text(body)
        from repro.instrument import scan_corpus

        corpus = scan_corpus(tmp_path, domains={"p1": "Game", "p2": "Office"})
        assert corpus.total_dynamic_instances == 3
        assert corpus.kind_share(StructureKind.LIST) == pytest.approx(2 / 3)
        totals = corpus.domain_totals()
        assert totals["Game"][0] == 1
        assert totals["Office"][0] == 2
