"""Tests for the density heatmap and scanner failure tolerance."""

from __future__ import annotations

import numpy as np
from repro.events import OperationKind, RuntimeProfile
from repro.instrument import scan_program
from repro.viz import density_grid, render_density

from .conftest import make_profile

OP = OperationKind


class TestDensityGrid:
    def test_counts_conserved(self):
        profile = make_profile([(OP.READ, i % 20, 20) for i in range(500)])
        grid = density_grid(profile, time_bins=10, position_bins=5)
        assert int(grid.sum()) == 500

    def test_positionless_excluded(self):
        profile = make_profile(
            [(OP.READ, 0, 5), (OP.CLEAR, None, 0), (OP.READ, 1, 5)]
        )
        grid = density_grid(profile, time_bins=4, position_bins=2)
        assert int(grid.sum()) == 2

    def test_empty_profile(self):
        grid = density_grid(RuntimeProfile(0))
        assert grid.shape == (16, 60)
        assert not grid.any()

    def test_hot_spot_lands_in_right_band(self):
        # All accesses at the top index.
        profile = make_profile([(OP.READ, 99, 100)] * 50)
        grid = density_grid(profile, time_bins=5, position_bins=4)
        assert grid[3].sum() == 50  # top band
        assert grid[:3].sum() == 0

    def test_time_binning_spreads(self):
        profile = make_profile([(OP.READ, 0, 2)] * 100)
        grid = density_grid(profile, time_bins=10, position_bins=2)
        assert np.count_nonzero(grid[0]) == 10  # every time bin hit

    def test_render_shapes(self):
        profile = make_profile([(OP.READ, i % 30, 30) for i in range(300)])
        text = render_density(profile, time_bins=20, position_bins=6)
        assert text.count("|") == 12  # 6 rows x 2 borders
        assert "peak" in text

    def test_render_positionless(self):
        profile = make_profile([(OP.CLEAR, None, 0)] * 3)
        assert "no positional events" in render_density(profile)


class TestScannerRobustness:
    def test_unparsable_file_skipped(self, tmp_path):
        (tmp_path / "good.py").write_text("xs = []\n")
        (tmp_path / "broken.py").write_text("def broken(:\n    pass\n")
        stats = scan_program(tmp_path, name="mixed")
        assert stats.dynamic_instances == 1
        assert len(stats.unparsable) == 1
        assert stats.unparsable[0].endswith("broken.py")
        # Broken files still contribute LOC (they are part of the corpus).
        assert stats.loc == 3

    def test_all_broken_program(self, tmp_path):
        (tmp_path / "a.py").write_text("!!!\n")
        stats = scan_program(tmp_path)
        assert stats.sites == []
        assert stats.unparsable

    def test_clean_program_has_no_unparsable(self, tmp_path):
        (tmp_path / "a.py").write_text("xs = []\n")
        assert scan_program(tmp_path).unparsable == []
