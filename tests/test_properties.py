"""Property-based tests (hypothesis) on the core invariants.

Four invariant families:

1. TrackedList is observationally equivalent to ``list`` under any
   operation sequence (the proxy contract the whole system rests on).
2. Pattern detection invariants: patterns are disjoint, ordered, within
   bounds, coverage in [0, 1], and segmentation is insensitive to
   foreign-thread interleaving.
3. Machine-model invariants: speedup bounded by core count, makespan
   bounds, apportionment exactness.
4. Event accounting: every recorded operation appears exactly once, in
   order.
"""

from __future__ import annotations

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.events import EventCollector, OperationKind, collecting
from repro.parallel import MachineConfig, ParallelExecutor, SimulatedMachine
from repro.patterns import detect, segment
from repro.structures import TrackedList
from repro.workloads.corpus_gen import apportion

from .conftest import make_event, make_profile

# -- strategy: list operation sequences -------------------------------------

_ops = st.one_of(
    st.tuples(st.just("append"), st.integers(-100, 100)),
    st.tuples(st.just("insert"), st.integers(-5, 5), st.integers(-100, 100)),
    st.tuples(st.just("pop"),),
    st.tuples(st.just("pop0"),),
    st.tuples(st.just("set"), st.integers(-5, 5), st.integers(-100, 100)),
    st.tuples(st.just("get"), st.integers(-5, 5)),
    st.tuples(st.just("del"), st.integers(-5, 5)),
    st.tuples(st.just("remove"), st.integers(-100, 100)),
    st.tuples(st.just("contains"), st.integers(-100, 100)),
    st.tuples(st.just("index"), st.integers(-100, 100)),
    st.tuples(st.just("count"), st.integers(-100, 100)),
    st.tuples(st.just("sort"),),
    st.tuples(st.just("reverse"),),
    st.tuples(st.just("clear"),),
    st.tuples(st.just("iter"),),
    st.tuples(st.just("extend"), st.lists(st.integers(-100, 100), max_size=5)),
)


def _apply(target, op) -> object:
    """Apply one op; returns the observable outcome (or exception name)."""
    name = op[0]
    try:
        if name == "append":
            target.append(op[1])
        elif name == "insert":
            target.insert(op[1], op[2])
        elif name == "pop":
            return target.pop()
        elif name == "pop0":
            return target.pop(0)
        elif name == "set":
            target[op[1]] = op[2]
        elif name == "get":
            return target[op[1]]
        elif name == "del":
            del target[op[1]]
        elif name == "remove":
            target.remove(op[1])
        elif name == "contains":
            return op[1] in target
        elif name == "index":
            return target.index(op[1])
        elif name == "count":
            return target.count(op[1])
        elif name == "sort":
            target.sort()
        elif name == "reverse":
            target.reverse()
        elif name == "clear":
            target.clear()
        elif name == "iter":
            return list(iter(target))
        elif name == "extend":
            target.extend(op[1])
    except (IndexError, ValueError) as exc:
        return type(exc).__name__
    return None


class TestTrackedListEquivalence:
    @given(ops=st.lists(_ops, max_size=40))
    @settings(max_examples=150, deadline=None)
    def test_behaves_like_list(self, ops):
        plain: list = []
        with collecting():
            tracked = TrackedList()
            for op in ops:
                expected = _apply(plain, op)
                actual = _apply(tracked, op)
                assert actual == expected, op
                assert tracked.raw() == plain

    @given(
        initial=st.lists(st.integers(), max_size=20),
        capacity=st.integers(0, 30),
    )
    @settings(max_examples=60, deadline=None)
    def test_capacity_never_shrinks_reported_size(self, initial, capacity):
        with collecting():
            tracked = TrackedList(initial, capacity=capacity)
            profile = tracked.profile()
        for event in profile:
            assert event.size >= min(capacity, event.size)
            assert event.size >= 0


class TestPatternInvariants:
    profile_events = st.lists(
        st.tuples(
            st.sampled_from(
                [
                    OperationKind.READ,
                    OperationKind.WRITE,
                    OperationKind.INSERT,
                    OperationKind.DELETE,
                    OperationKind.SEARCH,
                    OperationKind.CLEAR,
                    OperationKind.SORT,
                ]
            ),
            st.integers(0, 30),
            st.integers(1, 31),
        ),
        max_size=120,
    )

    @given(specs=profile_events)
    @settings(max_examples=150, deadline=None)
    def test_patterns_disjoint_ordered_bounded(self, specs):
        profile = make_profile(
            [
                (op, None if op in (OperationKind.CLEAR, OperationKind.SORT) else pos, size)
                for op, pos, size in specs
            ]
        )
        analysis = detect(profile)
        last_stop = 0
        for pattern in analysis.patterns:
            assert 0 <= pattern.start < pattern.stop <= len(profile)
            assert pattern.start >= last_stop  # single-thread: disjoint
            last_stop = pattern.stop
            assert pattern.length >= 2
            assert 0.0 <= pattern.coverage <= 1.0
            assert pattern.distinct_positions <= pattern.length

    @given(specs=profile_events)
    @settings(max_examples=100, deadline=None)
    def test_run_lengths_never_exceed_event_count(self, specs):
        profile = make_profile([(op, pos, size) for op, pos, size in specs])
        runs = segment(profile)
        assert sum(r.length for r in runs) <= len(profile)

    @given(
        positions=st.lists(st.integers(0, 50), min_size=2, max_size=60),
        noise_thread=st.integers(1, 3),
    )
    @settings(max_examples=80, deadline=None)
    def test_foreign_thread_noise_does_not_break_runs(
        self, positions, noise_thread
    ):
        """Thread 0's runs are identical with or without interleaved
        events from other threads (the paper captures thread ids for
        exactly this)."""
        from repro.events import RuntimeProfile

        base_events = [
            make_event(i, OperationKind.READ, p, 51, thread_id=0)
            for i, p in enumerate(positions)
        ]
        clean = RuntimeProfile.from_events(base_events)
        noisy_events = []
        seq = 0
        for event in base_events:
            noisy_events.append(
                make_event(seq, event.op, event.position, event.size, thread_id=0)
            )
            seq += 1
            noisy_events.append(
                make_event(
                    seq, OperationKind.READ, (seq * 13) % 40, 51,
                    thread_id=noise_thread,
                )
            )
            seq += 1
        noisy = RuntimeProfile.from_events(noisy_events)

        clean_runs = [
            (r.category, r.direction, r.length, r.first_position, r.last_position)
            for r in segment(clean)
        ]
        noisy_runs = [
            (r.category, r.direction, r.length, r.first_position, r.last_position)
            for r in segment(noisy)
            if r.thread_id == 0
        ]
        assert clean_runs == noisy_runs


class TestMachineInvariants:
    @given(
        costs=st.lists(st.floats(0.1, 1e6), min_size=1, max_size=40),
        cores=st.integers(1, 32),
    )
    @settings(max_examples=150, deadline=None)
    def test_makespan_bounds(self, costs, cores):
        machine = SimulatedMachine(
            MachineConfig(cores=cores, task_overhead=0, fork_join_overhead=0)
        )
        makespan = machine.makespan(costs)
        total = sum(costs)
        assert makespan >= max(costs) - 1e-9
        assert makespan >= total / cores - 1e-6
        assert makespan <= total + 1e-6

    @given(
        work=st.floats(1, 1e9),
        cores=st.integers(1, 64),
    )
    @settings(max_examples=150, deadline=None)
    def test_speedup_bounded_by_cores(self, work, cores):
        machine = SimulatedMachine(MachineConfig(cores=cores))
        speedup = machine.data_parallel_speedup(work)
        assert speedup <= cores + 1e-9

    @given(
        total=st.integers(0, 10_000),
        weights=st.lists(st.integers(0, 1000), min_size=1, max_size=50),
    )
    @settings(max_examples=150, deadline=None)
    def test_apportion_exact_and_nonnegative(self, total, weights):
        result = apportion(total, weights)
        assert sum(result) == total
        assert all(v >= 0 for v in result)
        assert len(result) == len(weights)


class TestExecutorEquivalence:
    @given(
        items=st.lists(st.integers(-1000, 1000), max_size=200),
        workers=st.integers(1, 6),
    )
    @settings(max_examples=30, deadline=None)
    def test_parallel_map_matches_map(self, items, workers):
        ex = ParallelExecutor(workers)
        assert ex.parallel_map(lambda x: x * 3 + 1, items) == [
            x * 3 + 1 for x in items
        ]

    @given(
        items=st.lists(st.integers(0, 50), min_size=1, max_size=200),
        needle=st.integers(0, 50),
        workers=st.integers(1, 6),
    )
    @settings(max_examples=30, deadline=None)
    def test_parallel_search_matches_index(self, items, needle, workers):
        ex = ParallelExecutor(workers)
        hit = ex.parallel_search(items, lambda x: x == needle)
        expected = items.index(needle) if needle in items else None
        assert hit == expected


class TestEventAccounting:
    @given(
        n_instances=st.integers(1, 5),
        records=st.lists(
            st.tuples(st.integers(0, 4), st.integers(0, 100)), max_size=200
        ),
    )
    @settings(max_examples=80, deadline=None)
    def test_every_event_routed_once_in_order(self, n_instances, records):
        from repro.events import AccessKind

        collector = EventCollector()
        ids = [
            collector.register_instance(
                __import__("repro.events", fromlist=["StructureKind"]).StructureKind.LIST
            )
            for _ in range(n_instances)
        ]
        for which, pos in records:
            collector.record(
                ids[which % n_instances],
                OperationKind.READ,
                AccessKind.READ,
                pos,
                pos + 1,
            )
        profiles = collector.finish()
        total = sum(len(p) for p in profiles.values())
        assert total == len(records)
        seqs = sorted(
            event.seq for profile in profiles.values() for event in profile
        )
        assert seqs == list(range(len(records)))
