"""Daemon integration tests: sessions, resume, reaping, lifecycle."""

from __future__ import annotations

import threading
import time

import pytest

from repro.events import (
    AccessKind,
    EventCollector,
    OperationKind,
    pop_collector,
    push_collector,
)
from repro.service import (
    IngestPipeline,
    ProfilingDaemon,
    ProtocolError,
    RemoteChannel,
    ServiceClient,
    SessionState,
    fetch_stats,
)
from repro.testing import SimClock
from repro.usecases import UseCaseEngine
from repro.usecases.json_export import report_to_dict
from repro.workloads import gen_frequent_long_read, gen_long_insert


def _wait_for(cond, timeout: float = 5.0) -> bool:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if cond():
            return True
        time.sleep(0.01)
    return False


def _long_insert_raws(n: int = 600, instance: int = 0):
    """Synthetic append-only stream (insert at back, growing size)."""
    return [
        (instance, int(OperationKind.INSERT), int(AccessKind.WRITE), i, i + 1, 0, None)
        for i in range(n)
    ]


def _registration(instance: int = 0, label: str = "worker"):
    return {"id": instance, "kind": "list", "site": None, "label": label}


def _flagged(report_dict):
    return sorted(
        (u["instance_id"], u["abbreviation"]) for u in report_dict["use_cases"]
    )


class TestEndToEndRemoteChannel:
    def test_remote_report_matches_batch(self):
        with ProfilingDaemon(port=0) as daemon:
            channel = RemoteChannel(daemon.address, batch_size=64)
            collector = EventCollector(channel=channel)
            push_collector(collector)
            try:
                gen_long_insert()
                gen_frequent_long_read()
            finally:
                pop_collector()
            collector.finish()

            ack = channel.final_ack
            assert ack is not None, "FIN handshake did not complete"
            local = report_to_dict(UseCaseEngine().analyze(collector.profiles()))
            assert _flagged(ack["report"]) == _flagged(local)
            assert ack["report"]["instances_analyzed"] == local["instances_analyzed"]
            total = sum(len(p) for p in collector.profiles())
            assert ack["received"] == total

    def test_two_concurrent_clients_are_separate_sessions(self):
        with ProfilingDaemon(port=0) as daemon:
            acks: dict[str, dict] = {}
            errors: list[Exception] = []

            def run_client(name: str, instance: int) -> None:
                try:
                    client = ServiceClient(daemon.address)
                    client.register_instances([_registration(instance, name)])
                    raws = _long_insert_raws(400, instance)
                    for off in range(0, len(raws), 50):
                        client.send_events(off, raws[off : off + 50])
                    acks[name] = client.fin()
                    client.close()
                except Exception as exc:  # pragma: no cover - surfaced below
                    errors.append(exc)

            threads = [
                threading.Thread(target=run_client, args=(f"w{i}", i)) for i in (1, 2)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=10.0)
            assert not errors
            assert acks["w1"]["session"] != acks["w2"]["session"]
            for name in ("w1", "w2"):
                assert acks[name]["received"] == 400
                assert acks[name]["report"]["instances_analyzed"] == 1

            stats = fetch_stats(daemon.address)  # STATS without HELLO
            by_id = {s["session"]: s for s in stats["sessions"]}
            assert len(by_id) == 2
            for ack in acks.values():
                entry = by_id[ack["session"]]
                assert entry["state"] == SessionState.FINISHED
                assert entry["received"] == 400


class TestDisconnectAndResume:
    def test_abrupt_disconnect_still_emits_report(self, tmp_path):
        clock = SimClock()
        daemon = ProfilingDaemon(
            port=0, session_linger=30.0, report_dir=tmp_path, clock=clock
        )
        try:
            client = ServiceClient(daemon.address)
            sid = client.session_id
            client.register_instances([_registration()])
            client.send_events(0, _long_insert_raws(600))
            # Give the handler a chance to drain the frames, then vanish
            # without FIN.
            assert _wait_for(lambda: daemon.sessions[sid].received == 600)
            client._sock.close()

            assert _wait_for(
                lambda: daemon.sessions[sid].state == SessionState.DETACHED
            )
            clock.advance(31.0)  # past the linger window — no real waiting
            daemon.reap()
            session = daemon.sessions[sid]
            assert session.state == SessionState.FINISHED
            report = session.finish()
            assert report["instances_analyzed"] == 1
            assert (tmp_path / f"{sid}.json").exists()
        finally:
            daemon.close()

    def test_resume_retransmit_is_not_double_counted(self):
        raws = _long_insert_raws(600)
        with ProfilingDaemon(port=0, session_linger=30.0) as daemon:
            first = ServiceClient(daemon.address)
            sid = first.session_id
            first.register_instances([_registration()])
            first.send_events(0, raws[:400])
            assert _wait_for(lambda: daemon.sessions[sid].received == 400)
            first._sock.close()  # mid-stream death
            assert _wait_for(
                lambda: daemon.sessions[sid].state == SessionState.DETACHED
            )

            second = ServiceClient(daemon.address, session_id=sid)
            assert second.resumed
            assert second.server_received == 400
            # A conservative client rewinds further than necessary; the
            # overlap must be skipped, not folded twice.
            second.send_events(300, raws[300:])
            ack = second.fin()
            second.close()

            assert ack["received"] == 600
            session = daemon.sessions[sid]
            assert session.duplicates == 100
            assert session.stats()["folded"] == 600
            assert ack["report"]["instances_analyzed"] == 1

    def test_event_gap_is_a_protocol_error(self):
        with ProfilingDaemon(port=0) as daemon:
            client = ServiceClient(daemon.address)
            client.send_events(5, _long_insert_raws(10))  # nothing before 5
            with pytest.raises(ProtocolError, match="gap|server error"):
                client.heartbeat()

    def test_resuming_finished_session_is_rejected(self):
        with ProfilingDaemon(port=0) as daemon:
            client = ServiceClient(daemon.address)
            sid = client.session_id
            client.fin()
            client.close()
            with pytest.raises(ProtocolError):
                ServiceClient(daemon.address, session_id=sid)


class TestReaper:
    """Reaper policy runs on the daemon's clock: tests advance a
    SimClock instead of sleeping, so realistic timeouts (tens of
    seconds) cost nothing and the tests cannot flake on a slow CI
    machine racing a 50 ms window."""

    def test_silent_client_is_detached_after_heartbeat_timeout(self):
        clock = SimClock()
        with ProfilingDaemon(port=0, heartbeat_timeout=30.0, clock=clock) as daemon:
            client = ServiceClient(daemon.address)
            sid = client.session_id
            clock.advance(31.0)
            daemon.reap()
            # The reap closes the stale connection; the handler thread
            # notices and detaches — that part is real concurrency.
            assert _wait_for(
                lambda: daemon.sessions[sid].state == SessionState.DETACHED
            )
            client.close()

    def test_heartbeat_keeps_session_alive(self):
        clock = SimClock()
        with ProfilingDaemon(port=0, heartbeat_timeout=30.0, clock=clock) as daemon:
            client = ServiceClient(daemon.address)
            sid = client.session_id
            for _ in range(3):
                clock.advance(20.0)  # inside the timeout each time
                client.heartbeat()
                daemon.reap()
                assert daemon.sessions[sid].state == SessionState.ACTIVE
            client.close()

    def test_finished_session_is_evicted_after_linger(self):
        clock = SimClock()
        with ProfilingDaemon(port=0, session_linger=30.0, clock=clock) as daemon:
            client = ServiceClient(daemon.address)
            sid = client.session_id
            client.fin()
            client.close()
            clock.advance(29.0)
            daemon.reap()
            assert sid in daemon.sessions  # still inside the linger window
            clock.advance(2.0)
            daemon.reap()
            assert sid not in daemon.sessions


class TestLifecycle:
    def test_unix_socket_roundtrip_and_cleanup(self, tmp_path):
        path = tmp_path / "dsspy.sock"
        daemon = ProfilingDaemon(unix_socket=path)
        try:
            assert path.exists()
            assert daemon.address == f"unix:{path}"
            client = ServiceClient(daemon.address)
            client.register_instances([_registration()])
            client.send_events(0, _long_insert_raws(100))
            ack = client.fin()
            assert ack["received"] == 100
            client.close()
        finally:
            daemon.close()
        assert not path.exists()

    def test_close_finalizes_open_sessions(self, tmp_path):
        daemon = ProfilingDaemon(port=0, report_dir=tmp_path)
        client = ServiceClient(daemon.address)
        sid = client.session_id
        client.register_instances([_registration()])
        client.send_events(0, _long_insert_raws(200))
        assert _wait_for(lambda: daemon.sessions[sid].received == 200)
        daemon.close()  # no FIN ever arrived
        session = daemon.sessions[sid]
        assert session.state == SessionState.FINISHED
        assert session.finish()["instances_analyzed"] == 1
        assert (tmp_path / f"{sid}.json").exists()

    def test_shutdown_unblocks_serve_forever(self):
        daemon = ProfilingDaemon(port=0)
        server = threading.Thread(
            target=daemon.serve_forever, kwargs={"install_signals": False}
        )
        server.start()
        assert _wait_for(server.is_alive)
        daemon.handle_signal(15, None)  # what SIGTERM would do
        server.join(timeout=5.0)
        assert not server.is_alive()
        # After close the listener is gone: new connections must fail.
        with pytest.raises((ConnectionError, OSError)):
            ServiceClient(daemon.address)

    def test_close_is_idempotent(self):
        daemon = ProfilingDaemon(port=0)
        daemon.close()
        daemon.close()


class TestIngestPipelineOverflow:
    def _gated_fold(self):
        gate = threading.Event()
        folded: list = []

        def fold(batch):
            gate.wait(10.0)
            folded.extend(batch)

        return gate, folded, fold

    def test_decimate_keeps_one_in_stride(self):
        gate, folded, fold = self._gated_fold()
        pipeline = IngestPipeline(
            fold, max_pending_events=10, overflow="decimate", decimate_stride=10
        )
        first = _long_insert_raws(8)
        overflow = _long_insert_raws(8)
        pipeline.submit(first)  # fits
        assert _wait_for(lambda: pipeline.pending <= 8)
        pipeline.submit(overflow)  # 8 + 8 > 10 -> decimated
        assert pipeline.decimated == 7  # stride 10 keeps 1 of 8
        gate.set()
        pipeline.close()
        assert len(folded) == 9

    def test_spill_overflow_is_lossless_and_ordered(self, tmp_path):
        gate, folded, fold = self._gated_fold()
        pipeline = IngestPipeline(
            fold,
            max_pending_events=10,
            overflow="spill",
            spill_dir=str(tmp_path),
        )
        raws = _long_insert_raws(30)
        pipeline.submit(raws[:8])  # fits in RAM
        assert _wait_for(lambda: pipeline.pending <= 8)
        pipeline.submit(raws[8:20])  # overflows -> spill file
        pipeline.submit(raws[20:30])  # backlog exists -> keeps spilling
        assert pipeline.spilled == 22
        gate.set()
        pipeline.close()
        assert folded == raws  # nothing lost, order preserved
        assert pipeline.pending == 0
        assert not list(tmp_path.glob("*.spill"))  # replayed and unlinked

    def test_block_times_out_when_folder_is_stuck(self):
        gate, _, fold = self._gated_fold()
        pipeline = IngestPipeline(
            fold, max_pending_events=4, overflow="block", block_timeout=0.1
        )
        pipeline.submit(_long_insert_raws(4))
        with pytest.raises(TimeoutError):
            pipeline.submit(_long_insert_raws(4))
        gate.set()
        pipeline.close()

    def test_bad_overflow_rejected(self):
        with pytest.raises(ValueError, match="overflow"):
            IngestPipeline(lambda batch: None, overflow="drop")
