"""More property-based tests: array/dict proxy equivalence, stack/queue
models, serialization round trips, rewriter semantics preservation."""

from __future__ import annotations

import io

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.events import (
    OperationKind,
    collecting,
    dump_profiles,
    load_profiles,
)
from repro.events.types import StructureKind
from repro.structures import (
    TrackedArray,
    TrackedDict,
    TrackedQueue,
    TrackedSortedList,
    TrackedStack,
)

from .conftest import make_profile

# -- TrackedArray vs list model ------------------------------------------------

_array_ops = st.one_of(
    st.tuples(st.just("get"), st.integers(-4, 4)),
    st.tuples(st.just("set"), st.integers(-4, 4), st.integers(-99, 99)),
    st.tuples(st.just("resize"), st.integers(0, 12)),
    st.tuples(st.just("insert"), st.integers(-4, 4), st.integers(-99, 99)),
    st.tuples(st.just("delete"), st.integers(-4, 4)),
    st.tuples(st.just("index"), st.integers(-99, 99)),
    st.tuples(st.just("contains"), st.integers(-99, 99)),
    st.tuples(st.just("sort"),),
    st.tuples(st.just("reverse"),),
)


def _apply_array(model: list, tracked: TrackedArray, op):
    """Apply op to both; outcomes must agree."""
    name = op[0]

    def both(fn_model, fn_tracked):
        try:
            expected = fn_model()
            failed = None
        except (IndexError, ValueError) as exc:
            expected, failed = None, type(exc)
        try:
            actual = fn_tracked()
            assert failed is None, op
            assert actual == expected, op
        except (IndexError, ValueError) as exc:
            assert failed is type(exc), op

    if name == "get":
        both(lambda: model[op[1]], lambda: tracked[op[1]])
    elif name == "set":
        def set_model():
            model[op[1]] = op[2]
        def set_tracked():
            tracked[op[1]] = op[2]
        both(set_model, set_tracked)
    elif name == "resize":
        def resize_model():
            n = op[1]
            if n >= len(model):
                model.extend([0] * (n - len(model)))
            else:
                del model[n:]
        both(resize_model, lambda: tracked.resize(op[1]))
    elif name == "insert":
        def ins_model():
            pos = op[1] + len(model) if op[1] < 0 else op[1]
            pos = min(max(pos, 0), len(model))
            model.insert(pos, op[2])
        both(ins_model, lambda: tracked.insert(op[1], op[2]))
    elif name == "delete":
        def del_model():
            pos = op[1] + len(model) if op[1] < 0 else op[1]
            if not 0 <= pos < len(model):
                raise IndexError
            del model[pos]
        both(del_model, lambda: tracked.delete(op[1]))
    elif name == "index":
        both(lambda: model.index(op[1]), lambda: tracked.index(op[1]))
    elif name == "contains":
        both(lambda: op[1] in model, lambda: op[1] in tracked)
    elif name == "sort":
        both(lambda: model.sort(), lambda: tracked.sort())
    elif name == "reverse":
        both(lambda: model.reverse(), lambda: tracked.reverse())


class TestTrackedArrayEquivalence:
    @given(
        initial=st.integers(0, 6),
        ops=st.lists(_array_ops, max_size=25),
    )
    @settings(max_examples=120, deadline=None)
    def test_behaves_like_fixed_list(self, initial, ops):
        with collecting():
            tracked = TrackedArray(initial)
            model = [0] * initial
            for op in ops:
                _apply_array(model, tracked, op)
                assert tracked.raw() == model


# -- TrackedDict vs dict model ---------------------------------------------------

_dict_keys = st.integers(0, 8)
_dict_ops = st.one_of(
    st.tuples(st.just("set"), _dict_keys, st.integers()),
    st.tuples(st.just("get"), _dict_keys),
    st.tuples(st.just("del"), _dict_keys),
    st.tuples(st.just("pop"), _dict_keys),
    st.tuples(st.just("contains"), _dict_keys),
    st.tuples(st.just("setdefault"), _dict_keys, st.integers()),
    st.tuples(st.just("clear"),),
)


class TestTrackedDictEquivalence:
    @given(ops=st.lists(_dict_ops, max_size=30))
    @settings(max_examples=120, deadline=None)
    def test_behaves_like_dict(self, ops):
        with collecting():
            tracked = TrackedDict()
            model: dict = {}
            for op in ops:
                name = op[0]
                if name == "set":
                    model[op[1]] = op[2]
                    tracked[op[1]] = op[2]
                elif name == "get":
                    assert tracked.get(op[1], "missing") == model.get(
                        op[1], "missing"
                    )
                elif name == "del":
                    if op[1] in model:
                        del model[op[1]]
                        del tracked[op[1]]
                elif name == "pop":
                    assert tracked.pop(op[1], None) == model.pop(op[1], None)
                elif name == "contains":
                    assert (op[1] in tracked) == (op[1] in model)
                elif name == "setdefault":
                    assert tracked.setdefault(op[1], op[2]) == model.setdefault(
                        op[1], op[2]
                    )
                elif name == "clear":
                    model.clear()
                    tracked.clear()
                assert tracked.raw() == model


# -- stack/queue/sorted-list models ----------------------------------------------


class TestDisciplineModels:
    @given(values=st.lists(st.integers(), max_size=40))
    @settings(max_examples=80, deadline=None)
    def test_stack_is_lifo(self, values):
        with collecting():
            stack = TrackedStack()
            for v in values:
                stack.push(v)
            popped = [stack.pop() for _ in range(len(values))]
            assert popped == list(reversed(values))

    @given(values=st.lists(st.integers(), max_size=40))
    @settings(max_examples=80, deadline=None)
    def test_queue_is_fifo(self, values):
        with collecting():
            queue = TrackedQueue()
            for v in values:
                queue.enqueue(v)
            drained = [queue.dequeue() for _ in range(len(values))]
            assert drained == values

    @given(values=st.lists(st.integers(-50, 50), max_size=40))
    @settings(max_examples=80, deadline=None)
    def test_sorted_list_invariant(self, values):
        with collecting():
            sorted_list = TrackedSortedList()
            for v in values:
                sorted_list.add(v)
            assert sorted_list.raw() == sorted(values)
            for v in values:
                assert v in sorted_list


# -- serialization round trip -------------------------------------------------------

_event_specs = st.lists(
    st.tuples(
        st.sampled_from(list(OperationKind)),
        st.one_of(st.none(), st.integers(0, 100)),
        st.integers(0, 100),
    ),
    max_size=60,
)


class TestSerializationProperties:
    @given(specs=_event_specs, kind=st.sampled_from(list(StructureKind)))
    @settings(max_examples=100, deadline=None)
    def test_roundtrip_identity(self, specs, kind):
        profile = make_profile(specs, kind=kind)
        buffer = io.StringIO()
        dump_profiles([profile], buffer)
        buffer.seek(0)
        (loaded,) = load_profiles(buffer)
        assert loaded.kind is profile.kind
        assert len(loaded) == len(profile)
        for a, b in zip(profile, loaded):
            assert (a.seq, a.op, a.kind, a.position, a.size, a.thread_id) == (
                b.seq, b.op, b.kind, b.position, b.size, b.thread_id
            )

    @given(specs=_event_specs)
    @settings(max_examples=60, deadline=None)
    def test_analysis_invariant_under_roundtrip(self, specs):
        from repro.patterns import detect

        profile = make_profile(specs)
        buffer = io.StringIO()
        dump_profiles([profile], buffer)
        buffer.seek(0)
        (loaded,) = load_profiles(buffer)
        original = [
            (p.pattern_type, p.start, p.stop, p.length)
            for p in detect(profile).patterns
        ]
        reloaded = [
            (p.pattern_type, p.start, p.stop, p.length)
            for p in detect(loaded).patterns
        ]
        assert original == reloaded
