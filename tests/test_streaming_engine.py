"""StreamingUseCaseEngine must converge to the batch engine exactly."""

from __future__ import annotations

import pytest

from repro.events import EventCollector, collecting
from repro.service import StreamingUseCaseEngine
from repro.usecases import UseCaseEngine
from repro.workloads import EVALUATION_WORKLOADS, USE_CASE_GENERATORS

WINDOW = 256


def _raw(event):
    return (
        event.instance_id,
        int(event.op),
        int(event.kind),
        event.position,
        event.size,
        event.thread_id,
        event.wall_time,
    )


def _stream_collector(collector: EventCollector, window: int = WINDOW):
    """Replay a finished collector into a fresh streaming engine the way
    the daemon would see it: registrations first, then windowed events
    in global capture order."""
    engine = StreamingUseCaseEngine()
    profiles = collector.profiles()
    for profile in profiles:
        engine.register_instance(
            profile.instance_id, profile.kind, profile.site, profile.label
        )
    events = sorted(
        (event for profile in profiles for event in profile), key=lambda e: e.seq
    )
    batch: list = []
    for event in events:
        batch.append(_raw(event))
        if len(batch) >= window:
            engine.feed_window(batch)
            batch = []
    if batch:
        engine.feed_window(batch)
    return engine


def _signature(report):
    """Everything that defines a report: per-instance kinds + evidence."""
    return sorted(
        (u.instance_id, u.kind.abbreviation, tuple(sorted(u.evidence.items())))
        for u in report.use_cases
    )


class TestTableVEquivalence:
    @pytest.mark.parametrize("workload", EVALUATION_WORKLOADS, ids=lambda w: w.name)
    def test_streaming_matches_batch(self, workload):
        with collecting() as collector:
            workload.run_tracked(scale=0.5)
        batch_report = UseCaseEngine().analyze(collector.profiles())

        engine = _stream_collector(collector)
        streaming_report = engine.report()

        assert _signature(streaming_report) == _signature(batch_report)
        assert streaming_report.instances_analyzed == batch_report.instances_analyzed
        assert (
            streaming_report.search_space_reduction
            == batch_report.search_space_reduction
        )
        # The bounded-memory claim: the engine never held more than one
        # window of events at a time.
        assert engine.peak_resident_events <= WINDOW
        assert engine.events_folded == sum(len(p) for p in collector.profiles())


class TestGeneratorEquivalence:
    @pytest.mark.parametrize(
        "generator", USE_CASE_GENERATORS.values(), ids=USE_CASE_GENERATORS.keys()
    )
    def test_streaming_matches_batch(self, generator):
        with collecting() as collector:
            generator()
        batch_report = UseCaseEngine().analyze(collector.profiles())
        streaming_report = _stream_collector(collector, window=64).report()
        assert _signature(streaming_report) == _signature(batch_report)


class TestStreamingBehavior:
    def test_interim_report_is_non_destructive(self):
        from repro.workloads import gen_long_insert

        with collecting() as collector:
            gen_long_insert()
        engine = StreamingUseCaseEngine()
        profiles = collector.profiles()
        for p in profiles:
            engine.register_instance(p.instance_id, p.kind, p.site, p.label)
        events = sorted((e for p in profiles for e in p), key=lambda e: e.seq)
        half = len(events) // 2
        engine.feed_window([_raw(e) for e in events[:half]])
        interim = engine.report()  # snapshot mid-stream
        engine.feed_window([_raw(e) for e in events[half:]])
        final = engine.report()
        batch = UseCaseEngine().analyze(profiles)
        assert _signature(final) == _signature(batch)
        assert interim.instances_analyzed == final.instances_analyzed

    def test_unknown_instance_events_dropped_and_counted(self):
        engine = StreamingUseCaseEngine()
        engine.feed_window([(99, 0, 0, 0, 1, 0, None)] * 5)
        assert engine.unknown_instance_events == 5
        assert engine.events_folded == 0
        assert engine.report().instances_analyzed == 0

    def test_registration_is_idempotent(self):
        from repro.events import StructureKind

        engine = StreamingUseCaseEngine()
        engine.register_instance(1, StructureKind.LIST, None, "first")
        engine.feed_window([(1, 2, 1, 0, 1, 0, None)])
        engine.register_instance(1, StructureKind.ARRAY, None, "second")
        report = engine.report()
        assert engine.events_folded == 1
        assert report.instances_analyzed == 1

    def test_empty_instances_count_toward_search_space(self):
        from repro.events import StructureKind

        engine = StreamingUseCaseEngine()
        engine.register_instance(0, StructureKind.LIST, None, "idle")
        report = engine.report()
        assert report.instances_analyzed == 1
        assert report.use_cases == ()


class TestLaneSummaryRetention:
    """ISSUE 8 fix: the fold discards events after feature extraction,
    so the happens-before lane summary must survive serialization for
    snapshots to seed the what-if DAG."""

    def test_lanes_match_batch_workspans(self):
        from repro.whatif import fold_profile, workspans_from_engine

        with collecting() as collector:
            EVALUATION_WORKLOADS[0].run_tracked(scale=0.5)
        engine = _stream_collector(collector)
        streamed = workspans_from_engine(engine)
        for profile in collector.profiles():
            if len(profile) == 0:
                continue
            batch = fold_profile(profile)
            assert streamed[profile.instance_id] == batch

    def test_lanes_round_trip_through_engine_dict(self):
        from repro.service.durability import engine_from_dict, engine_to_dict
        from repro.whatif import workspans_from_engine

        with collecting() as collector:
            EVALUATION_WORKLOADS[0].run_tracked(scale=0.5)
        engine = _stream_collector(collector)
        restored = engine_from_dict(engine_to_dict(engine))
        assert workspans_from_engine(restored) == workspans_from_engine(engine)
        # The restored lanes keep folding: same event -> same state.
        iid = next(iter(engine._folds))
        raw = (iid, 2, 1, 0, 1, 3, None)
        engine.feed(raw)
        restored.feed(raw)
        assert engine._folds[iid].lanes == restored._folds[iid].lanes

    def test_pre_lane_checkpoints_still_load(self):
        from repro.service.durability import engine_from_dict, engine_to_dict
        from repro.whatif import workspans_from_engine

        with collecting() as collector:
            EVALUATION_WORKLOADS[0].run_tracked(scale=0.5)
        engine = _stream_collector(collector)
        old_doc = engine_to_dict(engine)
        for fold_obj in old_doc["folds"]:
            del fold_obj["lanes"]  # a checkpoint written before ISSUE 8
        restored = engine_from_dict(old_doc)
        # Loads fine; lane data is honestly empty, and the report is
        # unaffected (lanes feed only the what-if profiler).
        assert workspans_from_engine(restored) == {}
        assert _signature(restored.report()) == _signature(engine.report())
