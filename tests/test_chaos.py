"""The chaos soak harness: invariant checks in isolation, short seeded
soaks end to end, the trial ledger, and — most importantly — the
harness's own sensitivity: a deliberately broken ledger rung must be
caught within 50 trials.  A soak that cannot fail proves nothing.
"""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.service.governor import ResourceGovernor
from repro.testing.chaos import ChaosSoak, InvariantMonitor
from repro.testing.faults import FaultFS

REPO = Path(__file__).resolve().parent.parent

#: Small traces keep a single trial well under a second.
SMALL = dict(max_instances=2, max_segments=2, max_segment_events=40)


class TestInvariantMonitor:
    def test_exact_counts_pass(self):
        assert InvariantMonitor().check_counts(100, 100) == []

    def test_event_loss_flagged(self):
        out = InvariantMonitor().check_counts(100, 99)
        assert len(out) == 1 and "event loss" in out[0]

    def test_matching_reports_pass(self):
        summary = {"instances_analyzed": 2, "flagged": {("a", "PIP"): {"n": 1}}}
        assert InvariantMonitor().check_reports(summary, dict(summary)) == []

    def test_diverging_reports_flagged(self):
        a = {"instances_analyzed": 2, "flagged": {("a", "PIP"): {"n": 1}}}
        b = {"instances_analyzed": 2, "flagged": {}}
        assert InvariantMonitor().check_reports(a, b)

    def test_balanced_ledger_passes(self):
        assert InvariantMonitor().check_ledger(observed=4, accounted=4) == []

    def test_over_accounting_is_not_a_violation(self):
        # The server may refuse windows the client never saw (a fault
        # dropped the reply); only *under*-accounting is silent loss.
        assert InvariantMonitor().check_ledger(observed=3, accounted=5) == []

    def test_silent_shed_flagged(self):
        out = InvariantMonitor().check_ledger(observed=5, accounted=3)
        assert len(out) == 1 and "silent shed" in out[0]

    def test_recovery_bound(self):
        monitor = InvariantMonitor(recovery_bound=1.0)
        assert monitor.check_recovery([0.2, 0.9]) == []
        out = monitor.check_recovery([0.2, 1.5])
        assert len(out) == 1 and "recovery bound exceeded" in out[0]

    def test_fsck_report_optional_and_checked(self):
        monitor = InvariantMonitor()
        assert monitor.check_fsck(None) == []
        assert monitor.check_fsck({"ok": True, "sessions": []}) == []
        out = monitor.check_fsck(
            {"ok": False, "sessions": [{"session": "s", "problems": ["torn"]}]}
        )
        assert len(out) == 1 and "s: torn" in out[0]


class TestInprocSoak:
    def test_short_soak_holds_every_invariant(self, tmp_path):
        ledger = tmp_path / "ledger.jsonl"
        with ChaosSoak(trace_kwargs=SMALL) as soak:
            summary = soak.run(trials=6, base_seed=0, ledger_path=ledger)
        assert summary["ok"], summary["seeds_with_violations"]
        assert summary["trials"] == 6
        assert summary["violations"] == 0
        assert summary["events"] > 0

        lines = ledger.read_text().splitlines()
        assert len(lines) == 6
        records = [json.loads(line) for line in lines]
        assert [r["seed"] for r in records] == list(range(6))
        assert all(r["ok"] for r in records)
        assert all(r["backend"] == "inproc" for r in records)

    def test_trials_are_seed_deterministic_in_workload(self):
        with ChaosSoak(trace_kwargs=SMALL) as soak:
            a = soak.run_trial(7)
            b = soak.run_trial(7)
        # Timing-dependent fields (recovery, refusals) may wobble; the
        # seeded workload and fault schedule must not.
        assert a.events == b.events
        assert a.faults_injected == b.faults_injected
        assert a.ok and b.ok

    def test_forced_disk_faults_produce_accounted_refusals(self):
        # Every trial gets a tiny ENOSPC budget: refusals are certain,
        # and every one of them must land in the server's ledger.
        soak = ChaosSoak(
            trace_kwargs=SMALL,
            disk_fault_rate=1.0,
            storm_rate=0.0,
            fault_fs_factory=lambda seed: FaultFS(
                enospc_after_bytes=700, partial_writes=seed % 2 == 0
            ),
        )
        with soak:
            summary = soak.run(trials=4, base_seed=100)
        assert summary["ok"], summary["seeds_with_violations"]
        assert summary["refusals_observed"] > 0
        assert summary["refusals_accounted"] >= summary["refusals_observed"]

    def test_duration_box_stops_the_soak(self):
        with ChaosSoak(trace_kwargs=SMALL) as soak:
            summary = soak.run(duration=0.0, base_seed=0)
        assert summary["trials"] == 1  # at least one trial always runs

    def test_stop_on_violation_with_broken_rung_catches_within_50_trials(
        self, monkeypatch
    ):
        # THE sensitivity test: sabotage one rung of the refusal ledger
        # (resource-pressure refusals are sent to the client but no
        # longer counted) and the soak must notice — within 50 trials,
        # in practice on the first trial that trips ENOSPC.
        monkeypatch.setattr(ResourceGovernor, "note_refused", lambda self: None)
        soak = ChaosSoak(
            trace_kwargs=SMALL,
            disk_fault_rate=1.0,
            storm_rate=0.0,
            fault_fs_factory=lambda seed: FaultFS(enospc_after_bytes=700),
        )
        with soak:
            summary = soak.run(trials=50, base_seed=0, stop_on_violation=True)
        assert not summary["ok"]
        assert summary["trials"] <= 50
        first_bad = summary["seeds_with_violations"][0]
        assert first_bad < 50

    def test_rejects_unknown_backend(self):
        with pytest.raises(ValueError, match="backend"):
            ChaosSoak(backend="cloud")


@pytest.mark.slow
class TestFleetSoak:
    def test_single_fleet_trial_holds_invariants(self):
        soak = ChaosSoak(
            backend="fleet",
            fleet_workers=2,
            fleet_sessions=2,
            trace_kwargs=SMALL,
        )
        with soak:
            result = soak.run_trial(3)
        assert result.ok, result.violations
        assert result.backend == "fleet"
        assert result.sessions == 2
        assert result.events > 0


class TestCli:
    def _run(self, *argv):
        return subprocess.run(
            [sys.executable, "-m", "repro.cli", "chaos", *argv],
            capture_output=True, text=True, cwd=REPO,
            env={"PYTHONPATH": str(REPO / "src"), "PATH": "/usr/bin:/bin"},
        )

    def test_exit_zero_and_machine_readable_summary(self, tmp_path):
        ledger = tmp_path / "ledger.jsonl"
        proc = self._run("--trials", "2", "--seed", "11", "--ledger", str(ledger))
        assert proc.returncode == 0, proc.stderr
        summary = json.loads(proc.stdout)  # stdout is the JSON summary
        assert summary["ok"] and summary["trials"] == 2
        assert len(ledger.read_text().splitlines()) == 2
        assert "chaos soak (inproc): 2 trials" in proc.stderr
