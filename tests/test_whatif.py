"""What-if profiler tests: work/span property tests against the
brute-force DAG oracle, degenerate-case laws, lane-summary round trips,
prediction semantics, and the golden measured-vs-predicted differential
on the Table V workloads."""

import os

import pytest

from repro.eval.speedup_eval import (
    WHATIF_TOLERANCE,
    run_whatif_validation,
)
from repro.parallel.machine import MachineConfig, SimulatedMachine
from repro.parallel.transforms import execute_transform, transform_ways
from repro.testing.traces import generate_trace
from repro.whatif import (
    CriticalPathFold,
    LaneSummary,
    WorkSpan,
    fold_raw_events,
    longest_path_span,
    potential_speedup,
)

_READ_KIND = 0  # AccessKind.READ == 0 is asserted below; traces use ints


def _span_by_fold(events):
    """events: [(tid, is_read)] -> span via the incremental fold."""
    fold = CriticalPathFold()
    for tid, is_read in events:
        fold.feed(tid, is_read)
    return fold.result()


class TestFoldVsBruteForce:
    """The O(1)-per-event fold must equal the O(n^2)-edge longest-path
    DP over the materialized happens-before DAG."""

    def test_access_kind_read_value(self):
        from repro.events.types import AccessKind

        assert int(AccessKind.READ) == _READ_KIND

    @pytest.mark.parametrize("seed", range(30))
    def test_random_traces_match_oracle(self, seed):
        trace = generate_trace(
            seed, max_instances=4, max_segments=5, max_segment_events=40
        )
        workspans = fold_raw_events(trace.events)
        checked = 0
        for inst in trace.instances:
            raws = trace.events_of(inst.instance_id)
            if not raws:
                continue
            # raw = (iid, op, kind, position, size, thread_id, wall)
            events = [(raw[5], raw[2] == _READ_KIND) for raw in raws]
            ws = workspans[inst.instance_id]
            assert ws.work == float(len(events))
            assert ws.span == longest_path_span(events), (
                f"seed {seed} instance {inst.instance_id}"
            )
            checked += 1
        assert checked > 0 or not trace.events

    @pytest.mark.parametrize("seed", range(10))
    def test_random_mixed_streams_match_oracle(self, seed):
        import random

        rng = random.Random(seed * 7919 + 13)
        events = [
            (rng.randrange(4), rng.random() < 0.6) for _ in range(rng.randrange(1, 120))
        ]
        assert _span_by_fold(events).span == longest_path_span(events)


class TestDegenerateLaws:
    def test_single_thread_speedup_is_one(self):
        events = [(0, i % 3 != 0) for i in range(100)]
        ws = _span_by_fold(events)
        assert ws.span == ws.work == 100.0
        for k in (1, 2, 8, 64):
            assert potential_speedup(ws.work, ws.span, k) == 1.0

    def test_independent_read_lanes_approach_k(self):
        k, per_lane = 4, 50
        events = []
        for i in range(per_lane):
            for tid in range(k):
                events.append((tid, True))
        ws = _span_by_fold(events)
        assert ws.work == float(k * per_lane)
        assert ws.span == float(per_lane)
        assert potential_speedup(ws.work, ws.span, k) == pytest.approx(k)
        # More cores than lanes cannot beat the lane count.
        assert potential_speedup(ws.work, ws.span, 2 * k) == pytest.approx(k)

    def test_writes_serialize_across_threads(self):
        events = [(tid, False) for tid in (0, 1, 2, 3) * 25]
        ws = _span_by_fold(events)
        assert ws.span == ws.work  # every write orders after the previous
        assert potential_speedup(ws.work, ws.span, 8) == 1.0

    def test_empty_stream(self):
        ws = CriticalPathFold().result()
        assert ws.work == 0.0 and ws.span == 0.0
        assert potential_speedup(ws.work, ws.span, 8) == 1.0

    def test_potential_speedup_rejects_bad_cores(self):
        with pytest.raises(ValueError):
            potential_speedup(10.0, 5.0, 0)


class TestLaneSummary:
    def test_round_trip(self):
        lanes = LaneSummary()
        import random

        rng = random.Random(42)
        for _ in range(200):
            lanes.feed(rng.randrange(3), rng.random() < 0.5)
        clone = LaneSummary.from_dict(lanes.to_dict())
        assert clone == lanes
        # The restored summary keeps folding identically.
        for args in ((0, True), (2, False), (1, True)):
            lanes.feed(*args)
            clone.feed(*args)
        assert clone == lanes and clone.span == lanes.span

    def test_missing_dict_yields_empty(self):
        lanes = LaneSummary.from_dict(None)
        assert lanes.work == 0 and lanes.span == 0.0


class TestPrediction:
    def test_sequential_kind_predicts_one(self):
        from repro.events.collector import collecting
        from repro.usecases import UseCaseEngine
        from repro.whatif import annotate_report
        from repro.workloads import workload_by_name

        # Algorithmia's stack demo flags Stack-Implementation — advice
        # with no parallel potential.
        with collecting() as session:
            workload_by_name("Algorithmia").run_tracked(scale=1.0)
        report = UseCaseEngine().analyze_collector(session)
        machine = SimulatedMachine(MachineConfig(cores=8))
        annotated = annotate_report(report, machine)
        sequential = [u for u in annotated.use_cases if not u.parallel]
        assert sequential, "expected a sequential-advice use case"
        assert all(u.predicted_speedup == 1.0 for u in sequential)

    def test_transform_ways_caps(self):
        assert transform_ways(1000.0, None, 8) == 8
        assert transform_ways(1000.0, 2, 8) == 2
        assert transform_ways(3.0, None, 8) == 3
        assert transform_ways(0.0, None, 8) == 1


class TestExecutedTransform:
    def test_real_execution_matches_sequential(self):
        from repro.events.collector import collecting
        from repro.usecases import UseCaseEngine
        from repro.usecases.rules import PARALLEL_RULES
        from repro.workloads import workload_by_name

        with collecting() as session:
            workload_by_name("Mandelbrot").run_tracked(scale=1.0)
        report = UseCaseEngine(rules=PARALLEL_RULES).analyze_collector(session)
        top = next(u for u in report.use_cases if u.parallel)
        machine = SimulatedMachine(MachineConfig(cores=8))
        executed = execute_transform(top, machine)
        assert executed.matches_sequential
        assert executed.ways >= 1
        assert sum(executed.chunk_sizes) == max(
            int(round(executed.region.work)), 1
        )
        assert executed.speedup > 1.0


class TestMeasuredVsPredicted:
    """The golden differential: on every Table V workload the measured
    speedup of the executed top-ranked transform must land within the
    committed tolerance band of the analytic prediction."""

    def test_shape_and_determinism(self):
        rows = run_whatif_validation()
        assert len(rows) == 7
        again = run_whatif_validation()
        assert [(r.workload, r.predicted) for r in rows] == [
            (r.workload, r.predicted) for r in again
        ]

    def test_all_workloads_within_band(self):
        cores = os.cpu_count() or 1
        if cores < 4:
            pytest.skip(
                f"SKIPPED LOUDLY: measured-vs-predicted gate needs >= 4 "
                f"cores for a meaningful parallel rehearsal, this box has "
                f"{cores} (mirrors the fleet_4w_vs_1w floor rule)"
            )
        rows = run_whatif_validation()
        offenders = [
            f"{r.workload}: predicted {r.predicted:.2f} vs measured "
            f"{r.measured:.2f} (err {r.relative_error:.1%}, "
            f"band {WHATIF_TOLERANCE:.0%}, "
            f"matches_sequential={r.matches_sequential})"
            for r in rows
            if not r.within_band
        ]
        assert not offenders, "\n".join(offenders)

    def test_band_math_is_honest(self):
        ws = WorkSpan(work=100.0, span=100.0)
        assert ws.parallelism == 1.0
        # A row exactly at the band edge is within; just past is not.
        from repro.eval.speedup_eval import WhatIfRow

        edge = WhatIfRow("w", "u", 2.0, 2.0 * (1 + WHATIF_TOLERANCE), True)
        past = WhatIfRow("w", "u", 2.0, 2.0 * (1 + WHATIF_TOLERANCE) + 0.01, True)
        mismatch = WhatIfRow("w", "u", 2.0, 2.0, False)
        assert edge.within_band
        assert not past.within_band
        assert not mismatch.within_band
