"""Differential firewall sweep: hostile profiler ⇒ host behaves as plain.

Every public method of every tracked structure is exercised twice — on
the plain builtin reference and on the tracked structure wired to a
hostile (raising) profiler under an armed firewall — and both the
per-operation results and the final container state must be identical.
The complementary healthy-path class proves the guard is a true no-op
for correctness: with a firewall armed and no faults, all 7 Table V
workloads still produce tracked results equal to plain and a streaming
report equal to batch.
"""

from __future__ import annotations

import bisect

import pytest

from repro.events import EventCollector, PackedBatchingChannel, collecting
from repro.events.fastpath import KERNEL
from repro.runtime import firewall
from repro.service import StreamingUseCaseEngine
from repro.structures import (
    TrackedArray,
    TrackedDict,
    TrackedLinkedList,
    TrackedList,
    TrackedQueue,
    TrackedSet,
    TrackedSortedList,
    TrackedStack,
)
from repro.testing import HostileCollector, RaisingChannel, make_hostile_collector
from repro.usecases import UseCaseEngine
from repro.workloads import EVALUATION_WORKLOADS

# ---------------------------------------------------------------------------
# Operation scripts: (name, tracked_fn, plain_fn) triples.  Each fn takes
# the container and returns a comparable result; user-level exceptions
# (IndexError, KeyError, ValueError) are part of the observable contract
# and are captured as results, not failures.
# ---------------------------------------------------------------------------


def _iadd(c, items):
    c += items
    return None


LIST_OPS = [
    ("append", lambda c: c.append(5), lambda c: c.append(5)),
    ("add", lambda c: c.add(3), lambda c: c.append(3)),
    ("insert", lambda c: c.insert(1, 9), lambda c: c.insert(1, 9)),
    ("extend", lambda c: c.extend([7, 8]), lambda c: c.extend([7, 8])),
    ("add_range", lambda c: c.add_range([6]), lambda c: c.extend([6])),
    ("iadd", lambda c: _iadd(c, [4]), lambda c: _iadd(c, [4])),
    ("dunder_add", lambda c: c + [1], lambda c: c + [1]),
    ("setitem", lambda c: c.__setitem__(0, 2), lambda c: c.__setitem__(0, 2)),
    ("getitem", lambda c: c[0], lambda c: c[0]),
    ("getslice", lambda c: c[1:4], lambda c: c[1:4]),
    ("setslice", lambda c: c.__setitem__(slice(1, 3), [11, 12]),
     lambda c: c.__setitem__(slice(1, 3), [11, 12])),
    ("delitem", lambda c: c.__delitem__(1), lambda c: c.__delitem__(1)),
    ("pop", lambda c: c.pop(), lambda c: c.pop()),
    ("pop_index", lambda c: c.pop(0), lambda c: c.pop(0)),
    ("remove", lambda c: c.remove(8), lambda c: c.remove(8)),
    ("remove_missing", lambda c: c.remove(404), lambda c: c.remove(404)),
    ("index", lambda c: c.index(6), lambda c: c.index(6)),
    ("index_missing", lambda c: c.index(404), lambda c: c.index(404)),
    ("count", lambda c: c.count(6), lambda c: c.count(6)),
    ("contains_method", lambda c: c.contains(6), lambda c: 6 in c),
    ("contains", lambda c: 404 in c, lambda c: 404 in c),
    ("sort", lambda c: c.sort(), lambda c: c.sort()),
    ("sort_reverse", lambda c: c.sort(reverse=True), lambda c: c.sort(reverse=True)),
    ("reverse", lambda c: c.reverse(), lambda c: c.reverse()),
    ("copy", lambda c: c.copy(), lambda c: c.copy()),
    ("to_list", lambda c: c.to_list(), lambda c: list(c)),
    ("for_each", lambda c: [x for x in _collect_for_each(c)],
     lambda c: [x for x in list(c)]),
    ("iter", lambda c: list(c), lambda c: list(c)),
    ("len", lambda c: len(c), lambda c: len(c)),
    ("bool", lambda c: bool(c), lambda c: bool(c)),
    ("eq", lambda c: c == [1, 2, 3], lambda c: c == [1, 2, 3]),
    ("clear", lambda c: c.clear(), lambda c: c.clear()),
    ("refill", lambda c: c.extend([1, 2]), lambda c: c.extend([1, 2])),
]


def _collect_for_each(c):
    out = []
    c.for_each(out.append)
    return out


ARRAY_OPS = [
    ("setitem", lambda c: c.__setitem__(2, 42), lambda c: c.__setitem__(2, 42)),
    ("getitem", lambda c: c[2], lambda c: c[2]),
    ("getitem_neg", lambda c: c[-1], lambda c: c[-1]),
    ("getslice", lambda c: c[1:4], lambda c: c[1:4]),
    ("setslice", lambda c: c.__setitem__(slice(0, 2), [8, 9]),
     lambda c: c.__setitem__(slice(0, 2), [8, 9])),
    ("resize_grow", lambda c: c.resize(8, fill=1), lambda c: c.extend([1] * 3)),
    ("resize_shrink", lambda c: c.resize(6), lambda c: c.__delitem__(slice(6, None))),
    ("insert", lambda c: c.insert(2, 77), lambda c: c.insert(2, 77)),
    ("delete", lambda c: c.delete(3), lambda c: c.__delitem__(3)),
    ("index", lambda c: c.index(77), lambda c: c.index(77)),
    ("index_missing", lambda c: c.index(404), lambda c: c.index(404)),
    ("fill_all", lambda c: c.fill_all(7), lambda c: c.__setitem__(slice(None), [7] * len(c))),
    ("setitem2", lambda c: c.__setitem__(0, 3), lambda c: c.__setitem__(0, 3)),
    ("sort", lambda c: c.sort(), lambda c: c.sort()),
    ("reverse", lambda c: c.reverse(), lambda c: c.reverse()),
    ("copy", lambda c: c.copy(), lambda c: c.copy()),
    ("iter", lambda c: list(c), lambda c: list(c)),
    ("len", lambda c: len(c), lambda c: len(c)),
]

DICT_OPS = [
    ("set_a", lambda c: c.__setitem__("a", 1), lambda c: c.__setitem__("a", 1)),
    ("set_b", lambda c: c.__setitem__("b", 2), lambda c: c.__setitem__("b", 2)),
    ("overwrite", lambda c: c.__setitem__("a", 3), lambda c: c.__setitem__("a", 3)),
    ("getitem", lambda c: c["a"], lambda c: c["a"]),
    ("getitem_missing", lambda c: c["zz"], lambda c: c["zz"]),
    ("get_hit", lambda c: c.get("b"), lambda c: c.get("b")),
    ("get_miss", lambda c: c.get("zz", -1), lambda c: c.get("zz", -1)),
    ("setdefault_new", lambda c: c.setdefault("d", 4), lambda c: c.setdefault("d", 4)),
    ("setdefault_old", lambda c: c.setdefault("a", 9), lambda c: c.setdefault("a", 9)),
    ("pop_hit", lambda c: c.pop("d"), lambda c: c.pop("d")),
    ("pop_default", lambda c: c.pop("zz", -1), lambda c: c.pop("zz", -1)),
    ("pop_missing", lambda c: c.pop("zz"), lambda c: c.pop("zz")),
    ("update", lambda c: c.update({"e": 5}), lambda c: c.update({"e": 5})),
    ("contains", lambda c: "e" in c, lambda c: "e" in c),
    ("keys", lambda c: sorted(c.keys()), lambda c: sorted(c.keys())),
    ("values", lambda c: sorted(c.values()), lambda c: sorted(c.values())),
    ("items", lambda c: sorted(c.items()), lambda c: sorted(c.items())),
    ("copy", lambda c: c.copy(), lambda c: c.copy()),
    ("delitem", lambda c: c.__delitem__("b"), lambda c: c.__delitem__("b")),
    ("iter", lambda c: sorted(c), lambda c: sorted(c)),
    ("len", lambda c: len(c), lambda c: len(c)),
    ("clear", lambda c: c.clear(), lambda c: c.clear()),
    ("refill", lambda c: c.__setitem__("z", 0), lambda c: c.__setitem__("z", 0)),
]

STACK_OPS = [
    ("push1", lambda c: c.push(1), lambda c: c.append(1)),
    ("push2", lambda c: c.push(2), lambda c: c.append(2)),
    ("push3", lambda c: c.push(3), lambda c: c.append(3)),
    ("peek", lambda c: c.peek(), lambda c: c[-1]),
    ("pop", lambda c: c.pop(), lambda c: c.pop()),
    ("contains", lambda c: 1 in c, lambda c: 1 in c),
    ("iter", lambda c: list(c), lambda c: list(reversed(c))),  # LIFO order
    ("len", lambda c: len(c), lambda c: len(c)),
    ("bool", lambda c: bool(c), lambda c: bool(c)),
    ("clear", lambda c: c.clear(), lambda c: c.clear()),
    ("pop_empty", lambda c: c.pop(), lambda c: c.pop()),
    ("repush", lambda c: c.push(9), lambda c: c.append(9)),
]

QUEUE_OPS = [
    ("enq1", lambda c: c.enqueue(1), lambda c: c.append(1)),
    ("enq2", lambda c: c.enqueue(2), lambda c: c.append(2)),
    ("enq3", lambda c: c.enqueue(3), lambda c: c.append(3)),
    ("peek", lambda c: c.peek(), lambda c: c[0]),
    ("deq", lambda c: c.dequeue(), lambda c: c.pop(0)),
    ("contains", lambda c: 3 in c, lambda c: 3 in c),
    ("iter", lambda c: list(c), lambda c: list(c)),
    ("len", lambda c: len(c), lambda c: len(c)),
    ("clear", lambda c: c.clear(), lambda c: c.clear()),
    ("deq_empty", lambda c: c.dequeue(), lambda c: c.pop(0)),
    ("reenq", lambda c: c.enqueue(9), lambda c: c.append(9)),
]

SET_OPS = [
    ("add1", lambda c: c.add(1), lambda c: c.add(1)),
    ("add2", lambda c: c.add(2), lambda c: c.add(2)),
    ("add_dup", lambda c: c.add(1), lambda c: c.add(1)),
    ("discard_hit", lambda c: c.discard(2), lambda c: c.discard(2)),
    ("discard_miss", lambda c: c.discard(404), lambda c: c.discard(404)),
    ("add3", lambda c: c.add(3), lambda c: c.add(3)),
    ("remove_hit", lambda c: c.remove(3), lambda c: c.remove(3)),
    ("remove_miss", lambda c: c.remove(404), lambda c: c.remove(404)),
    ("contains", lambda c: 1 in c, lambda c: 1 in c),
    ("union", lambda c: sorted(c.union({5, 6})), lambda c: sorted(c.union({5, 6}))),
    ("iter", lambda c: sorted(c), lambda c: sorted(c)),
    ("len", lambda c: len(c), lambda c: len(c)),
    ("clear", lambda c: c.clear(), lambda c: c.clear()),
    ("readd", lambda c: c.add(9), lambda c: c.add(9)),
]

SORTED_OPS = [
    ("add5", lambda c: c.add(5), lambda c: bisect.insort(c, 5)),
    ("add1", lambda c: c.add(1), lambda c: bisect.insort(c, 1)),
    ("add3", lambda c: c.add(3), lambda c: bisect.insort(c, 3)),
    ("getitem", lambda c: c[0], lambda c: c[0]),
    ("getitem_neg", lambda c: c[-1], lambda c: c[-1]),
    ("index_hit", lambda c: c.index(3), lambda c: c.index(3)),
    ("index_miss", lambda c: c.index(404), lambda c: c.index(404)),
    ("contains_hit", lambda c: 5 in c, lambda c: 5 in c),
    ("contains_miss", lambda c: 404 in c, lambda c: 404 in c),
    ("remove", lambda c: c.remove(3), lambda c: c.remove(3)),
    ("delitem", lambda c: c.__delitem__(0), lambda c: c.__delitem__(0)),
    ("iter", lambda c: list(c), lambda c: list(c)),
    ("len", lambda c: len(c), lambda c: len(c)),
    ("bool", lambda c: bool(c), lambda c: bool(c)),
    ("clear", lambda c: c.clear(), lambda c: c.clear()),
    ("readd", lambda c: c.add(9), lambda c: bisect.insort(c, 9)),
]

LINKED_OPS = [
    ("append1", lambda c: c.append(1), lambda c: c.append(1)),
    ("append2", lambda c: c.append(2), lambda c: c.append(2)),
    ("append_left", lambda c: c.append_left(0), lambda c: c.insert(0, 0)),
    ("pop_left", lambda c: c.pop_left(), lambda c: c.pop(0)),
    ("getitem", lambda c: c[1], lambda c: c[1]),
    ("getitem_oob", lambda c: c[99], lambda c: c[99]),
    ("contains_hit", lambda c: 2 in c, lambda c: 2 in c),
    ("contains_miss", lambda c: 404 in c, lambda c: 404 in c),
    ("iter", lambda c: list(c), lambda c: list(c)),
    ("len", lambda c: len(c), lambda c: len(c)),
    ("bool", lambda c: bool(c), lambda c: bool(c)),
    ("clear", lambda c: c.clear(), lambda c: c.clear()),
    ("pop_empty", lambda c: c.pop_left(), lambda c: c.pop(0)),
    ("reappend", lambda c: c.append(9), lambda c: c.append(9)),
]

#: kind -> (tracked factory, plain factory, ops, final-state reader)
STRUCTURES = {
    "list": (
        lambda coll: TrackedList([1, 2, 3], collector=coll),
        lambda: [1, 2, 3],
        LIST_OPS,
        lambda c: list(c.raw()),
    ),
    "array": (
        lambda coll: TrackedArray(5, fill=0, collector=coll),
        lambda: [0] * 5,
        ARRAY_OPS,
        lambda c: list(c.raw()),
    ),
    "dict": (
        lambda coll: TrackedDict(collector=coll),
        lambda: {},
        DICT_OPS,
        lambda c: dict(c.raw()),
    ),
    "stack": (
        lambda coll: TrackedStack(collector=coll),
        lambda: [],
        STACK_OPS,
        lambda c: list(c.raw()),
    ),
    "queue": (
        lambda coll: TrackedQueue(collector=coll),
        lambda: [],
        QUEUE_OPS,
        lambda c: list(c.raw()),
    ),
    "set": (
        lambda coll: TrackedSet(collector=coll),
        lambda: set(),
        SET_OPS,
        lambda c: set(c.raw()),
    ),
    "sorted_list": (
        lambda coll: TrackedSortedList(collector=coll),
        lambda: [],
        SORTED_OPS,
        lambda c: list(c.raw()),
    ),
    "linked_list": (
        lambda coll: TrackedLinkedList(collector=coll),
        lambda: [],
        LINKED_OPS,
        lambda c: list(c.raw()),
    ),
}

class BindRaisingPackedChannel(PackedBatchingChannel):
    """A packed channel whose bind path dies: the collector's record
    kernel engages normally, then every record faults inside the
    kernel's buffer acquisition.  The hardest hostile case for the
    fast path — the fault fires *after* dispatch was pre-bound."""

    def acquire_buffer(self) -> bytearray:
        raise RuntimeError("hostile bind")


#: Hostile profiler variants the firewall must contain.
FAULTS = {
    "record-every-call": lambda: HostileCollector(every=1),
    "record-every-3rd": lambda: HostileCollector(every=3),
    "register-raises": lambda: HostileCollector(fail_record=False, fail_register=True),
    "channel-post-raises": lambda: EventCollector(channel=RaisingChannel()),
    "fastpath-bind-raises": lambda: EventCollector(channel=BindRaisingPackedChannel()),
}


def run_script(container, ops, which: str):
    """Run every op, capturing results and user-level exceptions."""
    results = []
    for name, tracked_fn, plain_fn in ops:
        fn = tracked_fn if which == "tracked" else plain_fn
        try:
            results.append((name, fn(container)))
        except (IndexError, KeyError, ValueError) as exc:
            results.append((name, ("raised", type(exc).__name__)))
    return results


class TestHostileSweep:
    @pytest.mark.parametrize("fault", sorted(FAULTS), ids=str)
    @pytest.mark.parametrize("kind", sorted(STRUCTURES), ids=str)
    def test_every_method_matches_plain_builtin(self, kind, fault):
        make_tracked, make_plain, ops, state_of = STRUCTURES[kind]

        plain = make_plain()
        plain_results = run_script(plain, ops, "plain")

        with firewall(budget=10**6) as guard:
            tracked = make_tracked(FAULTS[fault]())
            tracked_results = run_script(tracked, ops, "tracked")
            tracked_state = state_of(tracked)

        assert tracked_results == plain_results
        assert tracked_state == plain
        report = guard.report()
        assert report.state == "closed"  # huge budget: contained, not tripped
        assert report.faults > 0  # ...and the profiler really was hostile

    @pytest.mark.parametrize("kind", sorted(STRUCTURES), ids=str)
    def test_breaker_trips_after_budget_and_still_matches(self, kind):
        make_tracked, make_plain, ops, state_of = STRUCTURES[kind]
        budget = 5

        plain = make_plain()
        plain_results = run_script(plain, ops, "plain")

        with firewall(budget=budget) as guard:
            collector = HostileCollector(every=1)
            tracked = make_tracked(collector)
            tracked_results = run_script(tracked, ops, "tracked")
            tracked_state = state_of(tracked)

        assert tracked_results == plain_results
        assert tracked_state == plain
        report = guard.report()
        assert report.tripped
        assert report.faults == budget
        # Pass-through really engaged: the hostile collector stopped
        # being called once the breaker opened.
        assert collector.record_calls + collector.register_calls <= budget + 1

    @pytest.mark.parametrize("kind", sorted(STRUCTURES), ids=str)
    def test_register_failure_behaves_like_plain(self, kind):
        """An instance whose registration failed is a plain delegate."""
        make_tracked, make_plain, ops, state_of = STRUCTURES[kind]

        plain = make_plain()
        plain_results = run_script(plain, ops, "plain")

        with firewall(budget=10**6):
            tracked = make_tracked(make_hostile_collector("raising-register"))
            assert not tracked.tracked
            tracked_results = run_script(tracked, ops, "tracked")
            tracked_state = state_of(tracked)

        assert tracked_results == plain_results
        assert tracked_state == plain


class TestFastpathUnderFirewall:
    """The record kernel is the one hook that bypasses per-event Python
    plumbing — the firewall must contain its faults all the same."""

    @pytest.mark.parametrize("kind", sorted(STRUCTURES), ids=str)
    def test_hostile_bind_contained_with_kernel_engaged(self, kind):
        make_tracked, make_plain, ops, state_of = STRUCTURES[kind]

        plain = make_plain()
        plain_results = run_script(plain, ops, "plain")

        collector = EventCollector(channel=BindRaisingPackedChannel())
        assert collector.fastpath == KERNEL  # the kernel really engaged

        with firewall(budget=10**6) as guard:
            tracked = make_tracked(collector)
            tracked_results = run_script(tracked, ops, "tracked")
            tracked_state = state_of(tracked)

        assert tracked_results == plain_results
        assert tracked_state == plain
        report = guard.report()
        assert report.state == "closed"
        assert report.faults > 0

    @pytest.mark.parametrize("kind", sorted(STRUCTURES), ids=str)
    def test_healthy_fastpath_under_guard_is_faultless(self, kind):
        make_tracked, _make_plain, ops, _state_of = STRUCTURES[kind]

        channel = PackedBatchingChannel()
        collector = EventCollector(channel=channel)
        assert collector.fastpath == KERNEL
        with firewall(budget=25) as guard:
            run_script(make_tracked(collector), ops, "tracked")

        report = guard.report()
        assert report.faults == 0
        assert not report.tripped
        # The kernel kept packing while guarded: events are all there.
        assert len(channel.drain()) > 0


# ---------------------------------------------------------------------------
# Healthy-guard convergence: the firewall must be invisible when the
# profiler is healthy — same workload results AND the exact streaming ==
# batch equivalence of the Table V evaluation.
# ---------------------------------------------------------------------------


def _raw(event):
    return (
        event.instance_id,
        int(event.op),
        int(event.kind),
        event.position,
        event.size,
        event.thread_id,
        event.wall_time,
    )


def _stream_collector(collector, window: int = 256):
    engine = StreamingUseCaseEngine()
    profiles = collector.profiles()
    for profile in profiles:
        engine.register_instance(
            profile.instance_id, profile.kind, profile.site, profile.label
        )
    events = sorted(
        (event for profile in profiles for event in profile), key=lambda e: e.seq
    )
    for start in range(0, len(events), window):
        engine.feed_window([_raw(e) for e in events[start : start + window]])
    return engine


def _signature(report):
    return sorted(
        (u.instance_id, u.kind.abbreviation, tuple(sorted(u.evidence.items())))
        for u in report.use_cases
    )


class TestHealthyGuardConvergence:
    @pytest.mark.parametrize("workload", EVALUATION_WORKLOADS, ids=lambda w: w.name)
    def test_guarded_run_matches_plain_and_streaming_matches_batch(self, workload):
        plain_result = workload.run_plain(scale=0.3)
        with firewall(budget=25) as guard:
            with collecting() as collector:
                tracked_result = workload.run_tracked(scale=0.3)

        # (1) Observer contract: identical program results under guard.
        assert tracked_result == plain_result
        # (2) Zero contained faults on the healthy path.
        report = guard.report()
        assert report.faults == 0
        assert not report.tripped
        # (3) The streaming engine still converges to the exact batch
        # report — the guard perturbed nothing in the event stream.
        batch_report = UseCaseEngine().analyze(collector.profiles())
        streaming_report = _stream_collector(collector).report()
        assert _signature(streaming_report) == _signature(batch_report)
