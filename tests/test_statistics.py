"""Unit tests for profile statistics and the explanation engine."""

from __future__ import annotations

import pytest

from repro.events import OperationKind, RuntimeProfile, collecting
from repro.patterns import compute_stats
from repro.structures import TrackedList
from repro.usecases import (
    UseCaseEngine,
    UseCaseKind,
    explain_profile,
    explain_use_case,
    near_misses,
)

from .conftest import make_profile

OP = OperationKind


class TestComputeStats:
    def test_empty(self):
        stats = compute_stats(RuntimeProfile(0))
        assert stats.events == 0
        assert stats.read_share == 0.0
        assert stats.op_mix == {}

    def test_read_write_shares(self):
        stats = compute_stats(
            make_profile(
                [(OP.READ, 0, 4)] * 3 + [(OP.WRITE, 1, 4)]
            )
        )
        assert stats.read_share == pytest.approx(0.75)
        assert stats.write_share == pytest.approx(0.25)

    def test_op_mix_sums_to_one(self):
        stats = compute_stats(
            make_profile(
                [(OP.INSERT, i, i + 1) for i in range(10)]
                + [(OP.SORT, None, 10)]
            )
        )
        assert sum(stats.op_mix.values()) == pytest.approx(1.0)
        assert stats.op_mix[OP.INSERT] == pytest.approx(10 / 11)

    def test_end_affinity_queue_shape(self):
        # Inserts at back, deletes at front: everything is at an end.
        specs = [(OP.INSERT, i, i + 1) for i in range(10)]
        specs += [(OP.DELETE, 0, 10 - i - 1) for i in range(10)]
        stats = compute_stats(make_profile(specs))
        assert stats.end_affinity.ends_total == pytest.approx(1.0)
        assert stats.end_affinity.front > 0.4
        assert stats.end_affinity.back > 0.4

    def test_stride_sequential_scan(self):
        stats = compute_stats(make_profile([(OP.READ, i, 50) for i in range(50)]))
        assert stats.stride.sequential_share == pytest.approx(1.0)
        assert stats.stride.mean_stride == pytest.approx(1.0)

    def test_stride_jumping_access(self):
        stats = compute_stats(
            make_profile([(OP.READ, (i * 17) % 50, 50) for i in range(50)])
        )
        assert stats.stride.sequential_share < 0.2
        assert stats.stride.max_stride > 5

    def test_growth(self):
        specs = [(OP.INSERT, i, i + 1) for i in range(20)]
        stats = compute_stats(make_profile(specs))
        assert stats.growth == 19  # size 1 -> size 20

    def test_positionless_only(self):
        stats = compute_stats(make_profile([(OP.CLEAR, None, 0)] * 5))
        assert stats.distinct_positions == 0
        assert stats.end_affinity.ends_total == 0.0

    def test_describe(self):
        stats = compute_stats(make_profile([(OP.READ, 0, 2), (OP.READ, 1, 2)]))
        text = stats.describe()
        assert "2 events" in text and "reads 100%" in text


class TestExplain:
    def _profile(self, n_inserts=150, scans=3):
        with collecting():
            xs = TrackedList()
            for i in range(n_inserts):
                xs.append(i)
            for _ in range(scans):
                list(xs)
            return xs.profile()

    def test_explanations_cover_all_parallel_kinds(self):
        explanations = explain_profile(self._profile())
        assert {e.kind for e in explanations} == set(
            UseCaseKind.parallel_kinds()
        )

    def test_fired_flag_consistent_with_engine(self):
        profile = self._profile(n_inserts=300, scans=0)
        engine = UseCaseEngine()
        fired = {u.kind for u in engine.analyze_profile(profile)}
        for explanation in explain_profile(profile, engine):
            assert explanation.fired == (explanation.kind in fired)

    def test_fired_rule_has_all_criteria_satisfied(self):
        profile = self._profile(n_inserts=300, scans=0)
        (li,) = [
            e
            for e in explain_profile(profile)
            if e.kind is UseCaseKind.LONG_INSERT
        ]
        assert li.fired
        assert not li.failed_criteria

    def test_describe_contains_marks(self):
        text = explain_profile(self._profile())[0].describe()
        assert "threshold" in text
        assert "✓" in text or "✗" in text

    def test_near_miss_detection(self):
        # 150 inserts + 3 scans: insert share ~25% vs the 30% threshold.
        misses = near_misses(self._profile(), tolerance=0.5)
        assert UseCaseKind.LONG_INSERT in {m.kind for m in misses}

    def test_near_miss_respects_tolerance(self):
        misses = near_misses(self._profile(), tolerance=0.01)
        assert UseCaseKind.LONG_INSERT not in {m.kind for m in misses}

    def test_explain_use_case_narrative(self):
        profile = self._profile(n_inserts=300, scans=0)
        (use_case,) = UseCaseEngine().analyze_profile(profile)
        text = explain_use_case(use_case)
        assert "advice" in text
        assert "evidence" in text
        assert "profile" in text
