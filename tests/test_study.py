"""Unit tests for the empirical-study package (Tables I–III, Figure 1)."""

from __future__ import annotations

import pytest

from repro.events.types import StructureKind
from repro.study import (
    FIG1_PROGRAMS,
    KIND_TOTALS,
    TABLE1_DOMAINS,
    TABLE2_PROGRAMS,
    TABLE3_PROGRAMS,
    TABLE3_TOTALS,
    build_program_suite,
    build_survey_suite,
    run_occurrence_study,
)
from repro.workloads.corpus_gen import apportion, corpus_domains, generate_corpus


class TestTranscribedData:
    """The recovered ground truth must satisfy the paper's marginals."""

    def test_fig1_total(self):
        assert sum(p.instances for p in FIG1_PROGRAMS) == 1_960

    def test_fig1_has_37_programs(self):
        assert len(FIG1_PROGRAMS) == 37

    def test_domain_sums_match_table1(self):
        per_domain: dict[str, int] = {}
        for program in FIG1_PROGRAMS:
            per_domain[program.domain] = (
                per_domain.get(program.domain, 0) + program.instances
            )
        for domain, (instances, _loc) in TABLE1_DOMAINS.items():
            assert per_domain[domain] == instances, domain

    def test_kind_totals(self):
        assert sum(KIND_TOTALS.values()) == 1_960
        assert KIND_TOTALS[StructureKind.LIST] == 1_275

    def test_table1_loc_total(self):
        assert sum(loc for _, loc in TABLE1_DOMAINS.values()) == 936_356

    def test_table2_marginals(self):
        assert len(TABLE2_PROGRAMS) == 15
        assert sum(r.regularities for r in TABLE2_PROGRAMS) == 81
        assert sum(r.parallel_use_cases for r in TABLE2_PROGRAMS) == 41

    def test_table3_marginals(self):
        assert sum(r.total for r in TABLE3_PROGRAMS) == 66
        assert sum(r.li for r in TABLE3_PROGRAMS) == TABLE3_TOTALS["LI"]
        assert sum(r.iq for r in TABLE3_PROGRAMS) == TABLE3_TOTALS["IQ"]
        assert sum(r.sai for r in TABLE3_PROGRAMS) == TABLE3_TOTALS["SAI"]
        assert sum(r.fs for r in TABLE3_PROGRAMS) == TABLE3_TOTALS["FS"]
        assert sum(r.flr for r in TABLE3_PROGRAMS) == TABLE3_TOTALS["FLR"]


class TestApportionment:
    def test_exact_total(self):
        assert sum(apportion(100, [1, 2, 3])) == 100
        assert sum(apportion(7, [5, 5, 5, 5])) == 7

    def test_proportionality(self):
        result = apportion(100, [75, 25])
        assert result == [75, 25]

    def test_zero_weights(self):
        result = apportion(5, [0, 0, 0])
        assert sum(result) == 5

    def test_empty_total(self):
        assert apportion(0, [3, 4]) == [0, 0]

    def test_deterministic(self):
        assert apportion(17, [3, 5, 9]) == apportion(17, [3, 5, 9])


class TestCorpusGenerator:
    def test_generate_is_deterministic(self):
        a = generate_corpus(loc_scale=0.02)
        b = generate_corpus(loc_scale=0.02)
        assert [p.files for p in a] == [p.files for p in b]

    def test_programs_valid_python(self):
        import ast

        for program in generate_corpus(loc_scale=0.02):
            for source in program.files.values():
                ast.parse(source)

    def test_program_kind_sums(self):
        programs = generate_corpus(loc_scale=0.02)
        expected = {p.name: p.instances for p in FIG1_PROGRAMS}
        for program in programs:
            assert sum(program.kind_counts.values()) == expected[program.name]

    def test_corpus_domains_mapping(self):
        domains = corpus_domains()
        assert domains["gpdotnet"] == "Simulation"
        assert len(domains) == 37


class TestOccurrenceStudy:
    @pytest.fixture(scope="class")
    def study(self, tmp_path_factory):
        root = tmp_path_factory.mktemp("corpus")
        return run_occurrence_study(corpus_root=root, loc_scale=0.02)

    def test_totals(self, study):
        assert study.total_instances == 1_960
        assert study.corpus.total_array_instances == 785

    def test_corpus_root_is_cached(self, tmp_path):
        first = run_occurrence_study(corpus_root=tmp_path, loc_scale=0.02)
        second = run_occurrence_study(corpus_root=tmp_path, loc_scale=0.02)
        assert first.total_instances == second.total_instances

    def test_table1_rows_ordered(self, study):
        rows = study.table1_rows()
        assert [r[0] for r in rows] == list(TABLE1_DOMAINS)

    def test_figure1_min_share_cut(self, study):
        _names, series = study.figure1_series(min_share=0.02)
        assert StructureKind.HASH_SET not in series  # 1.94% < 2%
        _names, series_low = study.figure1_series(min_share=0.01)
        assert StructureKind.HASH_SET in series_low


class TestSuiteBuilders:
    def test_program_suite_size(self):
        row = TABLE2_PROGRAMS[0]
        profiles = build_program_suite(row)
        # regularities + irregular filler (dual profiles fold two use
        # cases into one regularity).
        assert len(profiles) >= row.regularities

    def test_survey_suite_size(self):
        row = TABLE3_PROGRAMS[0]
        profiles = build_survey_suite(row)
        assert len(profiles) == row.total + 2  # + two fillers


class TestConsistencyChecks:
    def test_transcribed_data_is_consistent(self):
        from repro.study import verify_study_data

        assert verify_study_data() == []

    def test_checks_catch_corruption(self, monkeypatch):
        """Sanity: the checker is not vacuous — corrupt one total and
        it must complain."""
        from repro.study import consistency

        monkeypatch.setattr(consistency, "TOTAL_DYNAMIC_INSTANCES", 2000)
        issues = consistency.verify_study_data()
        assert any(i.check == "fig1-total" for i in issues)
