"""Unit tests for profile visualization (ASCII + SVG)."""

from __future__ import annotations

import pytest

from repro.events import OperationKind, RuntimeProfile, collecting
from repro.patterns import detect
from repro.structures import TrackedList
from repro.viz import (
    profile_to_svg,
    render_op_histogram,
    render_patterns,
    render_profile,
    save_svg,
)

from .conftest import make_profile

OP = OperationKind


@pytest.fixture
def small_profile():
    return make_profile(
        [(OP.INSERT, i, i + 1) for i in range(10)]
        + [(OP.READ, i, 10) for i in range(9, -1, -1)]
    )


class TestAsciiChart:
    def test_renders_all_events_when_narrow(self, small_profile):
        text = render_profile(small_profile, width=40, height=8)
        assert "#" in text and "r" in text
        assert "events 0..19" in text
        assert "downsampled" not in text

    def test_downsamples_wide_profiles(self):
        profile = make_profile([(OP.READ, i % 50, 50) for i in range(5000)])
        text = render_profile(profile, width=60, height=8)
        assert "downsampled" in text

    def test_empty_profile(self):
        assert render_profile(RuntimeProfile(0)) == "(empty profile)"

    def test_whole_structure_marker(self):
        profile = make_profile(
            [(OP.INSERT, 0, 1), (OP.INSERT, 1, 2), (OP.CLEAR, None, 0)]
        )
        text = render_profile(profile, width=20, height=5)
        assert "|" in text

    def test_color_mode_emits_ansi(self, small_profile):
        text = render_profile(small_profile, color=True)
        assert "\x1b[32m" in text  # green reads
        assert "\x1b[31m" in text  # red writes

    def test_legend_toggle(self, small_profile):
        with_legend = render_profile(small_profile, show_legend=True)
        without = render_profile(small_profile, show_legend=False)
        assert "size envelope" in with_legend
        assert "size envelope" not in without

    def test_render_patterns(self, small_profile):
        analysis = detect(small_profile)
        text = render_patterns(analysis)
        assert "Insert-Back" in text
        assert "Read-Backward" in text

    def test_render_patterns_empty(self):
        analysis = detect(make_profile([]))
        assert "no patterns" in render_patterns(analysis)

    def test_render_patterns_truncates(self):
        specs = []
        for _ in range(30):
            specs += [(OP.READ, 0, 5), (OP.READ, 1, 5)]
            specs += [(OP.SEARCH, 0, 5)]
        analysis = detect(make_profile(specs))
        text = render_patterns(analysis, max_rows=5)
        assert "more" in text

    def test_op_histogram(self, small_profile):
        text = render_op_histogram(small_profile)
        assert "insert" in text and "read" in text
        assert "10" in text

    def test_op_histogram_empty(self):
        assert "empty" in render_op_histogram(RuntimeProfile(0))


class TestSvg:
    def test_valid_xml(self, small_profile):
        import xml.etree.ElementTree as ET

        svg = profile_to_svg(small_profile)
        root = ET.fromstring(svg)
        assert root.tag.endswith("svg")

    def test_contains_read_and_write_bars(self, small_profile):
        svg = profile_to_svg(small_profile)
        assert "#2e7d32" in svg  # read green
        assert "#c62828" in svg  # write red
        assert "#cccccc" in svg  # size grey

    def test_empty_profile_svg(self):
        svg = profile_to_svg(RuntimeProfile(0))
        assert "empty profile" in svg

    def test_custom_title(self, small_profile):
        svg = profile_to_svg(small_profile, title="My Structure")
        assert "My Structure" in svg

    def test_max_columns_bounds_size(self):
        profile = make_profile([(OP.READ, i % 50, 50) for i in range(5000)])
        small = profile_to_svg(profile, max_columns=100)
        large = profile_to_svg(profile, max_columns=1000)
        assert len(small) < len(large)

    def test_save_svg(self, tmp_path, small_profile):
        path = save_svg(small_profile, str(tmp_path / "p.svg"))
        assert (tmp_path / "p.svg").read_text().startswith("<svg")

    def test_whole_structure_ops_rendered(self):
        profile = make_profile(
            [(OP.INSERT, 0, 1), (OP.SORT, None, 1)]
        )
        svg = profile_to_svg(profile)
        assert "#1565c0" in svg  # whole-structure marker blue


class TestEndToEnd:
    def test_real_structure_renders(self):
        with collecting():
            xs = TrackedList(capacity=10)
            for i in range(10):
                xs.append(i)
            for i in range(9, -1, -1):
                _ = xs[i]
            profile = xs.profile()
        text = render_profile(profile, width=40, height=10)
        # The Figure 2 look: both glyphs present, flat envelope.
        assert "#" in text and "r" in text
