"""Tests for the machine-model validation against real threads.

Wait-bound tasks overlap for real even on a single-core host (sleeps
release the GIL), so these are genuine concurrency measurements.
Timing assertions are deliberately loose — CI noise — but the *shape*
assertions are strict.
"""

from __future__ import annotations

from repro.parallel import measure_point, validate_machine_model


def _retry(check, attempts: int = 3):
    """Timing measurements on a loaded single-core host are noisy; a
    condition must hold on at least one clean attempt."""
    last = None
    for _ in range(attempts):
        try:
            return check()
        except AssertionError as exc:  # noqa: PERF203 - bounded retries
            last = exc
    raise last


class TestValidation:
    def test_real_speedup_happens(self):
        """Threads genuinely overlap waits: 8 × 20 ms tasks on 4 workers
        must beat sequential clearly."""

        def check():
            point = measure_point(tasks=8, task_seconds=0.02, workers=4)
            assert point.measured_speedup > 1.8
            return point

        _retry(check)

    def test_model_tracks_reality(self):
        """Predicted speedups stay within 50% of measured across the
        sweep (typically <20%; the bound absorbs scheduler noise)."""

        def check():
            for point in validate_machine_model(
                task_counts=(4, 8, 16), task_seconds=0.02
            ):
                assert point.relative_error < 0.50, (
                    point.tasks,
                    point.measured_speedup,
                    point.predicted_speedup,
                )

        _retry(check)

    def test_shape_saturates_at_workers(self):
        def check():
            points = validate_machine_model(
                workers=4, task_counts=(1, 4, 16), task_seconds=0.02
            )
            by_tasks = {p.tasks: p for p in points}
            # One task: no parallelism to exploit, measured ≈ 1.
            assert by_tasks[1].measured_speedup < 1.5
            # Many tasks: saturates near (not above) the worker count.
            assert 1.8 < by_tasks[16].measured_speedup <= 4.6
            # Prediction shows the same saturation.
            assert by_tasks[16].predicted_speedup <= 4.0

        _retry(check)

    def test_prediction_fields(self):
        point = measure_point(tasks=2, task_seconds=0.005, workers=2)
        assert point.measured_sequential > point.measured_parallel * 0.5
        assert point.predicted_speedup > 0
