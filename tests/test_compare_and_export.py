"""Unit tests for profile comparison and JSON report export."""

from __future__ import annotations

import json

import pytest

from repro.events import OperationKind, collecting
from repro.patterns import (
    PatternType,
    compare_profiles,
    compare_reports,
)
from repro.structures import TrackedList, TrackedQueue
from repro.usecases import (
    UseCaseEngine,
    report_to_dict,
    report_to_json,
    summarize_json,
)

from .conftest import make_profile

OP = OperationKind


class TestProfileDiff:
    def test_identical_profiles(self):
        a = make_profile([(OP.INSERT, i, i + 1) for i in range(10)])
        b = make_profile([(OP.INSERT, i, i + 1) for i in range(10)])
        diff = compare_profiles(a, b)
        assert diff.event_delta == 0
        assert not diff.removed_types()
        assert not diff.added_types()
        assert "unchanged" in diff.describe()

    def test_pattern_removed(self):
        before = make_profile(
            [(OP.INSERT, i, i + 1) for i in range(10)]
            + [(OP.READ, i, 10) for i in range(10)]
        )
        after = make_profile([(OP.INSERT, i, i + 1) for i in range(10)])
        diff = compare_profiles(before, after)
        assert PatternType.READ_FORWARD in diff.removed_types()
        assert diff.event_delta == -10

    def test_stats_delta(self):
        before = make_profile([(OP.READ, i, 10) for i in range(10)])
        after = make_profile([(OP.WRITE, i, 10) for i in range(10)])
        diff = compare_profiles(before, after)
        assert diff.read_share_delta == pytest.approx(-1.0)

    def test_describe_mentions_deltas(self):
        before = make_profile([(OP.READ, i, 10) for i in range(10)])
        after = make_profile([])
        text = compare_profiles(before, after).describe()
        assert "-10" in text and "Read-Forward" in text


class TestReportDiff:
    def _capture(self, use_queue: bool):
        engine = UseCaseEngine()
        with collecting() as session:
            if use_queue:
                q = TrackedQueue(label="jobs")
                for i in range(90):
                    q.enqueue(i)
                while len(q):
                    q.dequeue()
            else:
                xs = TrackedList(label="jobs")
                for i in range(90):
                    xs.append(i)
                while len(xs):
                    xs.pop(0)
        return engine.analyze_collector(session)

    def test_migration_resolves_diagnosis(self):
        before = self._capture(use_queue=False)
        after = self._capture(use_queue=True)
        diff = compare_reports(before, after)
        assert ("jobs", "Implement-Queue") in diff.resolved
        assert diff.fully_resolved

    def test_no_change_persists(self):
        before = self._capture(use_queue=False)
        again = self._capture(use_queue=False)
        diff = compare_reports(before, again)
        assert diff.persisting
        assert not diff.resolved and not diff.introduced

    def test_describe(self):
        diff = compare_reports(
            self._capture(use_queue=False), self._capture(use_queue=True)
        )
        text = diff.describe()
        assert "resolved: " in text and "Implement-Queue" in text


class TestJsonExport:
    @pytest.fixture
    def report(self):
        with collecting() as session:
            xs = TrackedList(label="hot")
            for i in range(300):
                xs.append(i)
        return UseCaseEngine().analyze_collector(session)

    def test_roundtrip_through_json(self, report):
        payload = report_to_json(report)
        data = json.loads(payload)
        assert data["schema_version"] == 1
        assert data["instances_analyzed"] == 1
        assert data["use_cases"][0]["kind"] == "Long-Insert"
        assert data["use_cases"][0]["parallel"] is True

    def test_site_serialized(self, report):
        data = report_to_dict(report)
        site = data["use_cases"][0]["site"]
        assert site["filename"].endswith(".py")
        assert isinstance(site["lineno"], int)

    def test_evidence_only_scalars(self, report):
        data = report_to_dict(report)
        for use_case in data["use_cases"]:
            for value in use_case["evidence"].values():
                assert isinstance(value, (int, float, str, bool))

    def test_summarize(self, report):
        line = summarize_json(report_to_json(report))
        assert "1 use cases" in line
        assert "LI=1" in line

    def test_summarize_empty(self):
        line = summarize_json('{"use_cases": []}')
        assert "0 use cases" in line and "none" in line
