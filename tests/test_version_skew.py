"""Version-skew safety: protocol negotiation, state-format migration,
and rolling upgrades.

Three contracts under test.  On the wire: peers negotiate the highest
common protocol version, degrade gracefully to version 1, and skip —
count, never crash on — frame types from a newer build.  On disk: a
state directory written by the previous generation migrates in place
via crash-safe whole-file rewrites (swept at every byte, the PR 4
torn-write discipline), refuses downgrades, and classifies
future-format state as needs-migration rather than damage.  In the
fleet: a rolling upgrade drains, migrates, and respawns workers one at
a time with exact cursor resume and zero event loss.
"""

from __future__ import annotations

import json
import shutil
import socket
import struct

import pytest

from repro.cli import main as cli_main
from repro.buildinfo import build_info, format_build_info
from repro.service import (
    DowngradeError,
    FutureFormatError,
    PROTOCOL_FEATURES,
    PROTOCOL_MIN_SUPPORTED,
    PROTOCOL_VERSION,
    ProfilingDaemon,
    ProtocolError,
    RetryAfterError,
    STATE_VERSION,
    SessionJournal,
    StreamingUseCaseEngine,
    fetch_stats,
    negotiate_version,
    parse_version_offer,
    recover_session_dir,
    version_offer,
)
from repro.service.client import ServiceClient
from repro.service.durability import (
    _CHECKPOINT_NAME,
    _MAGIC_LEN,
    JOURNAL_VERSION,
    journal_magic,
)
from repro.service.fleet import FleetSupervisor
from repro.service.migrate import (
    TMP_SUFFIX,
    migrate_session_dir,
    migrate_state_dir,
    session_versions,
)
from repro.service.protocol import MessageType
from repro.service.router import shard_for
from repro.service.session import Session
from repro.testing import generate_trace
from repro.testing.chaos import ChaosSoak, regress_state_dir_to_v1
from repro.testing.faults import FaultFS
from repro.testing.oracle import diff_summaries, run_batch_path, summarize_report
from repro.usecases.json_export import report_to_dict

from pathlib import Path

FIXTURE = Path(__file__).resolve().parent / "fixtures" / "state_v1"

#: Mirrors tests/fixtures/make_v1_state.py — the traces are pure
#: functions of their seeds, so the fixture stores no event data.
FIXTURE_SESSIONS = (("fixture-a", 1005), ("fixture-b", 1006))

SMALL = dict(max_instances=2, max_segments=2, max_segment_events=40)


def _windows(events, window=64):
    for offset in range(0, len(events), window):
        yield offset, events[offset : offset + window]


def _ship(client: ServiceClient, trace, window: int = 64, start: int = 0):
    if start == 0:
        client.register_instances([i.registration() for i in trace.instances])
    for offset, raws in _windows(trace.events, window):
        if offset >= start:
            client.send_events(offset, raws)


def _batch_summary(trace):
    return summarize_report(run_batch_path(trace))


def _assert_report_matches_batch(report: dict, trace) -> None:
    diffs = diff_summaries(
        "replayed", summarize_report(report), "batch", _batch_summary(trace)
    )
    assert not diffs, diffs


# -- raw-socket plumbing (version-1 peers have no client class) ----------


class _RawPeer:
    """A hand-rolled peer speaking exactly the frames we give it."""

    def __init__(self, address: str):
        host, port = address.rsplit(":", 1)
        self.sock = socket.create_connection((host, int(port)), timeout=10)

    def send(self, mtype: int, payload: bytes) -> None:
        self.sock.sendall(
            struct.pack("!I", 1 + len(payload)) + bytes([mtype]) + payload
        )

    def send_json(self, mtype: int, obj: dict) -> None:
        self.send(mtype, json.dumps(obj).encode())

    def recv(self) -> tuple[int, dict]:
        header = b""
        while len(header) < 4:
            chunk = self.sock.recv(4 - len(header))
            if not chunk:
                raise ConnectionError("peer closed")
            header += chunk
        (length,) = struct.unpack("!I", header)
        body = b""
        while len(body) < length:
            body += self.sock.recv(length - len(body))
        return body[0], json.loads(body[1:]) if len(body) > 1 else {}

    def close(self) -> None:
        self.sock.close()


# -- negotiation units ---------------------------------------------------


class TestNegotiation:
    def test_offer_advertises_range_and_features(self):
        offer = version_offer()
        assert offer["proto"] == PROTOCOL_VERSION
        assert offer["proto_min"] == PROTOCOL_MIN_SUPPORTED
        assert set(offer["features"]) == set(PROTOCOL_FEATURES)

    def test_offer_roundtrips_through_parse(self):
        low, high, features = parse_version_offer(version_offer())
        assert (low, high) == (PROTOCOL_MIN_SUPPORTED, PROTOCOL_VERSION)
        assert features == PROTOCOL_FEATURES

    def test_legacy_hello_is_a_version_1_peer(self):
        assert parse_version_offer({"session": "s"}) == (1, 1, frozenset())

    def test_legacy_hello_with_shm_keeps_its_ring(self):
        low, high, features = parse_version_offer(
            {"session": "s", "shm": {"name": "x", "capacity": 4096}}
        )
        assert (low, high) == (1, 1)
        assert features == frozenset({"shm"})

    @pytest.mark.parametrize(
        "bad",
        [
            {"proto": "two"},
            {"proto": 0},
            {"proto": 2, "proto_min": 3},
            {"proto": 2, "proto_min": 0},
            {"proto": 2, "features": "shm"},
            {"proto": 2, "features": [1]},
        ],
    )
    def test_malformed_offers_are_bugs_not_legacy(self, bad):
        with pytest.raises(ProtocolError):
            parse_version_offer(bad)

    def test_negotiation_picks_highest_common(self):
        assert negotiate_version(1, 2) == PROTOCOL_VERSION
        assert negotiate_version(1, 1) == 1
        assert negotiate_version(2, 5) == PROTOCOL_VERSION
        assert negotiate_version(1, 99, local_min=1, local_max=3) == 3

    def test_disjoint_ranges_have_no_fallback(self):
        assert negotiate_version(99, 100) is None
        assert negotiate_version(3, 5, local_min=1, local_max=2) is None


class TestBuildInfo:
    def test_build_info_names_every_format(self):
        info = build_info()
        assert info["proto"] == PROTOCOL_VERSION
        assert info["proto_min"] == PROTOCOL_MIN_SUPPORTED
        assert info["journal_format"] == JOURNAL_VERSION
        assert info["kernel"] in ("c", "py")

    def test_format_build_info_is_one_line(self):
        line = format_build_info()
        assert line.startswith("dsspy ")
        assert f"proto {PROTOCOL_MIN_SUPPORTED}-{PROTOCOL_VERSION}" in line

    def test_version_flag_prints_build_info(self, capsys):
        with pytest.raises(SystemExit) as exc:
            cli_main(["--version"])
        assert exc.value.code == 0
        assert format_build_info() in capsys.readouterr().out


# -- live daemon skew ----------------------------------------------------


class TestLiveSkew:
    def test_new_client_negotiates_current_version(self):
        with ProfilingDaemon(port=0) as daemon:
            client = ServiceClient(daemon.address, session_id="skew-new")
            try:
                assert client.proto_version == PROTOCOL_VERSION
                assert "journaled" in client.server_features
            finally:
                client.close()
            stats = daemon.stats()
            assert stats["build"] == build_info()
            row = next(s for s in stats["sessions"] if s["session"] == "skew-new")
            assert row["proto"] == PROTOCOL_VERSION
            assert row["pressure"] == "normal"

    def test_legacy_hello_degrades_to_version_1(self):
        with ProfilingDaemon(port=0) as daemon:
            peer = _RawPeer(daemon.address)
            try:
                peer.send_json(MessageType.HELLO, {"session": "skew-legacy"})
                mtype, ack = peer.recv()
                assert mtype == MessageType.ACK
                # The ACK still carries the daemon's range (the legacy
                # client ignores the unknown keys) but the negotiated
                # pick is the legacy peer's only version.
                assert ack["proto"] == 1
                assert ack["proto_min"] == PROTOCOL_MIN_SUPPORTED
            finally:
                peer.close()
            row = next(
                s for s in daemon.stats()["sessions"]
                if s["session"] == "skew-legacy"
            )
            assert row["proto"] == 1

    def test_disjoint_version_range_is_a_clear_error(self):
        with ProfilingDaemon(port=0) as daemon:
            peer = _RawPeer(daemon.address)
            try:
                peer.send_json(
                    MessageType.HELLO,
                    {"session": "skew-future", "proto": 99, "proto_min": 99},
                )
                mtype, payload = peer.recv()
                assert mtype == MessageType.ERROR
                assert "no common protocol version" in payload["error"]
            finally:
                peer.close()

    def test_unknown_frame_type_is_skipped_and_counted(self):
        with ProfilingDaemon(port=0) as daemon:
            peer = _RawPeer(daemon.address)
            try:
                peer.send_json(MessageType.HELLO, {"session": "skew-frames"})
                assert peer.recv()[0] == MessageType.ACK
                peer.send(42, b"payload-from-the-future")
                peer.send(43, b"")
                # The session must survive: a HEARTBEAT after the
                # unknown frames still gets its ACK.
                peer.send_json(MessageType.HEARTBEAT, {})
                assert peer.recv()[0] == MessageType.ACK
            finally:
                peer.close()
            stats = daemon.stats()
            assert stats["frames_skipped"] == 2
            assert fetch_stats(daemon.address)["frames_skipped"] == 2


# -- state-format migration ----------------------------------------------


def _copy_fixture(tmp_path: Path) -> Path:
    target = tmp_path / "state_v1"
    shutil.copytree(FIXTURE, target)
    return target


class TestFixtureMigration:
    """The committed pre-PR state directory is the ground truth: it was
    written by the old build and must migrate, verify, and replay."""

    def test_fixture_is_still_version_1(self):
        for session_id, _seed in FIXTURE_SESSIONS:
            versions = session_versions(FIXTURE / session_id)
            assert versions["state"] == 1
            assert set(versions["segments"].values()) == {1}
            assert versions["checkpoint"] == 1

    def test_migrate_cli_then_fsck_then_replay_matches_batch(self, tmp_path):
        state = _copy_fixture(tmp_path)
        assert cli_main(["migrate", str(state)]) == 0
        assert cli_main(["fsck", str(state)]) == 0
        for session_id, seed in FIXTURE_SESSIONS:
            versions = session_versions(state / session_id)
            assert versions["state"] == STATE_VERSION
            trace = generate_trace(seed)
            recovered = recover_session_dir(state / session_id)
            assert recovered.received == len(trace.events)
            _assert_report_matches_batch(
                report_to_dict(recovered.engine.report()), trace
            )

    def test_migration_is_idempotent(self, tmp_path):
        state = _copy_fixture(tmp_path)
        first = migrate_state_dir(state)
        assert first["migrated"] == len(FIXTURE_SESSIONS)
        again = migrate_state_dir(state)
        assert again["migrated"] == 0
        assert all(not entry["steps"] for entry in again["sessions"])

    def test_downgrade_is_refused(self, tmp_path):
        state = _copy_fixture(tmp_path)
        migrate_state_dir(state)
        with pytest.raises(DowngradeError, match="downgrades are not supported"):
            migrate_session_dir(state / "fixture-a", to=1)
        assert cli_main(["migrate", str(state), "--to", "1"]) == 2

    def test_future_state_needs_migration_not_repair(self, tmp_path, capsys):
        state = _copy_fixture(tmp_path)
        segment = next((state / "fixture-a").glob("journal-*.wal"))
        segment.write_bytes(journal_magic(99) + segment.read_bytes()[_MAGIC_LEN:])
        ckpt = state / "fixture-b" / _CHECKPOINT_NAME
        ckpt_state = json.loads(ckpt.read_text())
        ckpt_state["version"] = 99
        ckpt.write_text(json.dumps(ckpt_state))
        # fsck: exit 2 (needs migration), never 1 (damaged).
        assert cli_main(["fsck", str(state)]) == 2
        captured = capsys.readouterr()
        assert "needs-migration" in captured.err
        assert json.loads(captured.out)["needs_migration"] == 2
        # migrate: a clear refusal pointing at the newer build.
        with pytest.raises(FutureFormatError):
            migrate_state_dir(state)
        assert cli_main(["migrate", str(state)]) == 2
        err = capsys.readouterr().err
        assert "newer dsspy build" in err


class TestCrashDuringMigration:
    """The PR 4 torn-write discipline applied to migration: a crash at
    *any* byte of the rewrite leaves each artifact wholly old or wholly
    new, and rerunning the migration completes it."""

    @pytest.fixture()
    def v1_session(self, tmp_path):
        trace = generate_trace(77, **SMALL)
        directory = tmp_path / "pristine"
        journal = SessionJournal(directory, segment_max_bytes=2048)
        session = Session(
            "crashy", StreamingUseCaseEngine(), journal=journal, checkpoint_every=32
        )
        for inst in trace.instances:
            session.register(inst.instance_id, inst.kind, None, inst.label)
        for offset, raws in _windows(trace.events, 32):
            session.ingest(offset, raws)
        session.abandon()
        assert regress_state_dir_to_v1(directory) > 0
        assert session_versions(directory)["state"] == 1
        return directory, trace

    @staticmethod
    def _artifact_bytes(directory: Path) -> dict[str, bytes]:
        names = sorted(p.name for p in directory.glob("journal-*.wal"))
        names.append(_CHECKPOINT_NAME)
        return {name: (directory / name).read_bytes() for name in names}

    def test_torn_tmp_at_every_byte_recovers_wholly_old_or_new(
        self, tmp_path, v1_session
    ):
        directory, trace = v1_session
        old = self._artifact_bytes(directory)
        done = tmp_path / "done"
        shutil.copytree(directory, done)
        migrate_session_dir(done)
        new = self._artifact_bytes(done)
        expected = len(trace.events)

        iteration = 0
        for name, new_bytes in new.items():
            for cut in range(len(new_bytes) + 1):
                work = tmp_path / "work"
                if work.exists():
                    shutil.rmtree(work)
                shutil.copytree(directory, work)
                # The crash: a torn temp sibling, original intact.
                (work / (name + TMP_SUFFIX)).write_bytes(new_bytes[:cut])
                # Nothing versioned sees the temp file — the directory
                # is still wholly old.
                assert session_versions(work)["state"] == 1
                assert self._artifact_bytes(work) == old
                # Rerunning the migration sweeps the leftover and
                # finishes the job.
                result = migrate_session_dir(work)
                assert result["steps"] == ["v1->v2"]
                assert self._artifact_bytes(work) == new
                assert not list(work.glob("*" + TMP_SUFFIX))
                if iteration % 97 == 0:
                    recovered = recover_session_dir(work)
                    assert recovered.received == expected
                    _assert_report_matches_batch(
                        report_to_dict(recovered.engine.report()), trace
                    )
                iteration += 1

    def test_enospc_mid_migration_never_commits_a_hybrid(
        self, tmp_path, v1_session
    ):
        directory, trace = v1_session
        old = self._artifact_bytes(directory)
        done = tmp_path / "done"
        shutil.copytree(directory, done)
        migrate_session_dir(done)
        new = self._artifact_bytes(done)
        total = sum(len(b) for b in new.values())
        expected = len(trace.events)

        for budget in range(1, total + 1, 23):
            work = tmp_path / "work"
            if work.exists():
                shutil.rmtree(work)
            shutil.copytree(directory, work)
            hostile = FaultFS(
                enospc_after_bytes=budget, partial_writes=budget % 2 == 0
            )
            try:
                migrate_session_dir(work, fs=hostile)
            except OSError:
                pass
            # However far the rewrite got, every artifact is exactly
            # one generation — never a byte-mixed hybrid.
            for name, data in self._artifact_bytes(work).items():
                assert data == old[name] or data == new[name], (
                    f"budget={budget}: {name} is a hybrid"
                )
            recovered = recover_session_dir(work)
            assert recovered.received == expected
            # Clean rerun completes regardless of where the fault hit.
            migrate_session_dir(work)
            assert self._artifact_bytes(work) == new
        final = recover_session_dir(work)
        _assert_report_matches_batch(report_to_dict(final.engine.report()), trace)


# -- park / resume (the single-daemon half of a rolling upgrade) ---------


class TestParkAndResume:
    def test_parked_daemon_resumes_at_exact_cursor(self, tmp_path):
        trace = generate_trace(321)
        state = tmp_path / "state"
        half = (len(trace.events) // 2 // 64) * 64

        daemon = ProfilingDaemon(port=0, state_dir=state)
        try:
            client = ServiceClient(daemon.address, session_id="parked")
            client.register_instances([i.registration() for i in trace.instances])
            for offset, raws in _windows(trace.events[:half], 64):
                client.send_events(offset, raws)
            client.close()
        finally:
            daemon.park()

        # The parked state migrates as a no-op (already current) and
        # carries the cursor.
        assert migrate_state_dir(state)["migrated"] == 0
        assert recover_session_dir(state / "parked").received == half

        with ProfilingDaemon(port=0, state_dir=state) as daemon2:
            client = ServiceClient(daemon2.address, session_id="parked")
            assert client.resumed
            assert client.server_received == half
            _ship(client, trace, start=client.server_received)
            ack = client.fin()
            client.close()
            assert ack["received"] == len(trace.events)
            _assert_report_matches_batch(ack["report"], trace)


# -- fleet rolling upgrade -----------------------------------------------


@pytest.mark.slow
class TestRollingUpgrade:
    def test_rolling_upgrade_cycles_every_worker_without_loss(self, tmp_path):
        with FleetSupervisor(
            2, tmp_path / "fleet", heartbeat_timeout=60.0, startup_timeout=60.0
        ) as sup:
            trace = generate_trace(4242)
            client = ServiceClient(sup.address, session_id="pre-upgrade")
            _ship(client, trace)
            ack = client.fin()
            client.close()
            assert ack["received"] == len(trace.events)
            _assert_report_matches_batch(ack["report"], trace)

            results = sup.rolling_upgrade(drain_timeout=15.0)
            assert len(results) == 2
            assert all(r["restarted"] for r in results)
            assert all(r["migrated"] is not None for r in results)
            assert sup.upgrades == 2

            stats = sup.stats()
            assert stats["upgrades"] == 2
            for worker in stats["workers"]:
                assert worker["build"]["proto"] == PROTOCOL_VERSION
            # Over the wire too — `dsspy fleet upgrade --address` polls
            # the router's STATS to watch the upgrade converge.
            assert fetch_stats(sup.address)["upgrades"] == 2

            # The upgraded fleet still takes new work.
            trace2 = generate_trace(4243)
            client2 = ServiceClient(sup.address, session_id="post-upgrade")
            _ship(client2, trace2)
            ack2 = client2.fin()
            client2.close()
            assert ack2["received"] == len(trace2.events)
            _assert_report_matches_batch(ack2["report"], trace2)

    def test_draining_shard_refuses_with_retry_after(self, tmp_path):
        with FleetSupervisor(
            2, tmp_path / "fleet", heartbeat_timeout=60.0, startup_timeout=60.0
        ) as sup:
            session_id = next(
                f"drain-{i}" for i in range(1000) if shard_for(f"drain-{i}", 2) == 0
            )
            sup.router.set_draining(0, True)
            try:
                with pytest.raises(RetryAfterError):
                    ServiceClient(sup.address, session_id=session_id)
            finally:
                sup.router.set_draining(0, False)
            client = ServiceClient(sup.address, session_id=session_id)
            client.close()
            assert sup.stats()["drain_refusals"] >= 1


# -- chaos: the upgrade fault --------------------------------------------


class TestChaosUpgradeFault:
    def test_upgrade_fault_holds_every_invariant(self, tmp_path):
        soak = ChaosSoak(trace_kwargs=SMALL, upgrade_rate=1.0)
        with soak:
            summary = soak.run(
                trials=2, base_seed=8800, ledger_path=tmp_path / "ledger.jsonl"
            )
        assert summary["ok"], summary["seeds_with_violations"]
        assert summary["upgrades"] == 2
        records = [
            json.loads(line)
            for line in (tmp_path / "ledger.jsonl").read_text().splitlines()
        ]
        assert all(r["upgrades"] == 1 for r in records)
