"""Crash safety: write-ahead journal, checkpointed recovery, overload
protection, client backoff, and the stale-socket guard.

The contract under test is the PR's headline: a daemon killed without
warning (SIGKILL semantics — no flush, no goodbye) must, after a
restart on the same state directory, produce the *exact* report a
crash-free run would have produced.  The torn-write sweep is
property-style: a journal segment truncated at **every** byte boundary
of its final record must recover cleanly to a window-boundary prefix.
"""

from __future__ import annotations

import json
import random
import socket
import struct
import time

import pytest

from repro.events.spill import read_spill_raw
from repro.service import (
    AdmissionController,
    AdmissionStage,
    BackoffPolicy,
    ProfilingDaemon,
    RemoteChannel,
    RetryAfterError,
    SessionJournal,
    StreamingUseCaseEngine,
    engine_from_dict,
    engine_to_dict,
    recover_session_dir,
    scan_state_dir,
)
from repro.service.client import ServiceClient
from repro.service.daemon import _remove_stale_unix_socket
from repro.service.protocol import MessageType, ProtocolError
from repro.service.session import RateMeter, Session
from repro.testing import (
    FAULT_KINDS,
    DifferentialOracle,
    SimClock,
    generate_trace,
)
from repro.testing.oracle import (
    diff_summaries,
    run_batch_path,
    run_daemon_path,
    run_streaming_path,
    summarize_report,
)
from repro.usecases.json_export import report_to_dict

_REC_HEADER = struct.Struct("<BII")


def _windows(events, window=64):
    for offset in range(0, len(events), window):
        yield offset, events[offset : offset + window]


def _session_with_journal(tmp_path, session_id="s1", **kwargs):
    journal = SessionJournal(tmp_path / session_id)
    return Session(session_id, StreamingUseCaseEngine(), journal=journal, **kwargs)


def _ingest_trace(session, trace, window=64):
    for inst in trace.instances:
        session.register(inst.instance_id, inst.kind, None, inst.label)
    for start, raws in _windows(trace.events, window):
        session.ingest(start, raws)


def _wait_for(cond, timeout=10.0, interval=0.01):
    deadline = time.monotonic() + timeout
    while not cond():
        if time.monotonic() >= deadline:
            raise AssertionError("condition not met in time")
        time.sleep(interval)


class TestJournalRoundtrip:
    def test_event_windows_replay_in_order(self, tmp_path):
        trace = generate_trace(0)
        with SessionJournal(tmp_path / "j") as journal:
            for start, raws in _windows(trace.events, 50):
                journal.append_events(start, raws)
            replayed = []
            for _start, raws in journal.iter_event_windows(0):
                replayed.extend(raws)
        assert replayed == trace.events

    def test_replay_from_cursor_trims_overlap(self, tmp_path):
        trace = generate_trace(1)
        with SessionJournal(tmp_path / "j") as journal:
            for start, raws in _windows(trace.events, 64):
                journal.append_events(start, raws)
            # A cursor mid-window: the replay must start exactly there.
            cursor = 70
            replayed = []
            for start, raws in journal.iter_event_windows(cursor):
                assert start >= cursor
                replayed.extend(raws)
        assert replayed == trace.events[cursor:]

    def test_retransmit_overlap_past_cursor_is_trimmed_not_refolded(self, tmp_path):
        # A window that landed twice around a crash (retransmit overlap
        # — a legal journal state) must yield each stream index exactly
        # once.  Before the monotone-cursor fix the second record was
        # yielded whole, double-folding 32 events into the engine: the
        # chaos soak caught that as a report divergence.
        trace = generate_trace(3)  # 556 events
        with SessionJournal(tmp_path / "j") as journal:
            journal.append_events(0, trace.events[0:64])
            journal.append_events(32, trace.events[32:128])
            replayed = []
            for start, raws in journal.iter_event_windows(0):
                assert start == len(replayed)
                replayed.extend(raws)
        assert replayed == trace.events[:128]

    def test_fully_covered_duplicate_window_is_skipped(self, tmp_path):
        trace = generate_trace(3)  # 556 events
        with SessionJournal(tmp_path / "j") as journal:
            journal.append_events(0, trace.events[0:64])
            journal.append_events(64, trace.events[64:128])
            # Duplicate entirely behind the cursor by the time the
            # reader reaches it.
            journal.append_events(32, trace.events[32:96])
            journal.append_events(128, trace.events[128:160])
            replayed = []
            for start, raws in journal.iter_event_windows(0):
                assert start == len(replayed)
                replayed.extend(raws)
        assert replayed == trace.events[:160]

    def test_cursor_gap_recovery_keeps_applied_equal_to_received(self, tmp_path):
        # A gap means events exist on no disk — recovery must note the
        # loss and jump its cursor, not leave ``applied`` lagging
        # ``received``: a resurrected session with a phantom backlog
        # re-drains (and double-folds) journal events its engine
        # already absorbed during replay.
        trace = generate_trace(3)  # 556 events
        with SessionJournal(tmp_path / "j") as journal:
            journal.append_events(0, trace.events[0:64])
            journal.append_events(96, trace.events[96:160])  # 64..96 lost
        recovered = recover_session_dir(tmp_path / "j")
        assert recovered.received == 160
        assert recovered.applied == recovered.received
        assert any("cursor gap 64..96" in n for n in recovered.notes)

    def test_segments_roll_and_still_replay_completely(self, tmp_path):
        trace = generate_trace(3)  # 556 events
        journal = SessionJournal(tmp_path / "j", segment_max_bytes=2000)
        for start, raws in _windows(trace.events, 16):
            journal.append_events(start, raws)
        segments = sorted((tmp_path / "j").glob("journal-*.wal"))
        assert len(segments) > 1, "segment_max_bytes=2000 must roll"
        replayed = [r for _s, raws in journal.iter_event_windows(0) for r in raws]
        journal.close()
        assert replayed == trace.events

    def test_reopening_a_directory_continues_the_segment_sequence(self, tmp_path):
        trace = generate_trace(5)  # 741 events
        half = len(trace.events) // 2
        j1 = SessionJournal(tmp_path / "j", segment_max_bytes=1500)
        for start, raws in _windows(trace.events[:half], 16):
            j1.append_events(start, raws)
        j1.close()
        j2 = SessionJournal(tmp_path / "j", segment_max_bytes=1500)
        for start, raws in _windows(trace.events[half:], 16):
            j2.append_events(half + start, raws)
        replayed = [r for _s, raws in j2.iter_event_windows(0) for r in raws]
        j2.close()
        assert replayed == trace.events


class TestTornWriteRecovery:
    """Satellite: truncation at every byte boundary of the final record
    recovers cleanly — the torn tail is dropped, never misparsed."""

    def test_every_truncation_point_of_the_last_record_recovers(self, tmp_path):
        trace = generate_trace(7)  # 214 events: 13 full windows + 6
        window = 16
        session = _session_with_journal(tmp_path, "torn")
        _ingest_trace(session, trace, window)
        session.abandon()
        directory = tmp_path / "torn"
        segment = sorted(directory.glob("journal-*.wal"))[-1]
        blob = segment.read_bytes()
        # Find the final record's start by walking the valid frames.
        offset = 8  # magic
        last_start = offset
        while offset + _REC_HEADER.size <= len(blob):
            _t, length, _crc = _REC_HEADER.unpack_from(blob, offset)
            if offset + _REC_HEADER.size + length > len(blob):
                break
            last_start = offset
            offset += _REC_HEADER.size + length
        assert offset == len(blob), "fixture segment must end on a whole record"
        total = len(trace.events)
        expected_by_prefix = {}

        def expected_summary(received):
            if received not in expected_by_prefix:
                prefix = generate_trace(7)
                prefix.events = trace.events[:received]
                expected_by_prefix[received] = summarize_report(
                    run_streaming_path(prefix, window=window)
                )
            return expected_by_prefix[received]

        seen_short = 0
        for cut in range(last_start, len(blob)):
            segment.write_bytes(blob[:cut])
            recovered = recover_session_dir(directory)
            assert recovered.received <= total
            assert recovered.received % window == 0 or recovered.received == total
            if recovered.received < total:
                seen_short += 1
                assert recovered.truncated_bytes == cut - last_start
            got = summarize_report(report_to_dict(recovered.engine.report()))
            assert not diff_summaries(
                "expected", expected_summary(recovered.received), "recovered", got
            )
        assert seen_short == len(blob) - last_start, (
            "every cut inside the final record must shorten the recovery"
        )

    def test_corrupted_crc_truncates_from_the_bad_record(self, tmp_path):
        trace = generate_trace(6)  # 1056 events, a multiple of 32
        session = _session_with_journal(tmp_path, "crc")
        _ingest_trace(session, trace, 32)
        session.abandon()
        directory = tmp_path / "crc"
        segment = sorted(directory.glob("journal-*.wal"))[-1]
        blob = bytearray(segment.read_bytes())
        blob[-1] ^= 0xFF  # damage a payload byte of the final record
        segment.write_bytes(bytes(blob))
        recovered = recover_session_dir(directory)
        assert recovered.received == len(trace.events) - 32
        assert recovered.truncated_bytes > 0


class TestEngineSerialization:
    def test_roundtrip_mid_stream_converges_identically(self):
        trace = generate_trace(7)
        half = len(trace.events) // 2
        reference = StreamingUseCaseEngine()
        resumed_src = StreamingUseCaseEngine()
        for inst in trace.instances:
            for engine in (reference, resumed_src):
                engine.register_instance(inst.instance_id, inst.kind, label=inst.label)
        for _start, raws in _windows(trace.events[:half], 32):
            reference.feed_window(raws)
            resumed_src.feed_window(raws)
        resumed = engine_from_dict(engine_to_dict(resumed_src))
        for _start, raws in _windows(trace.events[half:], 32):
            reference.feed_window(raws)
            resumed.feed_window(raws)
        assert summarize_report(report_to_dict(resumed.report())) == (
            summarize_report(report_to_dict(reference.report()))
        )

    def test_serialization_is_json_safe(self):
        trace = generate_trace(8)
        engine = StreamingUseCaseEngine()
        for inst in trace.instances:
            engine.register_instance(inst.instance_id, inst.kind, label=inst.label)
        for _start, raws in _windows(trace.events, 64):
            engine.feed_window(raws)
        dumped = json.loads(json.dumps(engine_to_dict(engine)))
        assert summarize_report(report_to_dict(engine_from_dict(dumped).report())) == (
            summarize_report(report_to_dict(engine.report()))
        )


class TestCheckpointedRecovery:
    def test_crashed_session_recovers_to_the_batch_report(self, tmp_path):
        trace = generate_trace(9)  # 1015 events
        session = _session_with_journal(tmp_path, "ck", checkpoint_every=100)
        _ingest_trace(session, trace, 32)
        assert session.journal.checkpoints > 0, "fixture must exercise checkpoints"
        session.abandon()  # crash: no finish(), no flush-to-report
        recovered = recover_session_dir(tmp_path / "ck")
        assert recovered.checkpoint_loaded
        assert recovered.received == len(trace.events)
        assert recovered.events_replayed < len(trace.events), (
            "checkpoint must shorten the replay"
        )
        got = summarize_report(report_to_dict(recovered.engine.report()))
        assert not diff_summaries(
            "batch", summarize_report(run_batch_path(trace)), "recovered", got
        )

    def test_unreadable_checkpoint_degrades_gracefully(self, tmp_path):
        trace = generate_trace(10)
        session = _session_with_journal(tmp_path, "bad", checkpoint_every=100)
        _ingest_trace(session, trace, 32)
        assert session.journal.checkpoints > 0
        session.abandon()
        directory = tmp_path / "bad"
        ckpt = directory / "checkpoint.json"
        assert ckpt.exists()
        ckpt.write_text("{ not json")
        # Segments behind the checkpoint were pruned, so replay can only
        # reach what the surviving segments hold — the recovery must
        # come back *without raising* and say what happened.
        recovered = recover_session_dir(directory)
        assert not recovered.checkpoint_loaded
        assert recovered.notes, "a broken checkpoint must be surfaced"
        assert recovered.received <= len(trace.events)

    def test_finished_journal_recovers_as_finished(self, tmp_path):
        trace = generate_trace(11)
        session = _session_with_journal(tmp_path, "fin")
        for inst in trace.instances:
            session.register(inst.instance_id, inst.kind, None, inst.label)
        for start, raws in _windows(trace.events, 64):
            session.ingest(start, raws)
        session.finish()
        recovered = recover_session_dir(tmp_path / "fin")
        assert recovered.finished


class TestDaemonCrashRecovery:
    def test_kill_restart_resume_equals_batch(self, tmp_path):
        trace = generate_trace(12)  # 654 events
        half = (len(trace.events) // 2 // 64) * 64
        state = tmp_path / "state"
        daemon = ProfilingDaemon(port=0, state_dir=state, checkpoint_every=128)
        client = ServiceClient(daemon.address)
        session_id = client.session_id
        client.register_instances([i.registration() for i in trace.instances])
        client.send_events(0, trace.events[:half])
        ack = client.heartbeat()  # the sync point: send_events is fire-and-forget
        assert ack["received"] == half
        client.close()
        daemon.crash()  # SIGKILL semantics: no flush, no reports

        daemon = ProfilingDaemon(port=0, state_dir=state, checkpoint_every=128)
        try:
            assert daemon.recovered_sessions == [session_id]
            report = run_daemon_path(trace, daemon.address, session_id=session_id)
        finally:
            daemon.close()
        assert not diff_summaries(
            "batch",
            summarize_report(run_batch_path(trace)),
            "post-crash",
            summarize_report(report),
        )
        assert scan_state_dir(state) == [], "a finished session must leave no journal"

    def test_clean_close_leaves_no_state_behind(self, tmp_path):
        trace = generate_trace(13)
        state = tmp_path / "state"
        with ProfilingDaemon(port=0, state_dir=state) as daemon:
            client = ServiceClient(daemon.address)
            client.register_instances([i.registration() for i in trace.instances])
            client.send_events(0, trace.events)
            client.fin()
            client.close()
        assert scan_state_dir(state) == []


class TestAdmissionController:
    def _fake_session(self, clock):
        class _S:
            rate = RateMeter(clock=clock)

        return _S()

    def test_ladder_rises_with_load(self):
        clock = SimClock()
        controller = AdmissionController(session_events_per_sec=100.0, clock=clock)
        session = self._fake_session(clock)
        # rate() floors the span at 1 s, so at t=0 the running total IS
        # the measured rate; each step pushes it over the next threshold.
        for ticks, expected in (
            (50, AdmissionStage.NORMAL),  # 50/s of a 100/s quota
            (60, AdmissionStage.DECIMATE),  # 110/s -> load 1.1
            (150, AdmissionStage.JOURNAL),  # 260/s -> load 2.6
            (200, AdmissionStage.SHED),  # 460/s -> load 4.6
        ):
            session.rate.tick(ticks)
            assert controller.admit(session, ticks) == expected

    def test_load_subsides_with_time(self):
        clock = SimClock()
        controller = AdmissionController(session_events_per_sec=100.0, clock=clock)
        session = self._fake_session(clock)
        session.rate.tick(500)
        assert controller.admit(session, 500) == AdmissionStage.SHED
        clock.advance(30.0)  # the burst ages out of the sliding window
        assert controller.admit(session, 0) == AdmissionStage.NORMAL

    def test_global_quota_protects_against_aggregate_load(self):
        clock = SimClock()
        controller = AdmissionController(
            global_events_per_sec=10.0, session_events_per_sec=1000.0, clock=clock
        )
        quiet = self._fake_session(clock)
        # The *global* meter ticks inside admit: 45 events at t=0 is
        # 4.5x the 10/s quota even though the session itself is idle.
        assert controller.admit(quiet, 45) == AdmissionStage.SHED
        assert controller.peek() == AdmissionStage.SHED
        stats = controller.stats()
        assert stats["stage"] == "shed"
        assert stats["windows_by_stage"]["shed"] == 1

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            AdmissionController(decimate_at=2.0, journal_at=1.0)

    def test_stage_names(self):
        assert AdmissionStage.name(AdmissionStage.SHED) == "shed"
        assert "unknown" in AdmissionStage.name(42)


class TestSessionDegradation:
    def test_journal_only_stage_defers_then_drains(self, tmp_path):
        trace = generate_trace(14)
        session = _session_with_journal(tmp_path, "defer")
        for inst in trace.instances:
            session.register(inst.instance_id, inst.kind, None, inst.label)
        windows = list(_windows(trace.events, 64))
        mid = len(windows) // 2
        for i, (start, raws) in enumerate(windows):
            stage = AdmissionStage.JOURNAL if i < mid else AdmissionStage.NORMAL
            session.ingest(start, raws, stage=stage)
            if i < mid:
                assert session.deferred > 0, "journal-only must defer analysis"
        assert session.deferred == 0, "pressure drop must drain the backlog"
        report = session.finish()
        assert not diff_summaries(
            "batch",
            summarize_report(run_batch_path(trace)),
            "degraded",
            summarize_report(report),
        )

    def test_backlog_is_drained_by_finish_at_the_latest(self, tmp_path):
        trace = generate_trace(15)
        session = _session_with_journal(tmp_path, "fin-drain")
        for inst in trace.instances:
            session.register(inst.instance_id, inst.kind, None, inst.label)
        for start, raws in _windows(trace.events, 64):
            session.ingest(start, raws, stage=AdmissionStage.JOURNAL)
        assert session.deferred == len(trace.events)
        report = session.finish()
        assert not diff_summaries(
            "batch",
            summarize_report(run_batch_path(trace)),
            "deferred-to-fin",
            summarize_report(report),
        )

    def test_journal_stage_without_journal_decimates_instead(self):
        trace = generate_trace(16)
        session = Session("nj", StreamingUseCaseEngine())
        for inst in trace.instances:
            session.register(inst.instance_id, inst.kind, None, inst.label)
        session.ingest(0, trace.events[:100], stage=AdmissionStage.JOURNAL)
        assert session.deferred == 0, "no journal -> nothing may be deferred"
        assert session.admission_decimated > 0, "degrades to decimation"
        assert session.received == 100


class TestDaemonOverload:
    def test_shed_sends_retry_after_and_breaks_the_connection(self, tmp_path):
        trace = generate_trace(17)
        daemon = ProfilingDaemon(
            port=0,
            state_dir=tmp_path / "state",
            session_max_events_per_sec=1.0,
            retry_after=7.5,
        )
        try:
            client = ServiceClient(daemon.address)
            client.register_instances([i.registration() for i in trace.instances])
            # First window: the session meter has no history -> NORMAL.
            client.send_events(0, trace.events[:64])
            # Second window: ~64/s against a 1/s quota -> far past 4x.
            client.send_events(64, trace.events[64:128])
            with pytest.raises(RetryAfterError) as excinfo:
                client.heartbeat()
            assert excinfo.value.retry_after == 7.5
            client.close()
        finally:
            daemon.close()

    def test_journal_stage_acks_journaled_and_fin_report_is_exact(self, tmp_path):
        trace = generate_trace(18)  # 564 events
        half = len(trace.events) // 2
        # Quota tuned so the second window's burst lands in the
        # journal-only band [2x, 4x): ~282 events over a 1 s floored
        # span against a (half/3)/s quota is a load of ~3.
        daemon = ProfilingDaemon(
            port=0,
            state_dir=tmp_path / "state",
            session_max_events_per_sec=half / 3.0,
        )
        try:
            client = ServiceClient(daemon.address)
            client.register_instances([i.registration() for i in trace.instances])
            client.send_events(0, trace.events[:half])
            assert client.heartbeat()["deferred"] == 0
            client.send_events(half, trace.events[half:])
            ack = client.heartbeat()
            assert ack["deferred"] > 0, "the journal-only stage must engage"
            assert ack["received"] == len(trace.events), "deferred events still ack"
            fin = client.fin()
            client.close()
        finally:
            daemon.close()
        assert fin["received"] == len(trace.events)
        assert not diff_summaries(
            "batch",
            summarize_report(run_batch_path(trace)),
            "overloaded",
            summarize_report(fin["report"]),
        )

    def test_shedding_daemon_turns_away_new_sessions(self):
        clock = SimClock()
        controller = AdmissionController(global_events_per_sec=1.0, clock=clock)
        daemon = ProfilingDaemon(port=0, admission=controller, clock=clock)
        try:
            hot = ServiceClient(daemon.address)
            hot.send_events(0, generate_trace(17).events[:64])
            with pytest.raises(RetryAfterError):
                hot.heartbeat()  # the 64-event burst tripped the global quota
            with pytest.raises(RetryAfterError):
                ServiceClient(daemon.address)  # HELLO refused while shedding
            hot.close()
        finally:
            daemon.close()


class TestBackoffPolicy:
    def test_exponential_growth_to_the_cap(self):
        policy = BackoffPolicy(base=0.1, cap=1.0, multiplier=2.0, jitter=0.0)
        delays = [policy.note_failure() for _ in range(6)]
        assert delays == [
            pytest.approx(0.1),
            pytest.approx(0.2),
            pytest.approx(0.4),
            pytest.approx(0.8),
            pytest.approx(1.0),
            pytest.approx(1.0),
        ]

    def test_jitter_stretches_but_never_shrinks(self):
        policy = BackoffPolicy(
            base=0.1, cap=10.0, multiplier=2.0, jitter=0.5, rng=random.Random(0)
        )
        for n in range(1, 6):
            delay = policy.note_failure()
            floor = 0.1 * 2.0 ** (n - 1)
            assert floor <= delay <= floor * 1.5

    def test_server_retry_after_overrides_a_short_delay(self):
        policy = BackoffPolicy(base=0.01, cap=5.0, jitter=0.0)
        assert policy.note_failure(min_delay=3.0) == pytest.approx(3.0)

    def test_success_resets_the_ladder(self):
        clock = SimClock()
        policy = BackoffPolicy(base=1.0, cap=8.0, jitter=0.0, clock=clock)
        policy.note_failure()
        policy.note_failure()
        assert not policy.ready()
        assert policy.down_for() == pytest.approx(2.0)
        policy.note_success()
        assert policy.ready()
        assert policy.failures == 0
        policy.note_failure()
        assert policy.down_for() == pytest.approx(1.0)

    def test_ready_flips_when_the_clock_passes_the_deadline(self):
        clock = SimClock()
        policy = BackoffPolicy(base=1.0, jitter=0.0, clock=clock)
        policy.note_failure()
        assert not policy.ready()
        clock.advance(1.01)
        assert policy.ready()

    def test_parameter_validation(self):
        for kwargs in (
            {"base": 0.0},
            {"base": 2.0, "cap": 1.0},
            {"multiplier": 0.5},
            {"jitter": 1.5},
        ):
            with pytest.raises(ValueError):
                BackoffPolicy(**kwargs)


class TestGiveUpFallbackSpill:
    def test_unshipped_tail_spills_locally_after_give_up(self, tmp_path):
        raws = generate_trace(20).events  # 232 events
        spill = tmp_path / "leftover.bin"
        daemon = ProfilingDaemon(port=0)
        channel = RemoteChannel(
            daemon.address,
            batch_size=1,  # ship every event as it is produced
            heartbeat_interval=0.05,  # the heartbeat detects the dead link
            backoff=BackoffPolicy(base=0.01, cap=0.02, jitter=0.0),
            give_up_after=0.0,  # give up on the first confirmed failure
            fallback_spill=spill,
        )
        half = len(raws) // 2
        produce = channel.producer()
        for raw in raws[:half]:
            produce(raw)
        _wait_for(lambda: channel._shipped == half)
        daemon.crash()  # daemon dies and never comes back
        _wait_for(lambda: channel.gave_up)  # heartbeat read fails -> give up
        for raw in raws[half:]:
            produce(raw)
        master = channel.drain()
        assert master == raws, "local capture must be complete regardless"
        assert channel.spill_path == spill
        assert read_spill_raw(spill) == raws[half:]
        assert channel.final_ack is None

    def test_no_spill_without_give_up(self):
        raws = generate_trace(21).events
        with ProfilingDaemon(port=0) as daemon:
            channel = RemoteChannel(
                daemon.address, batch_size=64, heartbeat_interval=3600.0
            )
            produce = channel.producer()
            for raw in raws:
                produce(raw)
            channel.drain()
            assert channel.spill_path is None
            assert not channel.gave_up
            assert channel.final_ack is not None
            assert channel.final_ack["received"] == len(raws)


class TestStaleUnixSocket:
    def test_dead_socket_file_is_removed_and_reused(self, tmp_path):
        path = tmp_path / "dsspy.sock"
        orphan = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        orphan.bind(str(path))
        orphan.close()  # no listener left behind: the file is stale
        assert path.exists()
        with ProfilingDaemon(unix_socket=path) as daemon:
            client = ServiceClient(daemon.address)
            client.close()
        assert not path.exists()

    def test_live_socket_is_refused_not_stolen(self, tmp_path):
        path = tmp_path / "dsspy.sock"
        with ProfilingDaemon(unix_socket=path):
            with pytest.raises(OSError, match="live daemon"):
                _remove_stale_unix_socket(path)
            with pytest.raises(OSError):
                ProfilingDaemon(unix_socket=path)

    def test_non_socket_file_is_refused(self, tmp_path):
        path = tmp_path / "dsspy.sock"
        path.write_text("precious data")
        with pytest.raises(OSError, match="not a socket"):
            _remove_stale_unix_socket(path)
        assert path.read_text() == "precious data"

    def test_missing_file_is_fine(self, tmp_path):
        _remove_stale_unix_socket(tmp_path / "never-existed.sock")


class TestProtocolAdditions:
    def test_new_message_type_names(self):
        assert MessageType.name(MessageType.RETRY_AFTER) == "RETRY_AFTER"
        assert MessageType.name(MessageType.JOURNALED) == "JOURNALED"

    def test_retry_after_error_is_a_protocol_error(self):
        err = RetryAfterError(2.5)
        assert isinstance(err, ProtocolError)
        assert err.retry_after == 2.5
        assert "2.5" in str(err)


class TestOracleKillFault:
    def test_kill_only_trials_converge(self):
        with DifferentialOracle(
            fault_intensity=0.5, fault_kinds=("kill",), max_faults=4
        ) as oracle:
            results = oracle.run_trials(8, base_seed=0)
            assert all(r.ok for r in results), "\n".join(
                r.describe() for r in results if not r.ok
            )
            assert oracle.daemon_kills > 0, "the kill fault must actually fire"

    def test_kill_is_part_of_the_default_vocabulary(self):
        assert "kill" in FAULT_KINDS
        with DifferentialOracle(fault_intensity=0.4, max_faults=6) as oracle:
            results = oracle.run_trials(10, base_seed=50)
        assert all(r.ok for r in results), "\n".join(
            r.describe() for r in results if not r.ok
        )


class TestRecoverCLI:
    def _crashed_state(self, tmp_path, seed=22):
        trace = generate_trace(seed)
        daemon = ProfilingDaemon(port=0, state_dir=tmp_path / "state")
        client = ServiceClient(daemon.address)
        session_id = client.session_id
        client.register_instances([i.registration() for i in trace.instances])
        client.send_events(0, trace.events)
        client.heartbeat()
        client.close()
        daemon.crash()
        return trace, session_id

    def test_recover_prints_the_interrupted_sessions(self, tmp_path, capsys):
        from repro.cli import main

        trace, session_id = self._crashed_state(tmp_path)
        assert main(["recover", str(tmp_path / "state")]) == 0
        out = capsys.readouterr().out
        assert session_id in out
        assert f"{len(trace.events)} events journaled" in out

    def test_recover_json_report_dir_and_purge(self, tmp_path, capsys):
        from repro.cli import main

        trace, session_id = self._crashed_state(tmp_path)
        reports = tmp_path / "reports"
        assert (
            main(
                [
                    "recover",
                    str(tmp_path / "state"),
                    "--json",
                    "--report-dir",
                    str(reports),
                ]
            )
            == 0
        )
        payload = json.loads(capsys.readouterr().out)
        assert payload[0]["session"] == session_id
        assert payload[0]["received"] == len(trace.events)
        assert (reports / f"{session_id}.json").exists()

        assert main(["recover", str(tmp_path / "state"), "--purge"]) == 0
        assert "purged 1 session journal(s)" in capsys.readouterr().out
        assert scan_state_dir(tmp_path / "state") == []

    def test_recover_on_empty_dir_is_a_noop(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["recover", str(tmp_path)]) == 0
        assert "no recoverable sessions" in capsys.readouterr().out
