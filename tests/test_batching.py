"""Tests for the low-overhead recording pipeline: batching channel,
sampling policies, spill format, and the CI overhead gate."""

from __future__ import annotations

import json
import os
import subprocess
import sys
import threading
from pathlib import Path

import pytest

from repro.events import (
    AccessKind,
    AsyncChannel,
    BatchingChannel,
    Burst,
    Decimate,
    EventCollector,
    OperationKind,
    ProcessChannel,
    RecordAll,
    SpillWriter,
    StructureKind,
    collecting,
    iter_spill_events,
    make_channel,
    parse_sampling,
    read_spill_raw,
)
from repro.structures import TrackedList
from repro.usecases import UseCaseEngine
from repro.usecases.rules import PARALLEL_RULES
from repro.workloads import EVALUATION_WORKLOADS

REPO_ROOT = Path(__file__).resolve().parent.parent


def raw(instance_id: int, position: int, thread_id: int = 0):
    return (
        instance_id,
        int(OperationKind.READ),
        int(AccessKind.READ),
        position,
        1000,
        thread_id,
        None,
    )


class TestBatchingChannel:
    def test_flush_on_drain_preserves_order(self):
        channel = BatchingChannel(batch_size=64)
        for i in range(10_000):
            channel.post(raw(1, i))
        events = channel.drain()
        assert [r[3] for r in events] == list(range(10_000))

    def test_drain_is_idempotent_and_closes(self):
        channel = BatchingChannel()
        channel.post(raw(1, 0))
        assert len(channel.drain()) == 1
        assert len(channel.drain()) == 1
        with pytest.raises(RuntimeError, match="drained"):
            channel.post(raw(1, 1))

    def test_snapshot_sees_everything_posted_before_it(self):
        channel = BatchingChannel()
        produce = channel.producer()
        for i in range(5_000):
            produce(raw(1, i))
        snap = channel.snapshot()
        assert len(snap) == 5_000
        for i in range(5_000, 6_000):
            produce(raw(1, i))
        assert len(channel.drain()) == 6_000

    def test_multithread_interleaving_keeps_per_thread_order(self):
        channel = BatchingChannel(flush_interval=0.001)

        def worker(tid: int, count: int) -> None:
            produce = channel.producer()
            for i in range(count):
                produce(raw(tid, i, thread_id=tid))

        threads = [
            threading.Thread(target=worker, args=(tid, 5_000)) for tid in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        events = channel.drain()
        assert len(events) == 20_000
        for tid in range(4):
            positions = [r[3] for r in events if r[0] == tid]
            assert positions == list(range(5_000))

    def test_drop_policy_bounds_memory_and_counts_drops(self):
        channel = BatchingChannel(
            max_buffered=1_000, policy="drop", flush_interval=0.001
        )
        produce = channel.producer()
        for i in range(20_000):
            produce(raw(1, i))
        events = channel.drain()
        assert len(events) == 1_000
        assert channel.dropped == 19_000
        assert channel.pending == 20_000

    def test_block_policy_raises_when_pipeline_is_wedged(self):
        channel = BatchingChannel(
            max_buffered=100,
            policy="block",
            flush_interval=0.001,
            block_timeout=0.2,
        )
        produce = channel.producer()
        with pytest.raises(RuntimeError, match="backpressure"):
            for i in range(100_000):
                produce(raw(1, i))
        channel.drain()

    def test_constructor_validation(self):
        with pytest.raises(ValueError, match="batch_size"):
            BatchingChannel(batch_size=0)
        with pytest.raises(ValueError, match="policy"):
            BatchingChannel(policy="panic")

    def test_collector_integration(self):
        with collecting(channel=BatchingChannel()) as session:
            xs = TrackedList(label="batched")
            for i in range(500):
                xs.append(i)
            for i in range(500):
                _ = xs[i]
        profile = session.profiles_by_label()["batched"]
        # 500 appends + 500 reads + the construction event
        assert len(profile) == 1_001

    def test_make_channel_factory(self):
        assert isinstance(make_channel("sync"), type(make_channel("sync")))
        assert isinstance(make_channel("batch"), BatchingChannel)
        assert isinstance(make_channel("async"), AsyncChannel)
        with pytest.raises(ValueError, match="unknown channel"):
            make_channel("teleport")


class TestSpill:
    def test_spill_roundtrip_equals_in_memory_capture(self, tmp_path):
        events = [raw(7, i) for i in range(20_000)]
        memory = BatchingChannel()
        spilled = BatchingChannel(spill=tmp_path / "capture.spill")
        for channel in (memory, spilled):
            produce = channel.producer()
            for r in events:
                produce(r)
        assert spilled.drain() == memory.drain() == events

    def test_spill_preserves_none_position_and_wall_time(self, tmp_path):
        path = tmp_path / "x.spill"
        rows = [
            (1, int(OperationKind.CLEAR), int(AccessKind.WRITE), None, 0, 0, None),
            (2, int(OperationKind.READ), int(AccessKind.READ), 5, 10, 1, 0.25),
        ]
        with SpillWriter(path) as writer:
            writer.write_batch(rows)
        assert read_spill_raw(path) == rows

    def test_spill_reader_rehydrates_access_events(self, tmp_path):
        path = tmp_path / "x.spill"
        with SpillWriter(path) as writer:
            writer.write_batch([raw(3, i) for i in range(10)])
        events = list(iter_spill_events(path))
        assert [e.position for e in events] == list(range(10))
        assert [e.seq for e in events] == list(range(10))
        assert events[0].op is OperationKind.READ

    def test_spill_reader_tolerates_truncated_tail(self, tmp_path):
        path = tmp_path / "x.spill"
        with SpillWriter(path) as writer:
            writer.write_batch([raw(1, i) for i in range(5)])
        data = path.read_bytes()
        path.write_bytes(data[:-7])
        assert len(read_spill_raw(path)) == 4

    def test_cli_spill_requires_batch_channel(self, tmp_path):
        from repro.cli import main

        program = tmp_path / "prog.py"
        program.write_text("xs = [i for i in range(10)]\n", encoding="utf-8")
        rc = main(
            ["analyze", str(program), "--spill", str(tmp_path / "x.spill")]
        )
        assert rc == 2


class TestSamplingPolicies:
    def test_decimate_rate_is_exactly_one_in_n(self):
        policy = Decimate(10)
        admitted = sum(policy.admit(1) for _ in range(10_000))
        assert admitted == 1_000

    def test_decimate_counts_per_instance(self):
        policy = Decimate(10)
        for _ in range(100):
            policy.admit(1)
        assert sum(policy.admit(2) for _ in range(10)) == 1

    def test_decimate_jitter_breaks_phase_alignment(self):
        # A period-2 op stream strided 1-in-10 would capture only one
        # phase; jittered decimation must admit both parities.
        policy = Decimate(10)
        parities = {i % 2 for i in range(10_000) if policy.admit(1)}
        assert parities == {0, 1}

    def test_burst_keeps_first_k_exactly_then_decimates(self):
        policy = Burst(100, 10)
        flags = [policy.admit(1) for _ in range(1_100)]
        assert all(flags[:100])
        assert sum(flags[100:]) == 100
        assert not policy.is_exact(1)
        assert policy.exact_prefix(1) == 100

    def test_burst_small_instances_are_exact(self):
        policy = Burst(100, 10)
        assert all(policy.admit(5) for _ in range(100))
        assert policy.is_exact(5)
        assert policy.exact_prefix(5) == 0

    def test_parse_sampling_specs(self):
        assert isinstance(parse_sampling("all"), RecordAll)
        assert parse_sampling("1/10").n == 10
        assert parse_sampling("1:4").n == 4
        burst = parse_sampling("burst:1000/10")
        assert (burst.keep, burst.n) == (1000, 10)
        for bad in ("2/10", "sometimes", "burst:", "1/0"):
            with pytest.raises(ValueError, match="sampling spec"):
                parse_sampling(bad)

    def test_seeded_decimate_is_bit_reproducible(self):
        def pattern(policy):
            return [policy.admit(1) for _ in range(2_000)]

        assert pattern(Decimate(10, seed=7)) == pattern(Decimate(10, seed=7))
        assert pattern(Decimate(10, seed=7)) != pattern(Decimate(10, seed=8))
        # No seed reproduces the historic unseeded jitter exactly.
        assert pattern(Decimate(10)) == pattern(Decimate(10, seed=None))

    def test_seeded_decimate_keeps_exact_rate(self):
        policy = Decimate(10, seed=7)
        assert sum(policy.admit(1) for _ in range(10_000)) == 1_000

    def test_seeded_burst_is_bit_reproducible(self):
        def pattern(policy):
            return [policy.admit(1) for _ in range(2_000)]

        assert pattern(Burst(50, 10, seed=3)) == pattern(Burst(50, 10, seed=3))
        assert pattern(Burst(50, 10, seed=3)) != pattern(Burst(50, 10, seed=4))
        # The burst prefix is seed-independent by construction.
        assert all(Burst(50, 10, seed=9).admit(1) for _ in range(50))

    def test_parse_sampling_passes_seed_through(self):
        assert parse_sampling("1/10", seed=5).seed == 5
        assert parse_sampling("burst:100/10", seed=5).seed == 5
        assert parse_sampling("1/10").seed is None
        assert isinstance(parse_sampling("all", seed=5), RecordAll)
        assert "seed 5" in parse_sampling("1/10", seed=5).describe()

    def test_collector_counts_sampled_out_events(self):
        collector = EventCollector(sampling=Decimate(10))
        iid = collector.register_instance(StructureKind.LIST)
        for i in range(1_000):
            collector.record(iid, OperationKind.READ, AccessKind.READ, i, 1_000)
        assert collector.sampled_out == 900
        assert len(collector.finish()[iid]) == 100

    def test_record_all_costs_nothing(self):
        collector = EventCollector(sampling=RecordAll())
        assert collector.sampling is None


class TestSamplingDetectionFidelity:
    """1-in-10 sampling must detect the same use cases as full capture."""

    @pytest.mark.parametrize(
        "workload", EVALUATION_WORKLOADS, ids=lambda w: w.name
    )
    def test_burst_sampling_matches_full_capture(self, workload):
        engine = UseCaseEngine(rules=PARALLEL_RULES)
        with collecting() as full:
            workload.run_tracked(scale=0.5)
        full_cases = {
            (u.profile.label, u.kind)
            for u in engine.analyze_collector(full).use_cases
        }
        with collecting(
            channel=BatchingChannel(), sampling=Burst(1_000, 10)
        ) as sampled:
            workload.run_tracked(scale=0.5)
        sampled_cases = {
            (u.profile.label, u.kind)
            for u in engine.analyze_collector(sampled).use_cases
        }
        assert sampled.sampled_out > 0
        assert sampled_cases == full_cases

    def test_decimation_matches_full_capture_on_synthetic_usecases(self):
        from repro.workloads.generators import (
            gen_frequent_long_read,
            gen_long_insert,
        )

        engine = UseCaseEngine()
        for generator in (gen_frequent_long_read, gen_long_insert):
            with collecting() as full:
                generator(label="g")
            full_kinds = {
                u.kind for u in engine.analyze_collector(full).use_cases
            }
            with collecting(sampling=Decimate(10)) as sampled:
                generator(label="g")
            sampled_kinds = {
                u.kind for u in engine.analyze_collector(sampled).use_cases
            }
            assert sampled_kinds == full_kinds

    def test_for_sampling_recalibrates_detector_and_thresholds(self):
        engine = UseCaseEngine.for_sampling(Decimate(10))
        assert engine.detector.config.max_gap == 19
        assert engine.thresholds.li_long_phase == 10
        # pattern counts and positional spans deliberately don't scale
        assert engine.thresholds.flr_min_patterns == 10
        assert engine.thresholds.flr_min_pattern_span == 8


class TestChannelRobustness:
    def test_async_snapshot_midstream_is_complete(self):
        channel = AsyncChannel()
        for i in range(2_000):
            channel.post(raw(1, i))
        snap = channel.snapshot()
        assert [r[3] for r in snap] == list(range(2_000))
        channel.post(raw(1, 2_000))
        assert len(channel.drain()) == 2_001

    def test_process_channel_dead_child_raises_clear_error(self):
        channel = ProcessChannel(drain_timeout=3.0)
        channel.post(raw(1, 0))
        channel._process.terminate()
        channel._process.join(timeout=5.0)
        with pytest.raises(RuntimeError, match="died before drain"):
            channel.drain()


class TestOverheadGate:
    def _doc(self, value: float) -> dict:
        # Both gated metrics move together here, so a regression in
        # either would trip the gate.
        return {
            "schema": 2,
            "derived": {"batching_vs_plain": value, "remote_vs_plain": value},
            "channels": {},
        }

    def _run_gate(self, tmp_path, current: float, baseline: float) -> int:
        current_path = tmp_path / "current.json"
        baseline_path = tmp_path / "baseline.json"
        current_path.write_text(json.dumps(self._doc(current)))
        baseline_path.write_text(json.dumps(self._doc(baseline)))
        proc = subprocess.run(
            [
                sys.executable,
                str(REPO_ROOT / "examples" / "ci_gate.py"),
                "--overhead",
                str(current_path),
                "--baseline",
                str(baseline_path),
                "--max-regression",
                "0.25",
            ],
            env={**os.environ, "PYTHONPATH": str(REPO_ROOT / "src")},
            capture_output=True,
            text=True,
        )
        return proc.returncode

    def test_gate_passes_at_baseline(self, tmp_path):
        assert self._run_gate(tmp_path, current=3.0, baseline=3.0) == 0

    def test_gate_fails_on_injected_2x_regression(self, tmp_path):
        assert self._run_gate(tmp_path, current=6.0, baseline=3.0) == 1

    def test_gate_allows_regression_inside_budget(self, tmp_path):
        assert self._run_gate(tmp_path, current=3.6, baseline=3.0) == 0
