"""Unit tests for the synthetic profile generators.

Each generator must (1) produce exactly the pattern/use-case signature
it is named after and (2) not leak any *other* parallel use case —
the study suites rely on this exclusivity.
"""

from __future__ import annotations

import pytest

from repro.events import collecting
from repro.patterns import PatternType, RegularityClassifier, detect
from repro.usecases import UseCaseEngine, UseCaseKind
from repro.usecases.rules import PARALLEL_RULES
from repro.workloads import generators as gen


def parallel_kinds_of(maker):
    with collecting():
        structure = maker()
        profile = structure.profile()
    engine = UseCaseEngine(rules=PARALLEL_RULES)
    return profile, {u.kind for u in engine.analyze_profile(profile)}


class TestUseCaseSignatures:
    def test_long_insert(self):
        _, kinds = parallel_kinds_of(lambda: gen.gen_long_insert(500))
        assert kinds == {UseCaseKind.LONG_INSERT}

    def test_queue_usage(self):
        _, kinds = parallel_kinds_of(lambda: gen.gen_queue_usage())
        assert kinds == {UseCaseKind.IMPLEMENT_QUEUE}

    def test_sort_after_insert(self):
        _, kinds = parallel_kinds_of(lambda: gen.gen_sort_after_insert(200))
        assert kinds == {UseCaseKind.SORT_AFTER_INSERT}

    def test_frequent_search(self):
        _, kinds = parallel_kinds_of(lambda: gen.gen_frequent_search(1200, 100))
        assert kinds == {UseCaseKind.FREQUENT_SEARCH}

    def test_frequent_long_read(self):
        _, kinds = parallel_kinds_of(lambda: gen.gen_frequent_long_read(12, 60))
        assert kinds == {UseCaseKind.FREQUENT_LONG_READ}

    def test_insert_and_scan_dual(self):
        _, kinds = parallel_kinds_of(lambda: gen.gen_insert_and_scan())
        assert kinds == {
            UseCaseKind.LONG_INSERT,
            UseCaseKind.FREQUENT_LONG_READ,
        }

    def test_sequential_generators_fire_no_parallel_rule(self):
        for maker in (
            lambda: gen.gen_stack_usage(20, 5),
            lambda: gen.gen_write_without_read(40),
            lambda: gen.gen_insert_back_read_forward(50, 4),
            lambda: gen.gen_irregular(120, 50),
            lambda: gen.gen_idf_churn(10),
        ):
            _, kinds = parallel_kinds_of(maker)
            assert kinds == set(), maker


class TestSequentialSignatures:
    def full_kinds_of(self, maker):
        with collecting():
            profile = maker().profile()
        return {u.kind for u in UseCaseEngine().analyze_profile(profile)}

    def test_stack_usage_fires_si(self):
        kinds = self.full_kinds_of(lambda: gen.gen_stack_usage(20, 5))
        assert UseCaseKind.STACK_IMPLEMENTATION in kinds

    def test_wwr_fires(self):
        kinds = self.full_kinds_of(lambda: gen.gen_write_without_read(40))
        assert UseCaseKind.WRITE_WITHOUT_READ in kinds

    def test_idf_fires(self):
        kinds = self.full_kinds_of(lambda: gen.gen_idf_churn(10))
        assert UseCaseKind.INSERT_DELETE_FRONT in kinds


class TestRegularityOfGenerators:
    @pytest.mark.parametrize(
        "maker, regular",
        [
            (lambda: gen.gen_long_insert(500), True),
            (lambda: gen.gen_frequent_long_read(12, 60), True),
            (lambda: gen.gen_queue_usage(), True),
            (lambda: gen.gen_sort_after_insert(200), True),
            (lambda: gen.gen_insert_and_scan(), True),
            (lambda: gen.gen_stack_usage(20, 5), True),
            (lambda: gen.gen_write_without_read(40), True),
            (lambda: gen.gen_insert_back_read_forward(50, 4), True),
            (lambda: gen.gen_irregular(120, 50), False),
        ],
    )
    def test_regularity(self, maker, regular):
        with collecting():
            profile = maker().profile()
        assert RegularityClassifier().classify(profile).is_regular is regular


class TestFig2:
    def test_snippet_profile(self):
        with collecting():
            profile = gen.gen_fig2_snippet().profile()
        analysis = detect(profile)
        assert analysis.count(PatternType.INSERT_BACK) == 1
        assert analysis.count(PatternType.READ_BACKWARD) == 1
        # Capacity semantics: size pinned at 10 throughout.
        assert profile.max_size == 10
        assert profile.final_size == 10

    def test_generator_determinism(self):
        def events_of():
            with collecting():
                profile = gen.gen_sort_after_insert(100).profile()
            return [(e.op, e.position, e.size) for e in profile]

        assert events_of() == events_of()
