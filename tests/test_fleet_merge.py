"""Fleet merge correctness: a report merged from sharded engines must
be *identical* to one engine that saw the union of the streams.

This is the invariant the whole fleet subsystem rests on — folds are
strictly per-instance and ``report()`` evaluates instances
independently, so partitioning instances across shards loses nothing.
Exercised on every Table V workload, under both a disjoint split (each
shard owns a contiguous block of instances) and an interleaved one
(instances round-robined across shards, events fed window-by-window in
alternating shard order, with mid-stream report() calls thrown in).
"""

from __future__ import annotations

import pytest

from repro.events import collecting
from repro.service import (
    StreamingUseCaseEngine,
    engine_from_dict,
    engine_to_dict,
    merge_engine_dicts,
    merge_engines,
)
from repro.workloads import EVALUATION_WORKLOADS

WINDOW = 256


def _raw(event):
    return (
        event.instance_id,
        int(event.op),
        int(event.kind),
        event.position,
        event.size,
        event.thread_id,
        event.wall_time,
    )


def _signature(report):
    return sorted(
        (u.instance_id, u.kind.abbreviation, tuple(sorted(u.evidence.items())))
        for u in report.use_cases
    )


def _capture(workload):
    """(profiles, events-in-capture-order) for one tracked run."""
    with collecting() as collector:
        workload.run_tracked(scale=0.5)
    profiles = collector.profiles()
    events = sorted(
        (event for profile in profiles for event in profile), key=lambda e: e.seq
    )
    return profiles, events


def _feed(engine, events, window=WINDOW):
    for i in range(0, len(events), window):
        engine.feed_window([_raw(e) for e in events[i : i + window]])


def _reference_engine(profiles, events):
    engine = StreamingUseCaseEngine()
    for p in profiles:
        engine.register_instance(p.instance_id, p.kind, p.site, p.label)
    _feed(engine, events)
    return engine


def _shard_engines(profiles, events, n_shards, assign):
    """One engine per shard; instance ``assign(iid) -> shard`` decides
    ownership of registrations and events alike."""
    engines = [StreamingUseCaseEngine() for _ in range(n_shards)]
    for p in profiles:
        engines[assign(p.instance_id)].register_instance(
            p.instance_id, p.kind, p.site, p.label
        )
    for shard, engine in enumerate(engines):
        _feed(engine, [e for e in events if assign(e.instance_id) == shard])
    return engines


def _assert_equivalent(merged, reference):
    assert _signature(merged.report()) == _signature(reference.report())
    assert (
        merged.report().instances_analyzed
        == reference.report().instances_analyzed
    )
    assert (
        merged.report().search_space_reduction
        == reference.report().search_space_reduction
    )
    assert merged.events_folded == reference.events_folded
    assert merged.unknown_instance_events == reference.unknown_instance_events


@pytest.mark.parametrize("workload", EVALUATION_WORKLOADS, ids=lambda w: w.name)
class TestTableVMergeEquivalence:
    def test_round_trip_preserves_report(self, workload):
        profiles, events = _capture(workload)
        reference = _reference_engine(profiles, events)
        restored = engine_from_dict(engine_to_dict(reference))
        _assert_equivalent(restored, reference)

    def test_disjoint_split_merges_to_reference(self, workload):
        profiles, events = _capture(workload)
        reference = _reference_engine(profiles, events)
        n = max(p.instance_id for p in profiles) + 1
        # Contiguous halves: shard 0 gets the low instance ids.
        engines = _shard_engines(
            profiles, events, 2, lambda iid: 0 if iid < n // 2 else 1
        )
        _assert_equivalent(merge_engines(engines), reference)

    def test_interleaved_split_merges_to_reference(self, workload):
        profiles, events = _capture(workload)
        reference = _reference_engine(profiles, events)
        # Round-robin ownership over three shards; feed the shards'
        # windows in alternating order with interim report() calls, the
        # way a live fleet is snapshotted mid-stream.
        assign = lambda iid: iid % 3  # noqa: E731
        engines = [StreamingUseCaseEngine() for _ in range(3)]
        for p in profiles:
            engines[assign(p.instance_id)].register_instance(
                p.instance_id, p.kind, p.site, p.label
            )
        per_shard = [
            [e for e in events if assign(e.instance_id) == shard]
            for shard in range(3)
        ]
        cursors = [0, 0, 0]
        while any(c < len(s) for c, s in zip(cursors, per_shard)):
            for shard in range(3):
                chunk = per_shard[shard][cursors[shard] : cursors[shard] + WINDOW]
                cursors[shard] += WINDOW
                if chunk:
                    engines[shard].feed_window([_raw(e) for e in chunk])
            engines[0].report()  # interim snapshot must be non-destructive
        _assert_equivalent(merge_engines(engines), reference)


class TestMergeSemantics:
    def test_duplicate_instance_id_is_rejected(self):
        from repro.events import StructureKind

        a = StreamingUseCaseEngine()
        a.register_instance(7, StructureKind.LIST, None, "left")
        b = StreamingUseCaseEngine()
        b.register_instance(7, StructureKind.LIST, None, "right")
        with pytest.raises(ValueError, match="instance id 7"):
            merge_engine_dicts([engine_to_dict(a), engine_to_dict(b)])

    def test_counters_sum_and_peak_maxes(self):
        a = StreamingUseCaseEngine()
        b = StreamingUseCaseEngine()
        a.feed_window([(99, 0, 0, 0, 1, 0, None)] * 3)  # unknown instance
        b.feed_window([(98, 0, 0, 0, 1, 0, None)] * 2)
        merged = merge_engine_dicts([engine_to_dict(a), engine_to_dict(b)])
        assert merged["unknown_instance_events"] == 5
        assert merged["peak_resident_events"] == 3

    def test_merge_of_empty_is_empty_engine(self):
        merged = merge_engines([])
        assert merged.report().instances_analyzed == 0
        assert merged.events_folded == 0
