"""Tests for import-time instrumentation of packages."""

from __future__ import annotations

import sys
import textwrap

import pytest

from repro.events import collecting
from repro.instrument.import_hook import (
    InstrumentingFinder,
    instrument_imports,
    reimport_instrumented,
)
from repro.usecases import UseCaseEngine, UseCaseKind


@pytest.fixture
def fake_package(tmp_path, monkeypatch):
    """A throwaway package on sys.path with container-heavy code."""
    pkg = tmp_path / "fakeapp"
    pkg.mkdir()
    (pkg / "__init__.py").write_text("")
    (pkg / "engine.py").write_text(
        textwrap.dedent(
            """
            def run(n):
                items = []
                for i in range(n):
                    items.append(i)
                return sum(items.raw()) if hasattr(items, "raw") else sum(items)
            """
        )
    )
    monkeypatch.syspath_prepend(str(tmp_path))
    # Ensure cold imports each test.
    for name in list(sys.modules):
        if name.startswith("fakeapp"):
            del sys.modules[name]
    yield "fakeapp"
    for name in list(sys.modules):
        if name.startswith("fakeapp"):
            del sys.modules[name]


class TestInstrumentImports:
    def test_module_is_instrumented_inside_context(self, fake_package):
        with collecting() as session:
            with instrument_imports(fake_package):
                import fakeapp.engine as engine

                result = engine.run(300)
        assert result == sum(range(300))
        assert session.instance_count == 1
        report = UseCaseEngine().analyze_collector(session)
        assert {u.kind for u in report.use_cases} == {UseCaseKind.LONG_INSERT}
        assert report.use_cases[0].profile.label == "items"

    def test_original_code_after_exit(self, fake_package):
        with instrument_imports(fake_package):
            import fakeapp.engine  # noqa: F401
        # Evicted on exit; a fresh import is plain again.
        with collecting() as session:
            import fakeapp.engine as engine

            engine.run(50)
        assert session.instance_count == 0

    def test_unmatched_modules_untouched(self, fake_package):
        with collecting() as session:
            with instrument_imports("some_other_prefix"):
                import fakeapp.engine as engine

                engine.run(50)
        assert session.instance_count == 0

    def test_site_points_into_real_file(self, fake_package):
        with collecting() as session:
            with instrument_imports(fake_package):
                import fakeapp.engine as engine

                engine.run(120)
        profile = session.profiles()[0]
        assert profile.site.filename.endswith("engine.py")

    def test_requires_prefix(self):
        with pytest.raises(ValueError):
            with instrument_imports():
                pass

    def test_reimport_instrumented(self, fake_package):
        with collecting() as session:
            module = reimport_instrumented("fakeapp.engine")
            module.run(200)
        assert session.instance_count == 1


class TestFinderMatching:
    def test_prefix_matching(self):
        finder = InstrumentingFinder(["app", "lib.core"])
        assert finder._matches("app")
        assert finder._matches("app.sub.mod")
        assert finder._matches("lib.core.x")
        assert not finder._matches("application")  # no partial-name match
        assert not finder._matches("lib.coreutils")
        assert not finder._matches("other")
