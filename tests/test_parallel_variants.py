"""Tests for the hand-parallelized workload variants.

Each variant applies the recommended action of a detected use case on
the real program with real threads; the invariant is bit-identical
results versus the sequential original.
"""

from __future__ import annotations

from repro.parallel import ParallelExecutor
from repro.workloads import (
    algorithmia_parallel_pq,
    mandelbrot_parallel,
    sort_after_insert_parallel,
    verify_all,
    wordwheel_parallel,
)


class TestEquivalence:
    def test_mandelbrot_parallel_identical_image(self):
        outcome = mandelbrot_parallel(scale=0.1)
        assert outcome.matches_sequential, outcome.detail

    def test_algorithmia_pq_parallel_max(self):
        outcome = algorithmia_parallel_pq(scale=0.1)
        assert outcome.matches_sequential

    def test_wordwheel_parallel_filtering(self):
        outcome = wordwheel_parallel(scale=0.1)
        assert outcome.matches_sequential

    def test_sort_after_insert(self):
        outcome = sort_after_insert_parallel(n=1_000)
        assert outcome.matches_sequential

    def test_verify_all(self):
        outcomes = verify_all(scale=0.08)
        assert len(outcomes) == 4
        assert all(o.matches_sequential for o in outcomes)

    def test_worker_counts_do_not_change_results(self):
        for workers in (1, 2, 5):
            outcome = mandelbrot_parallel(
                scale=0.08, executor=ParallelExecutor(workers)
            )
            assert outcome.matches_sequential, workers
