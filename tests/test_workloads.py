"""Unit tests for the seven evaluation workloads and the generators.

Two angles per workload: (1) it computes a *correct* result — the
programs are real, not event emitters; (2) under instrumentation it
produces exactly the paper's instance and use-case counts (the detailed
count matrix lives in the Table IV benchmark; here we test each
workload in isolation at small scale).
"""

from __future__ import annotations

import pytest

from repro.events import collecting
from repro.usecases import UseCaseEngine, UseCaseKind
from repro.usecases.rules import PARALLEL_RULES
from repro.workloads import (
    EVALUATION_WORKLOADS,
    Algorithmia,
    AstroGrep,
    CPUBenchmarks,
    Contentfinder,
    GPdotNET,
    Mandelbrot,
    WordWheelSolver,
    escape_iterations,
    lu_solve,
    workload_by_name,
)

SCALE = 0.1


def analyze(workload, scale=SCALE):
    with collecting() as session:
        result = workload.run_tracked(scale=scale)
    report = UseCaseEngine(rules=PARALLEL_RULES).analyze_collector(session)
    return result, report


class TestWorkloadCorrectness:
    def test_mandelbrot_math(self):
        # Points inside the set never escape; points far outside escape fast.
        assert escape_iterations(0.0, 0.0, 50) == 50
        assert escape_iterations(2.0, 2.0, 50) <= 1

    def test_mandelbrot_result(self):
        result = Mandelbrot().run_plain(scale=SCALE)
        assert len(result.pixels) == result.width * result.height
        assert sum(result.histogram) == result.width * result.height
        # The view contains both interior and escaping points.
        assert min(result.pixels) < max(result.pixels)

    def test_lu_solve(self):
        a = [[4.0, 1.0], [1.0, 3.0]]
        x = lu_solve([row[:] for row in a], [1.0, 2.0])
        assert 4.0 * x[0] + 1.0 * x[1] == pytest.approx(1.0)
        assert 1.0 * x[0] + 3.0 * x[1] == pytest.approx(2.0)

    def test_cpubench_result(self):
        result = CPUBenchmarks().run_plain(scale=SCALE)
        assert result.linpack_residual < 1e-6  # the solve is accurate
        assert result.report_lines == 24

    def test_gpdotnet_improves_fitness(self):
        result = GPdotNET().run_plain(scale=SCALE)
        assert result.generations >= 12
        # Fitness is negative distance to target; it must not collapse.
        assert result.best_fitness == max(result.fitness_trace)

    def test_algorithmia_result(self):
        result = Algorithmia().run_plain(scale=SCALE)
        assert result.scenario_count == 16
        assert result.sorted_ok
        assert len(result.pq_max_trace) == Algorithmia.PQ_SEARCHES
        # find_max is stable across searches of an unchanged queue.
        assert len(set(result.pq_max_trace)) == 1
        assert result.reversed_head == 39

    def test_astrogrep_result(self):
        result = AstroGrep().run_plain(scale=SCALE)
        assert result.files_scanned == 18
        assert result.matches > 0
        assert set(result.per_query_hits) == {
            "galaxy", "nebula", "quasar", "pulsar", "comet", "meteor",
            "orbit", "redshift", "parsec", "corona", "plasma", "flux",
        }

    def test_contentfinder_result(self):
        result = Contentfinder().run_plain(scale=SCALE)
        # Every token is a query word, so hits sum to the corpus size.
        assert sum(result.per_query_hits.values()) == result.tokens
        assert result.snippet_count >= Contentfinder.MIN_SNIPPETS

    def test_wordwheel_result(self):
        result = WordWheelSolver().run_plain(scale=SCALE)
        assert result.wheels == 12
        assert result.searches > 1000  # the FS trigger is real work

    def test_plain_and_tracked_agree(self):
        for workload in (Mandelbrot(), WordWheelSolver(), Algorithmia()):
            plain = workload.run_plain(scale=SCALE)
            with collecting():
                tracked = workload.run_tracked(scale=SCALE)
            assert type(plain) is type(tracked)
            if hasattr(plain, "pixels"):
                assert plain.pixels == tracked.pixels
            if hasattr(plain, "found_words"):
                assert plain.found_words == tracked.found_words
            if hasattr(plain, "random_sum"):
                assert plain.random_sum == tracked.random_sum


class TestWorkloadDetection:
    @pytest.mark.parametrize(
        "workload", EVALUATION_WORKLOADS, ids=lambda w: w.name
    )
    def test_counts_match_paper(self, workload):
        _, report = analyze(workload)
        paper = workload.paper
        assert report.instances_analyzed == paper.instances
        assert len(report.use_cases) == paper.use_cases

    def test_gpdotnet_use_case_kinds(self):
        _, report = analyze(GPdotNET())
        kinds = sorted(u.kind.abbreviation for u in report.use_cases)
        assert kinds == ["FLR", "FLR", "FLR", "LI", "LI"]

    def test_mandelbrot_use_case_kinds(self):
        _, report = analyze(Mandelbrot())
        kinds = sorted(u.kind.abbreviation for u in report.use_cases)
        assert kinds == ["FLR", "LI", "LI", "LI"]

    def test_wordwheel_finds_fs(self):
        _, report = analyze(WordWheelSolver())
        assert {u.kind for u in report.use_cases} == {
            UseCaseKind.FREQUENT_LONG_READ,
            UseCaseKind.FREQUENT_SEARCH,
        }


class TestDecompositions:
    @pytest.mark.parametrize(
        "workload", EVALUATION_WORKLOADS, ids=lambda w: w.name
    )
    def test_decomposition_sane(self, workload):
        decomposition = workload.decomposition(scale=SCALE)
        assert decomposition.total_work > 0
        assert 0.0 < decomposition.sequential_fraction < 1.0
        assert decomposition.regions

    def test_cpubench_mostly_sequential(self):
        d = CPUBenchmarks().decomposition()
        assert d.sequential_fraction == pytest.approx(0.9429, abs=0.001)

    def test_gpdotnet_mostly_parallel(self):
        d = GPdotNET().decomposition()
        assert d.sequential_fraction == pytest.approx(0.0389, abs=0.001)


class TestFramework:
    def test_workload_by_name(self):
        assert workload_by_name("mandelbrot").name == "Mandelbrot"
        with pytest.raises(KeyError):
            workload_by_name("nope")

    def test_scaled_floor(self):
        from repro.workloads import Workload

        assert Workload.scaled(1000, 0.5, 100) == 500
        assert Workload.scaled(1000, 0.01, 100) == 100

    def test_paper_totals(self):
        assert sum(w.paper.instances for w in EVALUATION_WORKLOADS) == 104
        assert sum(w.paper.use_cases for w in EVALUATION_WORKLOADS) == 24
        assert sum(w.paper.true_positives for w in EVALUATION_WORKLOADS) == 16

    def test_runs_are_deterministic(self):
        a = GPdotNET().run_plain(scale=SCALE)
        b = GPdotNET().run_plain(scale=SCALE)
        assert a.fitness_trace == b.fitness_trace
