"""Build shim: compiles the optional record-kernel extension.

The package is pure python by policy; ``repro._fastrecord`` is a
strictly optional accelerator for the per-event record hot path
(see ``repro/events/fastpath.py``, which falls back to a pure-python
kernel when the import fails).  Any build failure — no compiler, no
headers, exotic platform — must therefore never fail the install:
the extension is marked optional and every error is downgraded to a
warning.  Set ``DSSPY_NO_EXTENSION=1`` to skip the build entirely.
"""

import os

from setuptools import Extension, setup
from setuptools.command.build_ext import build_ext


class OptionalBuildExt(build_ext):
    """A build_ext that treats every compile failure as a warning."""

    def run(self):
        try:
            super().run()
        except Exception as exc:  # e.g. no C compiler at all
            self._skip(exc)

    def build_extension(self, ext):
        try:
            super().build_extension(ext)
        except Exception as exc:
            self._skip(exc)

    @staticmethod
    def _skip(exc):
        print(
            f"warning: building repro._fastrecord failed ({exc}); "
            "the pure-python record kernel will be used instead"
        )


if os.environ.get("DSSPY_NO_EXTENSION"):
    ext_modules = []
    cmdclass = {}
else:
    ext_modules = [
        Extension(
            "repro._fastrecord",
            sources=["src/repro/_fastrecord.c"],
            optional=True,
        )
    ]
    cmdclass = {"build_ext": OptionalBuildExt}

setup(ext_modules=ext_modules, cmdclass=cmdclass)
